#include "probe/engine.hpp"

#include <algorithm>

namespace ixp::probe {

namespace {

// Timer payload layout: item | exchange | attempt | answers | response.
constexpr std::uint64_t kExchangeShift = 32;
constexpr std::uint64_t kAttemptShift = 40;
constexpr std::uint64_t kAnswersBit = std::uint64_t{1} << 48;
constexpr std::uint64_t kResponseBit = std::uint64_t{1} << 49;

}  // namespace

void EngineStats::merge(const EngineStats& other) noexcept {
  issued += other.issued;
  completed += other.completed;
  timed_out += other.timed_out;
  cancelled += other.cancelled;
  unissued += other.unissued;
  attempts += other.attempts;
  retries += other.retries;
  responses += other.responses;
  losses += other.losses;
  virtual_us = std::max(virtual_us, other.virtual_us);
}

std::uint64_t ProbeEngine::exchange_timeout_total() const {
  std::uint64_t total = 0;
  for (std::uint32_t a = 0; a < config_.max_attempts; ++a)
    total += attempt_timeout(a);
  return total;
}

EngineStats ProbeEngine::run(std::uint32_t item_count, ProbeHandler& handler) {
  stats_ = EngineStats{};
  horizon_us_ = 0;
  handler_ = &handler;

  if (model_.lossless() && config_.run_deadline_us == 0) {
    // Lossless linear pass: with no loss and no deadline, an item's whole
    // trajectory is a pure function of its own draws — no attempt can be
    // lost, so nothing ever waits on a timer and items cannot interact
    // through the concurrency cap. Each item runs start-to-finish
    // synchronously: no wheel, no per-item state, no in-flight
    // bookkeeping. Counters match the wheel path exactly; the handler
    // clock is the item's serial virtual time (the wheel quantizes it to
    // ticks, this path does not — protocols only use it as a cache/TTL
    // clock, never as a result).
    for (std::uint32_t item = 0; item < item_count; ++item) {
      ++stats_.issued;
      run_item_linear(item, handler);
    }
    stats_.virtual_us = horizon_us_;
    handler_ = nullptr;
    return stats_;
  }

  wheel_.reset();
  state_.assign(item_count, ItemState::kIdle);
  in_flight_ = 0;

  std::uint32_t next = 0;
  const std::uint64_t deadline = config_.run_deadline_us;
  bool expired = false;

  for (;;) {
    // Top up to the concurrency cap. Issuing is instantaneous in virtual
    // time; dead-target fast paths may resolve items synchronously here.
    while (!expired && in_flight_ < config_.max_in_flight &&
           next < item_count) {
      const std::uint32_t item = next++;
      ++stats_.issued;
      ++in_flight_;
      state_[item] = ItemState::kInFlight;
      start_exchange(item, 0, wheel_.now_us(), handler);
    }
    if (in_flight_ == 0) {
      if (expired || next >= item_count) break;
      continue;  // everything issued so far resolved synchronously
    }
    if (!wheel_.fire_next(
            [&](std::uint64_t payload) { fire(payload, handler); })) {
      break;  // invariant: one timer per in-flight item; defensive only
    }
    if (deadline != 0 && wheel_.now_us() >= deadline) {
      // Budget exhausted: cancel everything still in flight. Items never
      // issued are counted separately so the balance identity stays over
      // the items actually started.
      expired = true;
      for (std::uint32_t item = 0; item < next; ++item) {
        if (state_[item] == ItemState::kInFlight)
          finalize(item, Outcome::kCancelled, wheel_.now_us(), handler);
      }
      stats_.unissued += item_count - next;
      break;
    }
  }
  horizon_us_ = std::max(horizon_us_, wheel_.now_us());
  stats_.virtual_us = horizon_us_;
  handler_ = nullptr;
  return stats_;
}

void ProbeEngine::run_item_linear(std::uint32_t item, ProbeHandler& handler) {
  std::uint64_t now = 0;
  std::uint32_t exchange = 0;
  for (;;) {
    Step step;
    bool from_timeout;
    if (!handler.exchange_answers(item, exchange)) {
      // Dead target: every attempt deterministically times out.
      stats_.attempts += config_.max_attempts;
      stats_.retries += config_.max_attempts - 1;
      now += exchange_timeout_total();
      step = handler.on_timeout(item, exchange, now);
      from_timeout = true;
    } else {
      // Answering target: the first attempt whose RTT beats its timeout
      // responds (nothing is lost); slower draws burn the attempt budget
      // exactly as the wheel path counts them.
      bool responded = false;
      for (std::uint32_t attempt = 0; attempt < config_.max_attempts;
           ++attempt) {
        ++stats_.attempts;
        if (attempt > 0) ++stats_.retries;
        const NetModel::Draw draw =
            model_.draw(handler.item_key(item), exchange, attempt);
        if (draw.rtt_us < attempt_timeout(attempt)) {
          now += draw.rtt_us;
          ++stats_.responses;
          responded = true;
          break;
        }
        ++stats_.losses;
        now += attempt_timeout(attempt);
      }
      step = responded ? handler.on_response(item, exchange, now)
                       : handler.on_timeout(item, exchange, now);
      from_timeout = !responded;
    }
    if (step == Step::kNextExchange) {
      ++exchange;
      continue;
    }
    const Outcome outcome = (from_timeout && step == Step::kAbort)
                                ? Outcome::kTimedOut
                                : Outcome::kCompleted;
    switch (outcome) {
      case Outcome::kCompleted: ++stats_.completed; break;
      case Outcome::kTimedOut: ++stats_.timed_out; break;
      case Outcome::kCancelled: break;  // unreachable: no deadline here
    }
    horizon_us_ = std::max(horizon_us_, now);
    handler.on_outcome(item, outcome, now);
    return;
  }
}

void ProbeEngine::start_exchange(std::uint32_t item, std::uint32_t exchange,
                                 std::uint64_t now_us, ProbeHandler& handler) {
  for (;;) {
    const bool answers = handler.exchange_answers(item, exchange);
    if (!answers && model_.lossless()) {
      // Dead-target fast path: with no loss every attempt deterministically
      // times out, so resolve the exchange synchronously instead of
      // walking the wheel through max_attempts timers. Accounting matches
      // the slow path exactly.
      stats_.attempts += config_.max_attempts;
      stats_.retries += config_.max_attempts - 1;
      const std::uint64_t end = now_us + exchange_timeout_total();
      const Step step = handler.on_timeout(item, exchange, end);
      if (step == Step::kNextExchange) {
        now_us = end;
        ++exchange;
        continue;
      }
      finalize(item,
               step == Step::kAbort ? Outcome::kTimedOut : Outcome::kCompleted,
               end, handler);
      return;
    }
    issue_attempt(item, exchange, 0, answers, now_us);
    return;
  }
}

void ProbeEngine::issue_attempt(std::uint32_t item, std::uint32_t exchange,
                                std::uint32_t attempt, bool answers,
                                std::uint64_t now_us) {
  ++stats_.attempts;
  if (attempt > 0) ++stats_.retries;
  const std::uint64_t timeout = attempt_timeout(attempt);
  const std::uint64_t base =
      std::uint64_t{item} | (std::uint64_t{exchange} << kExchangeShift) |
      (std::uint64_t{attempt} << kAttemptShift) | (answers ? kAnswersBit : 0);
  if (answers) {
    const NetModel::Draw draw =
        model_.draw(handler_->item_key(item), exchange, attempt);
    if (!draw.lost && draw.rtt_us < timeout) {
      wheel_.schedule(now_us + draw.rtt_us, base | kResponseBit);
      return;
    }
    ++stats_.losses;
  }
  wheel_.schedule(now_us + timeout, base);
}

void ProbeEngine::fire(std::uint64_t payload, ProbeHandler& handler) {
  const auto item = static_cast<std::uint32_t>(payload);
  const auto exchange =
      static_cast<std::uint32_t>((payload >> kExchangeShift) & 0xff);
  const auto attempt =
      static_cast<std::uint32_t>((payload >> kAttemptShift) & 0xff);
  const bool answers = (payload & kAnswersBit) != 0;
  const std::uint64_t now = wheel_.now_us();
  if (state_[item] != ItemState::kInFlight) return;  // defensive
  if ((payload & kResponseBit) != 0) {
    ++stats_.responses;
    apply_step(handler.on_response(item, exchange, now), /*from_timeout=*/false,
               item, exchange, now, handler);
    return;
  }
  if (attempt + 1 < config_.max_attempts) {
    issue_attempt(item, exchange, attempt + 1, answers, now);
    return;
  }
  apply_step(handler.on_timeout(item, exchange, now), /*from_timeout=*/true,
             item, exchange, now, handler);
}

void ProbeEngine::apply_step(Step step, bool from_timeout, std::uint32_t item,
                             std::uint32_t exchange, std::uint64_t now_us,
                             ProbeHandler& handler) {
  if (step == Step::kNextExchange) {
    start_exchange(item, exchange + 1, now_us, handler);
    return;
  }
  const Outcome outcome = (from_timeout && step == Step::kAbort)
                              ? Outcome::kTimedOut
                              : Outcome::kCompleted;
  finalize(item, outcome, now_us, handler);
}

void ProbeEngine::finalize(std::uint32_t item, Outcome outcome,
                           std::uint64_t now_us, ProbeHandler& handler) {
  state_[item] = ItemState::kFinal;
  --in_flight_;
  switch (outcome) {
    case Outcome::kCompleted: ++stats_.completed; break;
    case Outcome::kTimedOut: ++stats_.timed_out; break;
    case Outcome::kCancelled: ++stats_.cancelled; break;
  }
  horizon_us_ = std::max(horizon_us_, now_us);
  handler.on_outcome(item, outcome, now_us);
}

}  // namespace ixp::probe
