// CachingResolver — positive/negative caching in front of ZoneDatabase
// (DESIGN.md §15).
//
// The probe engine issues millions of DNS lookups that concentrate on a
// few shapes: the same probe name queried through 280K resolvers, SOA
// hierarchy walks that share zone suffixes across a hoster's servers,
// repeated PTR/reverse-SOA lookups. The resolver memoizes all four query
// types with TTL handling (positive and negative TTLs), an LRU bound per
// cache, and exact hit/miss/negative-hit statistics.
//
// Transparency invariant: the zone database is immutable during a probe
// run, so a cached answer — while its TTL holds and modulo eviction — is
// exactly what ZoneDatabase would return. Results therefore never depend
// on cache state; only the stats do. The differential suite leans on
// this: engine results must be byte-identical to the uncached synchronous
// oracles.
//
// Clocking: callers pass the engine's virtual time; TTLs expire in
// virtual microseconds. Not thread-safe — each worker chunk owns one.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "dns/name.hpp"
#include "dns/zone_db.hpp"
#include "net/ipv4.hpp"
#include "util/flat_hash_map.hpp"

namespace ixp::probe {

struct CacheStats {
  std::uint64_t hits = 0;           // answers served from a positive entry
  std::uint64_t negative_hits = 0;  // cached NXDOMAIN/no-record answers
  std::uint64_t misses = 0;         // authoritative lookups performed
  std::uint64_t insertions = 0;     // entries written
  std::uint64_t evictions = 0;      // LRU displacements at capacity
  std::uint64_t expired = 0;        // entries dropped on TTL expiry

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + negative_hits + misses;
    return total == 0
               ? 0.0
               : static_cast<double>(hits + negative_hits) /
                     static_cast<double>(total);
  }
  void merge(const CacheStats& other) noexcept {
    hits += other.hits;
    negative_hits += other.negative_hits;
    misses += other.misses;
    insertions += other.insertions;
    evictions += other.evictions;
    expired += other.expired;
  }
};

/// Fixed-capacity LRU map with per-entry expiry, used for each of the
/// resolver's caches. Entries live in a slot vector threaded as a doubly
/// linked recency list; the index is a FlatHashMap from key to slot.
template <class K, class V, class Hash = std::hash<K>,
          class Eq = std::equal_to<>>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    slots_.reserve(std::min<std::size_t>(capacity_, 1024));
    index_.reserve(std::min<std::size_t>(capacity_, 1024));
  }

  /// Looks `key` up at virtual time `now_us`. Expired entries are erased
  /// (counted in `stats.expired`) and read as absent. A present entry is
  /// touched to most-recently-used.
  template <class Key>
  [[nodiscard]] const V* find(const Key& key, std::uint64_t now_us,
                              CacheStats& stats) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    const std::uint32_t slot = it->second;
    if (slots_[slot].expires_us <= now_us) {
      ++stats.expired;
      erase_slot(slot);
      return nullptr;
    }
    touch(slot);
    return &slots_[slot].value;
  }

  /// Inserts or overwrites; evicts the least-recently-used entry at
  /// capacity. `expires_us` is an absolute virtual time. Returns the
  /// stored value (valid until the next mutating call).
  const V& put(K key, V value, std::uint64_t expires_us, CacheStats& stats) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      Entry& entry = slots_[it->second];
      entry.value = std::move(value);
      entry.expires_us = expires_us;
      touch(it->second);
      ++stats.insertions;
      return entry.value;
    }
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else if (slots_.size() < capacity_) {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    } else {
      slot = tail_;
      ++stats.evictions;
      index_.erase(slots_[slot].key);
      unlink(slot);
    }
    Entry& entry = slots_[slot];
    entry.key = std::move(key);
    entry.value = std::move(value);
    entry.expires_us = expires_us;
    link_front(slot);
    index_[entry.key] = slot;
    ++stats.insertions;
    return entry.value;
  }

  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct Entry {
    K key{};
    V value{};
    std::uint64_t expires_us = 0;
    std::uint32_t prev = kNone;
    std::uint32_t next = kNone;
    bool linked = false;
  };

  void unlink(std::uint32_t slot) {
    Entry& entry = slots_[slot];
    if (!entry.linked) return;
    if (entry.prev != kNone) slots_[entry.prev].next = entry.next;
    if (entry.next != kNone) slots_[entry.next].prev = entry.prev;
    if (head_ == slot) head_ = entry.next;
    if (tail_ == slot) tail_ = entry.prev;
    entry.prev = entry.next = kNone;
    entry.linked = false;
  }

  void link_front(std::uint32_t slot) {
    Entry& entry = slots_[slot];
    entry.prev = kNone;
    entry.next = head_;
    entry.linked = true;
    if (head_ != kNone) slots_[head_].prev = slot;
    head_ = slot;
    if (tail_ == kNone) tail_ = slot;
  }

  void touch(std::uint32_t slot) {
    if (head_ == slot) return;
    unlink(slot);
    link_front(slot);
  }

  void erase_slot(std::uint32_t slot) {
    index_.erase(slots_[slot].key);
    unlink(slot);
    free_.push_back(slot);
  }

  std::size_t capacity_;
  std::vector<Entry> slots_;
  std::vector<std::uint32_t> free_;
  util::FlatHashMap<K, std::uint32_t, Hash, Eq> index_;
  std::uint32_t head_ = kNone;
  std::uint32_t tail_ = kNone;
};

class CachingResolver {
 public:
  struct Options {
    std::size_t capacity = std::size_t{1} << 16;  // per cache
    std::uint64_t positive_ttl_us = 300'000'000;  // 5 virtual minutes
    std::uint64_t negative_ttl_us = 60'000'000;   // 1 virtual minute
  };

  explicit CachingResolver(const dns::ZoneDatabase& db)
      : CachingResolver(db, Options{}) {}
  CachingResolver(const dns::ZoneDatabase& db, Options options)
      : db_(&db),
        options_(options),
        a_cache_(options.capacity),
        soa_cache_(options.capacity),
        ptr_cache_(options.capacity),
        rsoa_cache_(options.capacity) {}

  /// Forward resolution (CNAME chase + A records) through the cache. The
  /// returned reference is the cached answer (empty = NXDOMAIN / no
  /// records); valid until the next mutating call.
  [[nodiscard]] const std::vector<net::Ipv4Addr>& resolve(
      const dns::DnsName& name, std::uint64_t now_us);

  /// Iterative SOA walk with per-suffix caching: every level probed on
  /// the way to an answer is filled, so sibling names under the same zone
  /// hit after one authoritative walk.
  [[nodiscard]] std::optional<dns::SoaRecord> soa_of(const dns::DnsName& name,
                                                     std::uint64_t now_us);

  [[nodiscard]] std::optional<dns::DnsName> reverse(net::Ipv4Addr addr,
                                                    std::uint64_t now_us);

  /// Reverse SOA: the explicit per-address authority when installed, else
  /// the SOA walk of the PTR hostname — composed from the cached
  /// primitives, value-identical to ZoneDatabase::reverse_soa.
  [[nodiscard]] std::optional<dns::DnsName> reverse_soa(net::Ipv4Addr addr,
                                                        std::uint64_t now_us);

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const dns::ZoneDatabase& db() const noexcept { return *db_; }

 private:
  [[nodiscard]] std::uint64_t expiry(bool positive,
                                     std::uint64_t now_us) const noexcept {
    return now_us +
           (positive ? options_.positive_ttl_us : options_.negative_ttl_us);
  }

  const dns::ZoneDatabase* db_;
  Options options_;
  CacheStats stats_;
  LruCache<dns::DnsName, std::vector<net::Ipv4Addr>, dns::NameHash,
           dns::NameEq>
      a_cache_;
  LruCache<dns::DnsName, std::optional<dns::SoaRecord>, dns::NameHash,
           dns::NameEq>
      soa_cache_;
  LruCache<net::Ipv4Addr, std::optional<dns::DnsName>> ptr_cache_;
  LruCache<net::Ipv4Addr, std::optional<dns::DnsName>> rsoa_cache_;
};

}  // namespace ixp::probe
