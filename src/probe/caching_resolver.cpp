#include "probe/caching_resolver.hpp"

namespace ixp::probe {

const std::vector<net::Ipv4Addr>& CachingResolver::resolve(
    const dns::DnsName& name, std::uint64_t now_us) {
  if (const auto* cached = a_cache_.find(name, now_us, stats_)) {
    if (cached->empty()) {
      ++stats_.negative_hits;
    } else {
      ++stats_.hits;
    }
    return *cached;
  }
  ++stats_.misses;
  std::vector<net::Ipv4Addr> answer = db_->resolve(name);
  const bool positive = !answer.empty();
  return a_cache_.put(name, std::move(answer), expiry(positive, now_us),
                      stats_);
}

std::optional<dns::SoaRecord> CachingResolver::soa_of(const dns::DnsName& name,
                                                      std::uint64_t now_us) {
  if (name.empty()) {
    ++stats_.misses;
    return std::nullopt;
  }
  const dns::SuffixWalk walk{name.text()};
  const std::size_t count = walk.label_count();
  std::optional<dns::SoaRecord> result;
  // Levels 0..fill-1 get written below; a level terminated by a cache hit
  // is already stored (and was touched to most-recently-used).
  std::size_t fill = count;
  bool from_cache = false;
  for (std::size_t i = 0; i < count; ++i) {
    if (const auto* cached = soa_cache_.find(walk.suffix(i), now_us, stats_)) {
      // A cached soa_of(suffix) answers the whole query: the walk just
      // verified against the authoritative map that no zone cut sits
      // between `name` and this suffix.
      result = *cached;
      fill = i;
      from_cache = true;
      break;
    }
    if (const dns::DnsName* authority = db_->soa_at(walk.suffix(i))) {
      result = dns::SoaRecord{name.suffix(count - i), *authority};
      fill = i + 1;
      break;
    }
  }
  // One logical query, one count — however many levels the walk touched.
  if (from_cache) {
    if (result) {
      ++stats_.hits;
    } else {
      ++stats_.negative_hits;
    }
  } else {
    ++stats_.misses;
  }
  // Backfill proper suffixes only, never the query name itself: the
  // cache answers at the zone level, so an exact-repeat query still hits
  // (one level higher, after a db miss at its own leaf), while sweeps
  // over per-host-unique names — the dominant workload — stop inserting
  // a never-read-again leaf entry per query.
  const std::uint64_t expires = expiry(result.has_value(), now_us);
  for (std::size_t j = 1; j < fill; ++j) {
    soa_cache_.put(name.suffix(count - j), result, expires, stats_);
  }
  return result;
}

std::optional<dns::DnsName> CachingResolver::reverse(net::Ipv4Addr addr,
                                                     std::uint64_t now_us) {
  if (const auto* cached = ptr_cache_.find(addr, now_us, stats_)) {
    if (cached->has_value()) {
      ++stats_.hits;
    } else {
      ++stats_.negative_hits;
    }
    return *cached;
  }
  ++stats_.misses;
  std::optional<dns::DnsName> answer = db_->reverse(addr);
  const bool positive = answer.has_value();
  return ptr_cache_.put(addr, std::move(answer), expiry(positive, now_us),
                        stats_);
}

std::optional<dns::DnsName> CachingResolver::reverse_soa(net::Ipv4Addr addr,
                                                         std::uint64_t now_us) {
  if (const auto* cached = rsoa_cache_.find(addr, now_us, stats_)) {
    if (cached->has_value()) {
      ++stats_.hits;
    } else {
      ++stats_.negative_hits;
    }
    return *cached;
  }
  ++stats_.misses;
  // Compose from the cached primitives so the PTR and SOA sub-queries
  // (each a logical query with its own hit/miss count) warm their caches
  // for the metadata pass. Value-identical to ZoneDatabase::reverse_soa.
  std::optional<dns::DnsName> answer;
  if (const dns::DnsName* direct = db_->reverse_soa_at(addr)) {
    answer = *direct;
  } else if (const auto hostname = reverse(addr, now_us)) {
    if (const auto soa = soa_of(*hostname, now_us)) answer = soa->authority;
  }
  const bool positive = answer.has_value();
  return rsoa_cache_.put(addr, std::move(answer), expiry(positive, now_us),
                         stats_);
}

}  // namespace ixp::probe
