// Batched §2.4 metadata harvest (DESIGN.md §15).
//
// The synchronous MetadataHarvester issues the PTR lookup, the iterative
// SOA walk and the reverse-SOA fallback inline, once per server. The pass
// re-expresses the DNS half as a two-exchange engine protocol (PTR, then
// authority) with every lookup served through a CachingResolver, and the
// local half (URI cleaning, certificate names) computed at completion with
// a per-chunk parse memo.
//
// The items are processed in fixed-size chunks, each with its own engine,
// resolver cache and memo; chunk results land at precomputed offsets and
// chunk stats merge in chunk order. Chunks are independent, so `threads`
// only changes wall-clock: the metadata vector and the merged shard are
// byte-identical for any thread count — the same WeekShard idiom the
// multi-week driver uses.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "classify/metadata.hpp"
#include "dns/public_suffix.hpp"
#include "dns/zone_db.hpp"
#include "net/ipv4.hpp"
#include "probe/caching_resolver.hpp"
#include "probe/engine.hpp"
#include "x509/certificate.hpp"

namespace ixp::probe {

/// One server to harvest: its sampled Host headers and, when the crawl
/// confirmed it, the validated certificate chain. Spans and pointer are
/// borrowed and must outlive the pass.
struct MetadataItem {
  net::Ipv4Addr addr;
  std::span<const std::string> hosts;
  const x509::CertificateChain* chain = nullptr;
};

/// Mergeable per-chunk accounting. Coverage fields sum (they are plain
/// counts), so the merged shard is independent of chunk/thread layout.
struct MetadataShard {
  classify::MetadataCoverage coverage;
  EngineStats engine;
  CacheStats cache;

  void merge(const MetadataShard& other) noexcept {
    coverage.servers += other.coverage.servers;
    coverage.with_dns += other.coverage.with_dns;
    coverage.with_uri += other.coverage.with_uri;
    coverage.with_cert += other.coverage.with_cert;
    coverage.with_any += other.coverage.with_any;
    coverage.cleaned_out += other.coverage.cleaned_out;
    engine.merge(other.engine);
    cache.merge(other.cache);
  }
};

struct MetadataPassResult {
  std::vector<classify::ServerMetadata> metadata;  // item order
  MetadataShard shard;
};

class MetadataPass {
 public:
  struct Options {
    std::size_t chunk = 8192;
    unsigned threads = 1;
    EngineConfig engine;
    NetModel net;
    CachingResolver::Options cache;
  };

  MetadataPass(const dns::ZoneDatabase& db, const dns::PublicSuffixList& psl)
      : MetadataPass(db, psl, Options{}) {}
  MetadataPass(const dns::ZoneDatabase& db, const dns::PublicSuffixList& psl,
               Options options)
      : db_(&db), psl_(&psl), options_(options) {}

  [[nodiscard]] MetadataPassResult run(
      std::span<const MetadataItem> items) const;

 private:
  MetadataShard run_chunk(std::span<const MetadataItem> items,
                          classify::ServerMetadata* out) const;

  const dns::ZoneDatabase* db_;
  const dns::PublicSuffixList* psl_;
  Options options_;
};

}  // namespace ixp::probe
