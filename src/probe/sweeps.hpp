// Engine-backed measurement sweeps (DESIGN.md §15).
//
// The two per-candidate loops of the identification pipeline — resolver
// filtering (§2.3) and the HTTPS certificate crawl (§2.2.2) — re-expressed
// as ProbeEngine protocols. Lossless and loss-free configurations produce
// byte-identical results to the synchronous originals
// (ResolverPopulation::usable_resolvers, HttpsProber::probe), which the
// differential suite asserts over randomized populations; under loss the
// synchronous oracles replay the same NetModel draws and must still agree.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "classify/https_prober.hpp"
#include "dns/resolver.hpp"
#include "probe/caching_resolver.hpp"
#include "probe/engine.hpp"
#include "x509/validator.hpp"

namespace ixp::probe {

struct ResolverSweepResult {
  std::vector<dns::Resolver> usable;  // candidate order, as the sync filter
  EngineStats engine;
  CacheStats cache;
};

/// §2.3 resolver filtering as a one-exchange protocol: closed resolvers
/// never answer (the engine's dead-target fast path handles the bulk of
/// the candidate set synchronously); responders are judged by the probe
/// semantics of ResolverPopulation::probe, with the known-answer lookup
/// served through a CachingResolver — one authoritative resolution warms
/// the cache for the remaining ~280K candidates.
class ResolverSweep {
 public:
  explicit ResolverSweep(EngineConfig config = {}, NetModel model = {})
      : config_(config), model_(model) {}

  [[nodiscard]] ResolverSweepResult run(
      std::span<const dns::Resolver> candidates, const dns::ZoneDatabase& db,
      const dns::DnsName& probe_name,
      CachingResolver::Options cache_options = {}) const;

 private:
  EngineConfig config_;
  NetModel model_;
};

struct HttpsSweepResult {
  std::vector<net::Ipv4Addr> confirmed;  // candidate order
  classify::ProbeFunnel funnel;
  EngineStats engine;
  std::uint64_t domain_cache_hits = 0;
  std::uint64_t domain_cache_misses = 0;
};

/// §2.2.2 certificate crawl as an engine protocol, in two flavours:
///
///  - run(): one exchange per fetch against a zero-copy ChainSource (e.g.
///    gen::InternetModel::fetch_chain_view). An exchange-0 timeout is the
///    liveness early-exit; stability is judged on the chain pointers, so
///    stable servers are validated without ever copying a chain.
///  - run_with_fetcher(): the legacy two-exchange protocol over a
///    ChainFetcher (liveness fetch, then the full sweep, refetched from
///    scratch) — funnel- and set-identical to HttpsProber::probe, which is
///    what lets VantagePoint swap it in without disturbing snapshots.
///
/// A DomainCache is attached for the duration of each run, so checks
/// (a)/(b) hit the PSL once per distinct name instead of once per fetch.
class HttpsSweep {
 public:
  /// Payload field budget: exchange indices must fit the timer encoding.
  static constexpr int kMaxFetches = 8;

  /// Zero-copy fetch: returns the chain served by `addr` on this fetch,
  /// nullptr when nothing listens. Unstable servers materialize into
  /// `scratch` (valid until the item completes); any other pointer must
  /// alias storage that is stable — same address, same contents — for the
  /// whole run, which is what lets the sweep memoize validation verdicts
  /// per fetched pointer tuple.
  using ChainSource = std::function<const x509::CertificateChain*(
      net::Ipv4Addr addr, int fetch_index, x509::CertificateChain& scratch)>;

  HttpsSweep(const x509::RootStore& roots, const dns::PublicSuffixList& psl,
             int fetches_per_ip = 3, EngineConfig config = {},
             NetModel model = {})
      : validator_(roots, psl),
        fetches_(fetches_per_ip < 1 ? 1
                 : fetches_per_ip > kMaxFetches ? kMaxFetches
                                                : fetches_per_ip),
        config_(config),
        model_(model) {}

  [[nodiscard]] HttpsSweepResult run(std::span<const net::Ipv4Addr> candidates,
                                     const ChainSource& source);

  [[nodiscard]] HttpsSweepResult run_with_fetcher(
      std::span<const net::Ipv4Addr> candidates,
      const classify::ChainFetcher& fetch);

 private:
  x509::ChainValidator validator_;
  int fetches_;
  EngineConfig config_;
  NetModel model_;
};

}  // namespace ixp::probe
