// Timer wheel for the probe engine's virtual clock.
//
// A classic hashed wheel: a power-of-two ring of slots, each holding the
// timers whose due tick hashes there. The engine schedules one timer per
// in-flight attempt (either the expected response or its timeout), so the
// wheel holds at most `max_in_flight` entries and advancing is O(ticks
// scanned + timers fired). Entries due in a later revolution stay in
// their slot and are skipped until their tick comes around.
//
// Virtual time is quantized to ticks: a timer scheduled for the current
// tick (or the past) fires at the next tick boundary. Within one tick,
// timers fire in schedule order — together with the pure NetModel draws
// this makes the whole simulation deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ixp::probe {

class TimerWheel {
 public:
  /// `slots_log2` ring slots of `tick_us` virtual microseconds each.
  explicit TimerWheel(std::uint32_t slots_log2 = 10,
                      std::uint32_t tick_us = 1024)
      : slots_(std::size_t{1} << slots_log2),
        mask_((std::size_t{1} << slots_log2) - 1),
        tick_us_(tick_us) {}

  void reset() {
    for (auto& slot : slots_) slot.clear();
    tick_ = 0;
    pending_ = 0;
  }

  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
  [[nodiscard]] std::uint64_t now_us() const noexcept {
    return tick_ * tick_us_;
  }

  void schedule(std::uint64_t due_us, std::uint64_t payload) {
    std::uint64_t due_tick = due_us / tick_us_;
    if (due_tick <= tick_) due_tick = tick_ + 1;
    slots_[due_tick & mask_].push_back(Timer{due_tick, payload});
    ++pending_;
  }

  /// Advances to the next tick holding due timers and invokes
  /// `fire(payload)` for each, in schedule order. Returns false when no
  /// timers remain (the clock does not move).
  template <class F>
  bool fire_next(F&& fire) {
    if (pending_ == 0) return false;
    for (;;) {
      ++tick_;
      auto& slot = slots_[tick_ & mask_];
      if (slot.empty()) continue;
      // Split due entries from future-revolution ones, preserving order.
      due_.clear();
      std::size_t kept = 0;
      for (Timer& timer : slot) {
        if (timer.due_tick == tick_) {
          due_.push_back(timer.payload);
        } else {
          slot[kept++] = timer;
        }
      }
      slot.resize(kept);
      if (due_.empty()) continue;
      pending_ -= due_.size();
      for (const std::uint64_t payload : due_) fire(payload);
      return true;
    }
  }

 private:
  struct Timer {
    std::uint64_t due_tick;
    std::uint64_t payload;
  };

  std::vector<std::vector<Timer>> slots_;
  std::size_t mask_;
  std::uint32_t tick_us_;
  std::uint64_t tick_ = 0;
  std::size_t pending_ = 0;
  std::vector<std::uint64_t> due_;
};

}  // namespace ixp::probe
