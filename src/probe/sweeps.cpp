#include "probe/sweeps.hpp"

#include <array>
#include <cstdint>
#include <unordered_map>

#include "util/flat_hash_map.hpp"
#include "util/rng.hpp"

namespace ixp::probe {

namespace {

/// Stability-sweep timestamps, identical to the synchronous prober's.
std::vector<x509::Timestamp> sweep_times(std::size_t fetches) {
  std::vector<x509::Timestamp> times;
  times.reserve(fetches);
  for (std::size_t i = 0; i < fetches; ++i)
    times.push_back(static_cast<x509::Timestamp>(100 + 50 * i));
  return times;
}

class ResolverHandler final : public ProbeHandler {
 public:
  ResolverHandler(std::span<const dns::Resolver> candidates,
                  CachingResolver& resolver, const dns::DnsName& probe_name,
                  std::vector<std::uint8_t>& usable)
      : candidates_(candidates),
        resolver_(resolver),
        probe_name_(probe_name),
        usable_(usable) {}

  [[nodiscard]] std::uint64_t item_key(std::uint32_t item) const override {
    return candidates_[item].address.value();
  }

  bool exchange_answers(std::uint32_t item, std::uint32_t) override {
    return candidates_[item].behavior != dns::ResolverBehavior::kClosed;
  }

  Step on_response(std::uint32_t item, std::uint32_t,
                   std::uint64_t now_us) override {
    switch (candidates_[item].behavior) {
      case dns::ResolverBehavior::kOpen:
        usable_[item] = resolver_.resolve(probe_name_, now_us).empty() ? 0 : 1;
        break;
      case dns::ResolverBehavior::kDelegating:
        // The sync probe still checks the answer; delegation alone
        // disqualifies, but the lookup keeps cache accounting aligned.
        (void)resolver_.resolve(probe_name_, now_us);
        break;
      case dns::ResolverBehavior::kLying:
      case dns::ResolverBehavior::kClosed:
        break;
    }
    return Step::kDone;
  }

  Step on_timeout(std::uint32_t, std::uint32_t, std::uint64_t) override {
    return Step::kAbort;
  }

 private:
  std::span<const dns::Resolver> candidates_;
  CachingResolver& resolver_;
  const dns::DnsName& probe_name_;
  std::vector<std::uint8_t>& usable_;
};

class SourceSweepHandler final : public ProbeHandler {
 public:
  SourceSweepHandler(std::span<const net::Ipv4Addr> candidates,
                     const HttpsSweep::ChainSource& source,
                     const x509::ChainValidator& validator, int fetches,
                     classify::ProbeFunnel& funnel,
                     std::vector<std::uint8_t>& confirmed)
      : candidates_(candidates),
        source_(source),
        validator_(validator),
        fetches_(fetches),
        funnel_(funnel),
        confirmed_(confirmed),
        times_(sweep_times(static_cast<std::size_t>(fetches))) {}

  [[nodiscard]] std::uint64_t item_key(std::uint32_t item) const override {
    return candidates_[item].value();
  }

  bool exchange_answers(std::uint32_t item, std::uint32_t exchange) override {
    if (exchange == 0) {
      // Probe liveness against a spare scratch before materializing any
      // per-item state: ~2/3 of the candidate population is dead, and a
      // map insert + erase per dead item would dominate the sweep.
      const x509::CertificateChain* got =
          source_(candidates_[item], 0, spare_);
      if (got == nullptr) return false;
      ItemState& state = state_[item];
      if (got == &spare_) {
        state.scratch[0] = std::move(spare_);
        got = &state.scratch[0];
        state.scratch_used = true;
      }
      state.got[0] = got;
      return true;
    }
    // Exchange 0 answered, so the state exists.
    ItemState& state = state_.at(item);
    state.got[exchange] =
        source_(candidates_[item], static_cast<int>(exchange),
                state.scratch[exchange]);
    if (state.got[exchange] == &state.scratch[exchange])
      state.scratch_used = true;
    return state.got[exchange] != nullptr;
  }

  Step on_response(std::uint32_t item, std::uint32_t exchange,
                   std::uint64_t) override {
    if (exchange + 1 < static_cast<std::uint32_t>(fetches_))
      return Step::kNextExchange;
    // Every fetch answered: the item is a responder; judge stability on
    // the collected pointers (aliased entries skip re-validation).
    ++funnel_.responded;
    const ItemState& state = state_.at(item);
    const std::span<const x509::CertificateChain* const> fetched{
        state.got.data(), static_cast<std::size_t>(fetches_)};
    bool ok;
    if (state.scratch_used) {
      ok = validator_.validate_stable(fetched, times_).ok;
    } else {
      // Verdict memo: non-scratch pointers alias run-stable storage, so
      // the same fetch tuple always validates the same way. Hosting farms
      // serve a few thousand distinct chains across hundreds of thousands
      // of servers; each tuple is judged once.
      const auto [it, inserted] = verdicts_.try_emplace(state.got, false);
      if (inserted) it->second = validator_.validate_stable(fetched, times_).ok;
      ok = it->second;
    }
    if (ok) {
      ++funnel_.confirmed;
      confirmed_[item] = 1;
    }
    return Step::kDone;
  }

  Step on_timeout(std::uint32_t, std::uint32_t exchange,
                  std::uint64_t) override {
    // An exchange-0 timeout is the liveness early-exit (dead candidates
    // under a lossless model take the engine's synchronous fast path).
    if (exchange == 0) ++funnel_.early_exits;
    return Step::kAbort;
  }

  void on_outcome(std::uint32_t item, Outcome, std::uint64_t) override {
    state_.erase(item);
  }

 private:
  struct ItemState {
    std::array<const x509::CertificateChain*, HttpsSweep::kMaxFetches> got{};
    std::array<x509::CertificateChain, HttpsSweep::kMaxFetches> scratch;
    bool scratch_used = false;  // any got[] aliases scratch[] (item-local)
  };

  using PtrTuple =
      std::array<const x509::CertificateChain*, HttpsSweep::kMaxFetches>;
  struct PtrTupleHash {
    std::size_t operator()(const PtrTuple& key) const noexcept {
      std::uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (const auto* p : key)
        h = util::mix64(h ^ reinterpret_cast<std::uintptr_t>(p));
      return static_cast<std::size_t>(h);
    }
  };

  std::span<const net::Ipv4Addr> candidates_;
  const HttpsSweep::ChainSource& source_;
  const x509::ChainValidator& validator_;
  int fetches_;
  classify::ProbeFunnel& funnel_;
  std::vector<std::uint8_t>& confirmed_;
  std::vector<x509::Timestamp> times_;
  // node-stable: got[] may point into scratch[], so entries must not move
  // when the table grows or a finished item is erased.
  std::unordered_map<std::uint32_t, ItemState> state_;
  x509::CertificateChain spare_;  // liveness-probe scratch for exchange 0
  util::FlatHashMap<PtrTuple, bool, PtrTupleHash> verdicts_;
};

class FetcherSweepHandler final : public ProbeHandler {
 public:
  FetcherSweepHandler(std::span<const net::Ipv4Addr> candidates,
                      const classify::ChainFetcher& fetch,
                      const x509::ChainValidator& validator, int fetches,
                      classify::ProbeFunnel& funnel,
                      std::vector<std::uint8_t>& confirmed)
      : candidates_(candidates),
        fetch_(fetch),
        validator_(validator),
        fetches_(fetches),
        funnel_(funnel),
        confirmed_(confirmed),
        times_(sweep_times(static_cast<std::size_t>(fetches))) {}

  [[nodiscard]] std::uint64_t item_key(std::uint32_t item) const override {
    return candidates_[item].value();
  }

  bool exchange_answers(std::uint32_t item, std::uint32_t exchange) override {
    // Exchange 0 is the liveness probe; its chains are discarded so the
    // verdict cannot depend on whether the short-circuit ran (flaky
    // fetchers may answer differently per call). With fetches_ == 1 the
    // single fetch is both liveness and sweep, exactly like the sync path.
    if (fetches_ > 1 && exchange == 0) return !fetch_(candidates_[item], 1).empty();
    ItemState& state = state_[item];
    state.full = fetch_(candidates_[item], fetches_);
    return !state.full.empty();
  }

  Step on_response(std::uint32_t item, std::uint32_t exchange,
                   std::uint64_t) override {
    if (fetches_ > 1 && exchange == 0) return Step::kNextExchange;
    ++funnel_.responded;
    const ItemState& state = state_.at(item);
    if (validator_.validate_stable(state.full, times_).ok) {
      ++funnel_.confirmed;
      confirmed_[item] = 1;
    }
    return Step::kDone;
  }

  Step on_timeout(std::uint32_t item, std::uint32_t exchange,
                  std::uint64_t) override {
    if (exchange == 0) {
      ++funnel_.early_exits;
      return Step::kAbort;
    }
    // Vanished mid-probe (liveness answered, full sweep empty): the sync
    // funnel drops these silently — complete without counting a response.
    const auto it = state_.find(item);
    if (it == state_.end() || it->second.full.empty()) return Step::kDone;
    return Step::kAbort;  // non-empty sweep, every attempt lost
  }

  void on_outcome(std::uint32_t item, Outcome, std::uint64_t) override {
    state_.erase(item);
  }

 private:
  struct ItemState {
    std::vector<x509::CertificateChain> full;
  };

  std::span<const net::Ipv4Addr> candidates_;
  const classify::ChainFetcher& fetch_;
  const x509::ChainValidator& validator_;
  int fetches_;
  classify::ProbeFunnel& funnel_;
  std::vector<std::uint8_t>& confirmed_;
  std::vector<x509::Timestamp> times_;
  std::unordered_map<std::uint32_t, ItemState> state_;
};

std::vector<net::Ipv4Addr> in_candidate_order(
    std::span<const net::Ipv4Addr> candidates,
    const std::vector<std::uint8_t>& confirmed) {
  std::vector<net::Ipv4Addr> out;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (confirmed[i]) out.push_back(candidates[i]);
  }
  return out;
}

}  // namespace

ResolverSweepResult ResolverSweep::run(
    std::span<const dns::Resolver> candidates, const dns::ZoneDatabase& db,
    const dns::DnsName& probe_name,
    CachingResolver::Options cache_options) const {
  ResolverSweepResult result;
  CachingResolver resolver(db, cache_options);
  std::vector<std::uint8_t> usable(candidates.size(), 0);
  ResolverHandler handler(candidates, resolver, probe_name, usable);
  ProbeEngine engine(config_, model_);
  result.engine =
      engine.run(static_cast<std::uint32_t>(candidates.size()), handler);
  result.cache = resolver.stats();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (usable[i]) result.usable.push_back(candidates[i]);
  }
  return result;
}

HttpsSweepResult HttpsSweep::run(std::span<const net::Ipv4Addr> candidates,
                                 const ChainSource& source) {
  HttpsSweepResult result;
  result.funnel.candidates = candidates.size();
  x509::DomainCache domain_cache;
  validator_.set_domain_cache(&domain_cache);
  std::vector<std::uint8_t> confirmed(candidates.size(), 0);
  SourceSweepHandler handler(candidates, source, validator_, fetches_,
                             result.funnel, confirmed);
  ProbeEngine engine(config_, model_);
  result.engine =
      engine.run(static_cast<std::uint32_t>(candidates.size()), handler);
  validator_.set_domain_cache(nullptr);
  result.domain_cache_hits = domain_cache.hits();
  result.domain_cache_misses = domain_cache.misses();
  result.confirmed = in_candidate_order(candidates, confirmed);
  return result;
}

HttpsSweepResult HttpsSweep::run_with_fetcher(
    std::span<const net::Ipv4Addr> candidates,
    const classify::ChainFetcher& fetch) {
  HttpsSweepResult result;
  result.funnel.candidates = candidates.size();
  x509::DomainCache domain_cache;
  validator_.set_domain_cache(&domain_cache);
  std::vector<std::uint8_t> confirmed(candidates.size(), 0);
  FetcherSweepHandler handler(candidates, fetch, validator_, fetches_,
                              result.funnel, confirmed);
  ProbeEngine engine(config_, model_);
  result.engine =
      engine.run(static_cast<std::uint32_t>(candidates.size()), handler);
  validator_.set_domain_cache(nullptr);
  result.domain_cache_hits = domain_cache.hits();
  result.domain_cache_misses = domain_cache.misses();
  result.confirmed = in_candidate_order(candidates, confirmed);
  return result;
}

}  // namespace ixp::probe
