// ProbeEngine — the discrete-event heart of the async measurement path
// (DESIGN.md §15).
//
// The engine drives thousands of concurrent in-flight measurements over
// the synthetic network as a simulation: per-attempt latency/loss come
// from the seeded NetModel, timeouts ride a TimerWheel, and budgets bound
// the work (attempts per exchange with exponential backoff, a global
// in-flight cap, an optional run deadline). A measurement ("item") is a
// short protocol of numbered exchanges — a resolver probe is one
// exchange, a certificate sweep is one per fetch, the metadata harvest is
// PTR then SOA — described to the engine through a ProbeHandler.
//
// Determinism: handler callbacks fire in virtual-time order, virtual time
// is quantized to wheel ticks, and every attempt's fate is a pure
// function of (seed, item key, exchange, attempt). Outcomes therefore
// never depend on the concurrency cap or host scheduling, which is what
// the differential suite exploits: the synchronous oracle replays the
// same draws and must reach byte-identical results.
#pragma once

#include <cstdint>
#include <vector>

#include "probe/net_model.hpp"
#include "probe/timer_wheel.hpp"

namespace ixp::probe {

struct EngineConfig {
  /// Global concurrency cap: items in flight at once.
  std::uint32_t max_in_flight = 4096;
  /// Attempts per exchange before the exchange times out.
  std::uint32_t max_attempts = 3;
  /// Timeout of attempt 0; doubles per retry (exponential backoff).
  std::uint32_t timeout_us = 250'000;
  /// Virtual-time budget for the whole run; 0 = unbounded. Work still in
  /// flight when the clock passes the deadline is cancelled.
  std::uint64_t run_deadline_us = 0;
};

/// Final fate of one item.
enum class Outcome : std::uint8_t { kCompleted, kTimedOut, kCancelled };

/// Handler verdict after a response or an exhausted exchange.
enum class Step : std::uint8_t {
  kDone,          // item finished (normally or with partial data)
  kNextExchange,  // advance to exchange + 1
  kAbort,         // give up; from on_timeout this marks the item timed out
};

/// Counters the engine maintains; `balanced()` is the exact identity the
/// tests assert. merge() composes per-chunk stats (sums; virtual_us takes
/// the max, like wall-clock under parallel composition).
struct EngineStats {
  std::uint64_t issued = 0;     // items started
  std::uint64_t completed = 0;  // finished via a handler kDone
  std::uint64_t timed_out = 0;  // aborted on an exhausted exchange
  std::uint64_t cancelled = 0;  // in flight when the run deadline hit
  std::uint64_t unissued = 0;   // never started (deadline before issue)
  std::uint64_t attempts = 0;   // queries put on the wire
  std::uint64_t retries = 0;    // attempts beyond the first per exchange
  std::uint64_t responses = 0;  // attempts answered in time
  std::uint64_t losses = 0;     // attempts lost or too slow
  std::uint64_t virtual_us = 0; // virtual clock at the end of the run

  [[nodiscard]] bool balanced() const noexcept {
    return issued == completed + timed_out + cancelled;
  }
  void merge(const EngineStats& other) noexcept;
};

/// One measurement protocol, described to the engine. The engine calls
/// exchange_answers() exactly once per (item, exchange) — it must be a
/// pure predicate of those two (this is where handlers perform the actual
/// lookup/fetch and stash its result). on_response/on_timeout decide how
/// the protocol proceeds; on_outcome reports the item's final fate.
class ProbeHandler {
 public:
  virtual ~ProbeHandler() = default;

  /// Key mixed into every NetModel draw for this item (e.g. its address).
  [[nodiscard]] virtual std::uint64_t item_key(std::uint32_t item) const = 0;

  /// Whether the target answers this exchange at all (behavior-level:
  /// a closed resolver or dead IP never answers; loss is layered on top
  /// by the NetModel).
  virtual bool exchange_answers(std::uint32_t item, std::uint32_t exchange) = 0;

  virtual Step on_response(std::uint32_t item, std::uint32_t exchange,
                           std::uint64_t now_us) = 0;

  /// All attempts of `exchange` timed out. kAbort marks the item timed
  /// out; kDone completes it with whatever was gathered; kNextExchange
  /// degrades and moves on.
  virtual Step on_timeout(std::uint32_t item, std::uint32_t exchange,
                          std::uint64_t now_us) = 0;

  virtual void on_outcome(std::uint32_t /*item*/, Outcome /*outcome*/,
                          std::uint64_t /*now_us*/) {}
};

class ProbeEngine {
 public:
  explicit ProbeEngine(EngineConfig config = {}, NetModel model = {})
      : config_(config), model_(model) {}

  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] const NetModel& model() const noexcept { return model_; }

  /// Runs items 0..item_count-1 through the handler's protocol. Reusable;
  /// each run starts a fresh virtual clock.
  EngineStats run(std::uint32_t item_count, ProbeHandler& handler);

 private:
  enum class ItemState : std::uint8_t { kIdle, kInFlight, kFinal };

  void run_item_linear(std::uint32_t item, ProbeHandler& handler);
  void start_exchange(std::uint32_t item, std::uint32_t exchange,
                      std::uint64_t now_us, ProbeHandler& handler);
  void issue_attempt(std::uint32_t item, std::uint32_t exchange,
                     std::uint32_t attempt, bool answers, std::uint64_t now_us);
  void apply_step(Step step, bool from_timeout, std::uint32_t item,
                  std::uint32_t exchange, std::uint64_t now_us,
                  ProbeHandler& handler);
  void finalize(std::uint32_t item, Outcome outcome, std::uint64_t now_us,
                ProbeHandler& handler);
  void fire(std::uint64_t payload, ProbeHandler& handler);
  [[nodiscard]] std::uint64_t attempt_timeout(std::uint32_t attempt) const {
    return static_cast<std::uint64_t>(config_.timeout_us) << attempt;
  }
  [[nodiscard]] std::uint64_t exchange_timeout_total() const;

  EngineConfig config_;
  NetModel model_;
  TimerWheel wheel_;
  EngineStats stats_;
  std::vector<ItemState> state_;
  ProbeHandler* handler_ = nullptr;  // valid during run() only
  std::uint32_t in_flight_ = 0;
  std::uint64_t horizon_us_ = 0;  // latest item-final virtual time
};

}  // namespace ixp::probe
