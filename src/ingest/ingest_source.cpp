#include "ingest/ingest_source.hpp"

#include <algorithm>

namespace ixp::ingest {

std::vector<std::unique_ptr<IngestSource>> SpanSource::split(std::size_t want) {
  std::vector<std::unique_ptr<IngestSource>> parts;
  const std::size_t remaining = samples_.size() - cursor_;
  if (want == 0 || remaining == 0) return parts;

  // Cut the remainder on batch boundaries: each part re-emits exactly
  // the batches (and first_seq keys) the serial walk would, just claimed
  // by different workers.
  const std::size_t batches = (remaining + batch_size_ - 1) / batch_size_;
  const std::size_t per_part = (batches + want - 1) / want;
  parts.reserve(std::min(want, batches));
  for (std::size_t b = 0; b < batches; b += per_part) {
    const std::size_t begin = cursor_ + b * batch_size_;
    const std::size_t count =
        std::min(per_part * batch_size_, samples_.size() - begin);
    parts.push_back(std::make_unique<SpanSource>(
        samples_.subspan(begin, count), batch_size_, base_seq_ + begin));
  }
  cursor_ = samples_.size();  // the parent's remainder is now owned by parts
  return parts;
}

/// One worker's slice of a mapped trace: a TraceCursor over one segment,
/// flushing its running ReaderStats into the parent's per-segment slot
/// on every pull so the accounting is current even when an exception
/// aborts the analysis mid-segment. Each slot is written by exactly one
/// consumer and read by the caller only after the workers are joined.
class MappedSource::SegmentSource final : public IngestSource {
 public:
  SegmentSource(std::span<const std::byte> trace, sflow::TraceSegment seg,
                sflow::ReaderStats* slot)
      : cursor_(trace, seg, sflow::ReadPolicy::lenient()), slot_(slot) {}

  SourceStatus next_batch(SampleBatch& out) override {
    std::uint64_t seq_base = 0;
    const auto samples = cursor_.read_record(seq_base);
    *slot_ = cursor_.stats();
    if (samples.empty()) return SourceStatus::kEnd;
    out.samples = samples;
    out.first_seq = seq_base;
    return SourceStatus::kBatch;
  }

  [[nodiscard]] sflow::ReaderStats stats() const override {
    return cursor_.stats();
  }

 private:
  sflow::TraceCursor cursor_;
  sflow::ReaderStats* slot_;
};

void MappedSource::segment(std::size_t want) {
  segments_ = sflow::TraceSegmenter::split(bytes_, want);
  per_segment_.assign(segments_.size(), sflow::ReaderStats{});
  segmented_ = true;
}

SourceStatus MappedSource::next_batch(SampleBatch& out) {
  if (!segmented_) {
    // Serial pull: one segment, exactly the streamed reader's walk.
    segment(1);
    serial_segment_ = 0;
    cursor_.reset();
  }
  while (serial_segment_ < segments_.size()) {
    if (!cursor_) {
      cursor_ = std::make_unique<sflow::TraceCursor>(
          bytes_, segments_[serial_segment_], sflow::ReadPolicy::lenient());
    }
    std::uint64_t seq_base = 0;
    const auto samples = cursor_->read_record(seq_base);
    per_segment_[serial_segment_] = cursor_->stats();
    if (!samples.empty()) {
      out.samples = samples;
      out.first_seq = seq_base;
      return SourceStatus::kBatch;
    }
    cursor_.reset();
    ++serial_segment_;
  }
  return SourceStatus::kEnd;
}

std::vector<std::unique_ptr<IngestSource>> MappedSource::split(
    std::size_t want) {
  std::vector<std::unique_ptr<IngestSource>> parts;
  if (want == 0) return parts;
  segment(want);
  serial_segment_ = segments_.size();  // the parent's remainder is spoken for
  cursor_.reset();
  parts.reserve(segments_.size());
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    parts.push_back(std::make_unique<SegmentSource>(bytes_, segments_[s],
                                                    &per_segment_[s]));
  }
  return parts;
}

}  // namespace ixp::ingest
