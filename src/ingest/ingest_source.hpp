// IngestSource — the one way sample streams enter the analysis engine.
//
// The engine used to grow an analyze() overload per input shape: a
// pull-function, a streamed TraceReader, an in-memory span, a mapped
// trace — and the collector service would have added a fifth (a live
// socket feed). IngestSource collapses them: anything that can deliver
// batches of FlowSamples with stream-position keys is a source, and the
// analyzer, the serve event loop, and the CLI all consume this single
// API instead of one code path per shape.
//
// The contract has three parts:
//
//   next_batch(SampleBatch&) -> SourceStatus
//     Serial pull. Each batch is a view into source-owned storage, valid
//     until the next pull (or the source's destruction), plus the stream
//     key of its first sample. Keys must order samples exactly as the
//     equivalent single-stream walk would: contiguous running indices
//     for in-memory shapes, sflow::stream_seq_key(offset, index) for
//     trace-backed ones. kEnd ends the stream.
//
//   stats() / ok()
//     ReaderStats accounting for trace-backed sources (the exact byte
//     taxonomy of DESIGN.md §8: every input byte is header, delivered,
//     or skipped); zeros for in-memory shapes. ok() turns false when a
//     source's error budget is exceeded and the stream was cut short.
//
//   split(want) -> sub-sources
//     Parallel plan. A source that can be decoded concurrently (a mapped
//     trace, a span) cuts its remainder into up to `want` independently
//     consumable sub-sources; worker threads claim and drain them with
//     no cross-worker sequence handoff, because every batch carries its
//     own position-derived key. A serial source (an istream, a socket
//     feed) returns an empty vector and the analyzer pumps it from one
//     thread instead. Sub-sources borrow the parent (which must outlive
//     them) and partition its accounting; after a split() the parent
//     itself must not be pulled again.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sflow/mapped_trace.hpp"
#include "sflow/trace.hpp"
#include "sflow/trace_segment.hpp"

namespace ixp::ingest {

/// Outcome of one next_batch() pull.
enum class SourceStatus {
  kBatch,  ///< `out` holds at least one sample
  kEnd,    ///< end of stream; `out` is untouched
};

/// One unit of work: samples occupying stream positions
/// [first_seq, first_seq + samples.size()) — running indices for
/// in-memory sources, record-granular stream_seq_key positions for
/// trace-backed ones (the low 16 bits index within the record, so
/// first_seq + i is sample i's key either way).
struct SampleBatch {
  std::span<const sflow::FlowSample> samples;
  std::uint64_t first_seq = 0;
};

class IngestSource {
 public:
  virtual ~IngestSource() = default;

  /// Delivers the next batch. The returned view stays valid until the
  /// next next_batch() call on this source (or its destruction).
  virtual SourceStatus next_batch(SampleBatch& out) = 0;

  /// Accounting accumulated so far. Trace-backed sources report the
  /// exact reader taxonomy; in-memory sources report zeros.
  [[nodiscard]] virtual sflow::ReaderStats stats() const { return {}; }

  /// False once the source's error budget was exceeded and the stream
  /// was (or will be) cut short.
  [[nodiscard]] virtual bool ok() const { return true; }

  /// Cuts the remaining stream into up to `want` sub-sources that may be
  /// consumed concurrently (each by one thread). Empty means the source
  /// is serial and must be pumped. Default: serial.
  [[nodiscard]] virtual std::vector<std::unique_ptr<IngestSource>> split(
      std::size_t want) {
    (void)want;
    return {};
  }
};

/// Adapts a pull function (anything that can fill a vector of samples)
/// with running-counter stream keys: the callable clears and refills the
/// vector, returning the number delivered (0 = end).
class FunctionSource final : public IngestSource {
 public:
  using Fn = std::function<std::size_t(std::vector<sflow::FlowSample>&)>;

  explicit FunctionSource(Fn fn) : fn_(std::move(fn)) {}

  SourceStatus next_batch(SampleBatch& out) override {
    const std::size_t n = fn_(scratch_);
    if (n == 0) return SourceStatus::kEnd;
    out.samples = std::span<const sflow::FlowSample>{scratch_.data(), n};
    out.first_seq = next_seq_;
    next_seq_ += n;
    return SourceStatus::kBatch;
  }

 private:
  Fn fn_;
  std::vector<sflow::FlowSample> scratch_;
  std::uint64_t next_seq_ = 0;
};

/// Adapts an in-memory sample span: fixed-size batches with running-index
/// keys. split() cuts on batch boundaries, so the (batch, first_seq)
/// pairs a split consumption produces are exactly the serial ones — the
/// report stays byte-identical for any split.
class SpanSource final : public IngestSource {
 public:
  SpanSource(std::span<const sflow::FlowSample> samples,
             std::size_t batch_size, std::uint64_t base_seq = 0)
      : samples_(samples),
        batch_size_(batch_size == 0 ? 1 : batch_size),
        base_seq_(base_seq) {}

  SourceStatus next_batch(SampleBatch& out) override {
    if (cursor_ >= samples_.size()) return SourceStatus::kEnd;
    const std::size_t n = std::min(batch_size_, samples_.size() - cursor_);
    out.samples = samples_.subspan(cursor_, n);
    out.first_seq = base_seq_ + cursor_;
    cursor_ += n;
    return SourceStatus::kBatch;
  }

  std::vector<std::unique_ptr<IngestSource>> split(std::size_t want) override;

 private:
  std::span<const sflow::FlowSample> samples_;
  std::size_t batch_size_;
  std::uint64_t base_seq_;
  std::size_t cursor_ = 0;
};

/// Adapts a streamed sflow::TraceReader: record-granular batches whose
/// keys are the records' byte offsets (stream_seq_key), the property
/// that keeps a streamed analysis byte-identical to a mapped one over
/// the same trace. Serial by nature — an istream has one cursor.
class ReaderSource final : public IngestSource {
 public:
  explicit ReaderSource(sflow::TraceReader& reader) : reader_(&reader) {}

  SourceStatus next_batch(SampleBatch& out) override {
    std::uint64_t seq_base = 0;
    const std::size_t n = reader_->read_record(scratch_, seq_base);
    if (n == 0) return SourceStatus::kEnd;
    out.samples = std::span<const sflow::FlowSample>{scratch_.data(), n};
    out.first_seq = seq_base;
    return SourceStatus::kBatch;
  }

  [[nodiscard]] sflow::ReaderStats stats() const override {
    return reader_->stats();
  }
  [[nodiscard]] bool ok() const override { return reader_->ok(); }

 private:
  sflow::TraceReader* reader_;
  std::vector<sflow::FlowSample> scratch_;
};

/// Adapts a mapped trace. split() cuts the byte span on plausible record
/// boundaries (TraceSegmenter) into per-segment cursor sources that
/// decode concurrently; serially pulled, it walks the same single
/// segment the streamed reader would. Segments always decode leniently —
/// one segment cannot know the others' error count — so the policy is a
/// post-hoc budget on the summed taxonomy: within_budget() (and ok())
/// report whether the whole-trace error count stayed inside it.
/// Per-segment stats partition the whole-file accounting exactly:
///   trace size == 12 + total.bytes_delivered + total.bytes_skipped.
class MappedSource final : public IngestSource {
 public:
  explicit MappedSource(const sflow::MappedTrace& trace,
                        sflow::ReadPolicy policy = sflow::ReadPolicy::strict())
      : bytes_(trace.bytes()), policy_(policy) {}

  /// For tests and in-memory images: any trace byte span, header included.
  explicit MappedSource(std::span<const std::byte> trace_bytes,
                        sflow::ReadPolicy policy = sflow::ReadPolicy::strict())
      : bytes_(trace_bytes), policy_(policy) {}

  SourceStatus next_batch(SampleBatch& out) override;
  std::vector<std::unique_ptr<IngestSource>> split(std::size_t want) override;

  /// Summed per-segment taxonomy (exact whole-file accounting).
  [[nodiscard]] sflow::ReaderStats stats() const override {
    sflow::ReaderStats total;
    for (const auto& s : per_segment_) total += s;
    return total;
  }
  /// True while the summed error count is inside the policy budget.
  [[nodiscard]] bool within_budget() const {
    return stats().errors() <= policy_.max_errors;
  }
  [[nodiscard]] bool ok() const override { return within_budget(); }

  [[nodiscard]] const std::vector<sflow::TraceSegment>& segments() const noexcept {
    return segments_;
  }
  [[nodiscard]] const std::vector<sflow::ReaderStats>& per_segment() const noexcept {
    return per_segment_;
  }
  [[nodiscard]] const sflow::ReadPolicy& policy() const noexcept {
    return policy_;
  }

 private:
  class SegmentSource;

  /// Lays out segments and their stats slots; idempotent guard for the
  /// serial path (split() overwrites any serial layout).
  void segment(std::size_t want);

  std::span<const std::byte> bytes_;
  sflow::ReadPolicy policy_;
  std::vector<sflow::TraceSegment> segments_;
  std::vector<sflow::ReaderStats> per_segment_;
  // Serial-pull state.
  std::unique_ptr<sflow::TraceCursor> cursor_;
  std::size_t serial_segment_ = 0;
  bool segmented_ = false;
};

}  // namespace ixp::ingest
