// The IXP itself: members, ports, and the public switching fabric.
//
// The paper's IXP has 443 member ASes in week 35 growing to 457 by week 51,
// "adding between 1-2 members per week". Each member connects via one or
// more ports on the layer-2 fabric; sFlow samples carry the port MACs, so
// everything the filter cascade needs to decide "member-to-member or not"
// is a MAC -> member lookup. Resellers are ordinary members whose port
// fronts many remote customer ASes (§4.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ipv4.hpp"
#include "sflow/headers.hpp"

namespace ixp::fabric {

/// Business role of a member network (used for workload composition).
enum class MemberKind : std::uint8_t {
  kTier1,
  kTransit,
  kEyeball,
  kContent,
  kCdn,
  kHoster,
  kCloud,
  kReseller,
  kEnterprise,
};

struct Member {
  net::Asn asn;
  std::string name;
  MemberKind kind = MemberKind::kEnterprise;
  /// Absolute week number the member joined; founding members use any
  /// value <= the first observed week.
  int join_week = 0;
  std::uint32_t port_id = 0;
  sflow::MacAddr port_mac;
  std::uint32_t port_speed_gbps = 10;
};

/// The IXP's public peering fabric at a single site (logically; the real
/// IXP spreads it over several data centers, which is invisible at the
/// sFlow layer).
class Ixp {
 public:
  /// Adds a member; the port id/MAC are derived from the ASN so that the
  /// mapping is stable across runs. Re-adding an ASN is an error (returns
  /// false) — one public port per member in this model.
  bool add_member(Member member);

  [[nodiscard]] const Member* member_by_asn(net::Asn asn) const;
  [[nodiscard]] const Member* member_by_mac(sflow::MacAddr mac) const;

  /// True when `mac` belongs to a member whose join week is <= `week`.
  [[nodiscard]] bool is_member_port(sflow::MacAddr mac, int week) const;

  /// Members present in the given week, in ASN order.
  [[nodiscard]] std::vector<const Member*> members_at(int week) const;
  [[nodiscard]] std::size_t member_count_at(int week) const;

  [[nodiscard]] const std::vector<Member>& all_members() const noexcept {
    return members_;
  }

  /// The fabric's own management MAC (route servers, monitoring): traffic
  /// to/from it is the "local" class of Figure 1.
  [[nodiscard]] sflow::MacAddr management_mac() const noexcept {
    return management_mac_;
  }

  /// Derives the stable port MAC for a member ASN.
  [[nodiscard]] static sflow::MacAddr port_mac_for(net::Asn asn) noexcept {
    return sflow::MacAddr::from_id(0xA500000000ULL + asn.value());
  }

 private:
  /// Packs a MAC into a 48-bit integer key (hot path: two lookups/sample).
  [[nodiscard]] static std::uint64_t mac_key(sflow::MacAddr mac) noexcept {
    std::uint64_t key = 0;
    for (const std::uint8_t octet : mac.octets()) key = (key << 8) | octet;
    return key;
  }

  std::vector<Member> members_;
  std::unordered_map<net::Asn, std::size_t> by_asn_;
  std::unordered_map<std::uint64_t, std::size_t> by_mac_;
  sflow::MacAddr management_mac_ = sflow::MacAddr::from_id(0xFEED0001ULL);
};

}  // namespace ixp::fabric
