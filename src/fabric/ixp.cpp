#include "fabric/ixp.hpp"

#include <algorithm>

namespace ixp::fabric {

bool Ixp::add_member(Member member) {
  if (by_asn_.count(member.asn) > 0) return false;
  if (member.port_mac == sflow::MacAddr{})
    member.port_mac = port_mac_for(member.asn);
  if (member.port_id == 0)
    member.port_id = member.asn.value() % 100000 + 1;
  const std::size_t index = members_.size();
  by_asn_.emplace(member.asn, index);
  by_mac_.emplace(mac_key(member.port_mac), index);
  members_.push_back(std::move(member));
  return true;
}

const Member* Ixp::member_by_asn(net::Asn asn) const {
  const auto it = by_asn_.find(asn);
  return it == by_asn_.end() ? nullptr : &members_[it->second];
}

const Member* Ixp::member_by_mac(sflow::MacAddr mac) const {
  const auto it = by_mac_.find(mac_key(mac));
  return it == by_mac_.end() ? nullptr : &members_[it->second];
}

bool Ixp::is_member_port(sflow::MacAddr mac, int week) const {
  const Member* member = member_by_mac(mac);
  return member != nullptr && member->join_week <= week;
}

std::vector<const Member*> Ixp::members_at(int week) const {
  std::vector<const Member*> out;
  out.reserve(members_.size());
  for (const Member& member : members_) {
    if (member.join_week <= week) out.push_back(&member);
  }
  std::sort(out.begin(), out.end(),
            [](const Member* a, const Member* b) { return a->asn < b->asn; });
  return out;
}

std::size_t Ixp::member_count_at(int week) const {
  return static_cast<std::size_t>(
      std::count_if(members_.begin(), members_.end(),
                    [week](const Member& m) { return m.join_week <= week; }));
}

}  // namespace ixp::fabric
