#include "core/vantage_point.hpp"

#include <algorithm>
#include <string>

#include "probe/metadata_pass.hpp"
#include "probe/sweeps.hpp"

namespace ixp::core {

WeekSession::WeekSession(VantagePoint& vp, int week)
    : vp_(&vp), week_(week), shard_(*vp.ixp_, week) {}

WeekShard WeekSession::make_shard() const {
  return WeekShard{*vp_->ixp_, week_};
}

WeeklyReport WeekSession::finish(const classify::ChainFetcher& fetch) {
  return vp_->finish_week(std::move(shard_), fetch);
}

VantagePoint::VantagePoint(
    const fabric::Ixp& ixp, const net::RoutingTable& routing,
    const geo::GeoDatabase& geo,
    const std::unordered_map<net::Asn, net::Locality>& locality,
    const dns::ZoneDatabase& dns, const dns::PublicSuffixList& psl,
    const x509::RootStore& roots, VantageOptions options)
    : ixp_(&ixp),
      routing_(&routing),
      geo_(&geo),
      locality_(&locality),
      dns_(&dns),
      psl_(&psl),
      roots_(&roots),
      options_(options) {}

WeeklyReport VantagePoint::finish_week(WeekShard&& shard,
                                       const classify::ChainFetcher& fetch) {
  classify::TrafficDissector& dissector = shard.dissector_;
  WeeklyReport report;
  report.week = shard.week();
  report.filters = shard.counters_;

  // ---- HTTPS probing -------------------------------------------------------
  // Candidates arrive sorted by address, so the funnel and the fetches
  // happen in canonical order no matter how the week was sharded. The
  // sweep runs the crawl through the probe engine (lossless model), whose
  // funnel and confirmed set are identical to the synchronous prober's.
  const std::vector<net::Ipv4Addr> candidates = dissector.https_candidates();
  probe::HttpsSweep sweep{*roots_, *psl_, options_.fetches_per_ip};
  probe::HttpsSweepResult sweep_result =
      sweep.run_with_fetcher(candidates, fetch);
  report.https_funnel = sweep_result.funnel;
  const std::vector<net::Ipv4Addr>& confirmed = sweep_result.confirmed;
  std::unordered_map<net::Ipv4Addr, x509::CertificateChain> confirmed_chains;
  for (const net::Ipv4Addr addr : confirmed) {
    dissector.confirm_https(addr);
    auto chains = fetch(addr, 1);
    if (!chains.empty()) confirmed_chains.emplace(addr, std::move(chains.front()));
  }
  report.dissection = dissector.summarize();

  // ---- visibility aggregation ---------------------------------------------
  const auto locality_index = [&](net::Asn asn) -> int {
    const auto it = locality_->find(asn);
    if (it == locality_->end()) return 2;  // unknown: global
    switch (it->second) {
      case net::Locality::kMember: return 0;
      case net::Locality::kNear: return 1;
      default: return 2;
    }
  };

  std::unordered_set<net::Ipv4Prefix> peering_prefixes;
  std::unordered_set<net::Asn> peering_ases;
  std::unordered_set<geo::CountryCode> peering_countries;
  std::unordered_set<net::Ipv4Prefix> server_prefixes;
  std::unordered_set<net::Asn> server_ases;
  std::unordered_set<geo::CountryCode> server_countries;

  // Canonical iteration order: sorted by address. Hash-map iteration order
  // depends on insertion history, which differs between shard splits; the
  // sort (plus exact integer byte tallies upstream) is what makes the
  // report — including its floating-point aggregates — bit-identical for
  // any thread count.
  std::vector<net::Ipv4Addr> addrs;
  addrs.reserve(dissector.activity().size());
  for (const auto& [addr, info] : dissector.activity()) addrs.push_back(addr);
  std::sort(addrs.begin(), addrs.end());

  // Attribute every address in one batched LPM pass per table: the flat
  // tables prefetch their own arrays a window ahead, and the loop below
  // reads the results through pointers (no per-IP optional copies).
  std::vector<const net::Route*> routes(addrs.size());
  std::vector<const geo::CountryCode*> countries(addrs.size());
  routing_->routes_of(addrs, routes);
  geo_->countries_of(addrs, countries);

  // Host headers per server, collected during aggregation and borrowed by
  // the metadata items below (parallel to report.servers).
  std::vector<std::vector<std::string>> server_hosts;

  for (std::size_t i = 0; i < addrs.size(); ++i) {
    const net::Ipv4Addr addr = addrs[i];
    const classify::IpActivity& info = dissector.activity().at(addr);
    ++report.peering_ips;
    const net::Route* route = routes[i];
    const geo::CountryCode* country = countries[i];
    const bool server = info.web_server();
    const double info_bytes = static_cast<double>(info.bytes);

    if (route) {
      peering_prefixes.insert(route->prefix);
      peering_ases.insert(route->origin);
      const int li = locality_index(route->origin);
      report.peering_locality[li].ips += 1;
      report.peering_locality[li].prefixes.insert(route->prefix);
      report.peering_locality[li].ases.insert(route->origin);
      report.peering_locality[li].bytes += info_bytes;
      AsTally& as_tally = report.by_as[route->origin];
      as_tally.ips += 1;
      as_tally.bytes += info_bytes;
      if (server) {
        as_tally.server_ips += 1;
        as_tally.server_bytes += info_bytes;
        server_prefixes.insert(route->prefix);
        server_ases.insert(route->origin);
        report.server_locality[li].ips += 1;
        report.server_locality[li].prefixes.insert(route->prefix);
        report.server_locality[li].ases.insert(route->origin);
        report.server_locality[li].bytes += info_bytes;
      }
    }
    if (country) {
      peering_countries.insert(*country);
      CountryTally& tally = report.by_country[*country];
      tally.ips += 1;
      tally.bytes += info_bytes;
      if (server) {
        tally.server_ips += 1;
        tally.server_bytes += info_bytes;
        server_countries.insert(*country);
      }
    }

    if (!server) continue;
    ++report.server_ips;
    ServerObservation obs;
    obs.addr = addr;
    obs.bytes = info_bytes;
    obs.http = info.http_server();
    obs.https = info.https_server();
    obs.rtmp = (info.flags & classify::kSeenRtmp1935) != 0;
    obs.also_client = info.client();
    if (route) obs.asn = route->origin;
    if (country) obs.country = *country;

    server_hosts.push_back(dissector.hosts_of(addr));
    report.servers.push_back(std::move(obs));
  }

  // ---- metadata harvest ----------------------------------------------------
  // One batched pass over all servers instead of a per-server harvester
  // loop: PTR/SOA lookups ride the probe engine with a shared resolver
  // cache. The pass is lossless here, so each server's metadata is exactly
  // what MetadataHarvester::harvest would have produced.
  std::vector<probe::MetadataItem> items;
  items.reserve(report.servers.size());
  for (std::size_t i = 0; i < report.servers.size(); ++i) {
    const net::Ipv4Addr addr = report.servers[i].addr;
    const auto chain_it = confirmed_chains.find(addr);
    items.push_back(probe::MetadataItem{
        addr, server_hosts[i],
        chain_it == confirmed_chains.end() ? nullptr : &chain_it->second});
  }
  probe::MetadataPass pass{*dns_, *psl_};
  probe::MetadataPassResult harvested = pass.run(items);
  for (std::size_t i = 0; i < report.servers.size(); ++i) {
    ServerObservation& obs = report.servers[i];
    obs.metadata = std::move(harvested.metadata[i]);
    // §2.4 cleaning: a server whose metadata was entirely cleaned away
    // drops out of the §5 analyses (but still counts as a server IP).
    // (With no metadata at all, hostname is necessarily absent too, so
    // testing it matches the old direct reverse-lookup check.)
    if (!obs.metadata.has_any() &&
        (!server_hosts[i].empty() || obs.metadata.hostname))
      ++report.metadata_cleaned_out;
    report.metadata_coverage.add(obs.metadata);
  }

  report.peering_prefixes = peering_prefixes.size();
  report.peering_ases = peering_ases.size();
  report.peering_countries = peering_countries.size();
  report.server_prefixes = server_prefixes.size();
  report.server_ases = server_ases.size();
  report.server_countries = server_countries.size();
  return report;
}

}  // namespace ixp::core
