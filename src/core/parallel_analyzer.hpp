// ParallelAnalyzer — the sharded, multi-threaded week-analysis engine.
//
// Splits a week's sample stream into batches, fans the batches out to N
// worker threads (each accumulating into its own WeekShard), then reduces
// the shards in worker-index order and runs the ordinary probe/aggregate
// phase. Because WeekShard is a commutative monoid (exact integer byte
// tallies, OR-ed evidence, order-statistics host sets) and the reduce
// order is fixed, the N-thread report is byte-identical to the 1-thread
// report for any N — the determinism contract the parity tests pin down.
//
// Four input shapes:
//   - a BatchSource pull function (anything that can fill a batch),
//   - a sflow::TraceReader (recorded traces; read_record feeds the queue),
//   - an in-memory sample span (zero-copy; workers claim chunks),
//   - a sflow::MappedTrace (zero-copy; workers claim byte segments and
//     decode them in parallel with per-worker TraceCursors).
//
// For the streamed shapes the calling thread acts as the reader: trace
// decoding through an istream is serial by nature, while filtering, HTTP
// string matching, and per-IP evidence accumulation — the hot path — run
// on the workers. The mapped shape removes that Amdahl bottleneck:
// decoding itself fans out, because TraceSegmenter cuts the byte span on
// plausible record boundaries and every sample's stream key is derived
// from its byte offset (sflow::stream_seq_key) instead of a running
// counter — no sequence handoff between workers, and the N-thread mapped
// report stays byte-identical to the 1-thread streamed report.
//
// Worker failures are contained (DESIGN.md §8): an exception escaping a
// worker can never deadlock the bounded queue or terminate the process.
// By default the queue is aborted, every thread is joined, and the first
// exception is rethrown on the calling thread. With lenient_workers set,
// the failing batch is dropped, the week completes, and the report comes
// back with degraded=true plus per-worker dropped-batch counts.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "core/vantage_point.hpp"
#include "sflow/mapped_trace.hpp"
#include "sflow/trace.hpp"
#include "sflow/trace_segment.hpp"

namespace ixp::core {

/// Ingest health of one mapped-trace analysis: the per-segment error
/// taxonomies in segment (= stream) order, their sum, and whether that
/// sum stayed within the caller's ReadPolicy budget. Segments always
/// decode leniently — a worker cannot know how many errors the other
/// segments hit — so the budget is applied to the summed taxonomy after
/// the fact. The accounting invariant carries over exactly:
///   trace size == 12 + total.bytes_delivered + total.bytes_skipped.
struct MappedIngest {
  std::vector<sflow::TraceSegment> segments;
  std::vector<sflow::ReaderStats> per_segment;
  sflow::ReaderStats total;
  bool within_budget = true;
};

struct ParallelOptions {
  /// Worker thread count; 0 means std::thread::hardware_concurrency().
  unsigned threads = 1;
  /// Samples per work unit handed to a worker.
  std::size_t batch_size = 512;
  /// Bound on batches buffered between the reader and the workers.
  std::size_t max_queued_batches = 64;
  /// When false (default), the first worker exception aborts the week and
  /// is rethrown from analyze(). When true, a throwing batch is dropped
  /// and the week completes with WeeklyReport::degraded set.
  bool lenient_workers = false;
  /// Instrumentation hook run on the worker thread before each batch is
  /// observed (metrics, chaos testing). An exception it throws is handled
  /// exactly like a classifier exception on that batch.
  std::function<void(std::span<const sflow::FlowSample>, std::uint64_t)>
      worker_hook;
};

class ParallelAnalyzer {
 public:
  /// Fills `out` with the next batch of samples (the callee may clear and
  /// reuse the vector); returns the number delivered, 0 at end-of-stream.
  using BatchSource = std::function<std::size_t(std::vector<sflow::FlowSample>&)>;

  explicit ParallelAnalyzer(VantagePoint& vantage, ParallelOptions options = {});

  /// Analyzes one week pulled from `source`.
  [[nodiscard]] WeeklyReport analyze(int week, const BatchSource& source,
                                     const classify::ChainFetcher& fetch);

  /// Analyzes one week from a recorded trace. Batches are record-granular
  /// and carry offset-derived stream keys, so the result is byte-identical
  /// to a mapped analysis of the same bytes at any thread count.
  [[nodiscard]] WeeklyReport analyze(int week, sflow::TraceReader& reader,
                                     const classify::ChainFetcher& fetch);

  /// Analyzes one week from a mapped trace: the span is cut into
  /// 2×threads segments and workers claim and decode them in parallel.
  /// `policy` is applied to the summed per-segment taxonomy (see
  /// MappedIngest); pass `ingest` to receive the accounting breakdown.
  [[nodiscard]] WeeklyReport analyze(
      int week, const sflow::MappedTrace& trace,
      const classify::ChainFetcher& fetch,
      sflow::ReadPolicy policy = sflow::ReadPolicy::strict(),
      MappedIngest* ingest = nullptr);

  /// Analyzes one week of in-memory samples (zero-copy fan-out).
  [[nodiscard]] WeeklyReport analyze(int week,
                                     std::span<const sflow::FlowSample> samples,
                                     const classify::ChainFetcher& fetch);

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

 private:
  VantagePoint* vantage_;
  ParallelOptions options_;
  unsigned threads_;
};

}  // namespace ixp::core
