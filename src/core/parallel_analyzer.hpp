// ParallelAnalyzer — the sharded, multi-threaded week-analysis engine.
//
// Splits a week's sample stream into batches, fans the batches out to N
// worker threads (each accumulating into its own WeekShard), then reduces
// the shards in worker-index order and runs the ordinary probe/aggregate
// phase. Because WeekShard is a commutative monoid (exact integer byte
// tallies, OR-ed evidence, order-statistics host sets) and the reduce
// order is fixed, the N-thread report is byte-identical to the 1-thread
// report for any N — the determinism contract the parity tests pin down.
//
// One input shape: an ingest::IngestSource. The engine asks the source
// for a parallel plan (split()); a splittable source — a mapped trace, an
// in-memory span — hands back sub-sources that workers claim and decode
// concurrently with no sequence handoff, because every batch carries its
// own position-derived stream key. A serial source — an istream-backed
// TraceReader, a pull function, a live socket feed — is pumped by the
// calling thread through a bounded queue while the workers run the hot
// path (filtering, HTTP matching, evidence accumulation).
//
// The engine exposes its two halves separately: reduce() is the
// observation phase alone — fan out, merge, hand back the week's fully
// merged WeekShard — and analyze() is reduce() plus the probe/aggregate
// phase. The split exists for the snapshot store: the weeks driver
// persists the merged shard (the mergeable artifact) alongside the
// report, which only reduce() can provide.
//
// Worker failures are contained (DESIGN.md §8): an exception escaping a
// worker can never deadlock the bounded queue or terminate the process.
// By default the queue is aborted, every thread is joined, and the first
// exception is rethrown on the calling thread. With lenient_workers set,
// the failing batch is dropped, the week completes, and the report comes
// back with degraded=true plus per-worker dropped-batch counts.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/vantage_point.hpp"
#include "ingest/ingest_source.hpp"

namespace ixp::core {

struct ParallelOptions {
  /// Worker thread count; 0 means std::thread::hardware_concurrency().
  unsigned threads = 1;
  /// Samples per work unit handed to a worker.
  std::size_t batch_size = 512;
  /// Bound on batches buffered between the reader and the workers.
  std::size_t max_queued_batches = 64;
  /// When false (default), the first worker exception aborts the week and
  /// is rethrown from analyze(). When true, a throwing batch is dropped
  /// and the week completes with WeeklyReport::degraded set.
  bool lenient_workers = false;
  /// Instrumentation hook run on the worker thread before each batch is
  /// observed (metrics, chaos testing). An exception it throws is handled
  /// exactly like a classifier exception on that batch.
  std::function<void(std::span<const sflow::FlowSample>, std::uint64_t)>
      worker_hook;
};

class ParallelAnalyzer {
 public:
  explicit ParallelAnalyzer(VantagePoint& vantage, ParallelOptions options = {});

  /// Analyzes one week pulled from `source` — the single entry point for
  /// every input shape. The source's split() decides between concurrent
  /// claim-and-decode (mapped traces, spans) and a pumped bounded queue
  /// (streamed readers, pull functions, live feeds); either way the
  /// report is byte-identical for any thread count. Check the source's
  /// ok()/stats() afterwards for ingest health.
  [[nodiscard]] WeeklyReport analyze(int week, ingest::IngestSource& source,
                                     const classify::ChainFetcher& fetch);

  /// The observation phase alone: fans `source` out across the workers
  /// and returns the fully merged WeekShard for `session`'s week — no
  /// probing, no aggregation, the session itself is not advanced. The
  /// caller absorbs the shard (analyze() does) or persists it (the weeks
  /// driver does, then absorbs a copy). When non-null, `worker_errors`
  /// receives the per-worker dropped-batch counts — all zero unless
  /// lenient_workers dropped batches.
  [[nodiscard]] WeekShard reduce(WeekSession& session,
                                 ingest::IngestSource& source,
                                 std::vector<std::uint64_t>* worker_errors =
                                     nullptr);

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

 private:
  VantagePoint* vantage_;
  ParallelOptions options_;
  unsigned threads_;
};

}  // namespace ixp::core
