// ParallelAnalyzer — the sharded, multi-threaded week-analysis engine.
//
// Splits a week's sample stream into batches, fans the batches out to N
// worker threads (each accumulating into its own WeekShard), then reduces
// the shards in worker-index order and runs the ordinary probe/aggregate
// phase. Because WeekShard is a commutative monoid (exact integer byte
// tallies, OR-ed evidence, order-statistics host sets) and the reduce
// order is fixed, the N-thread report is byte-identical to the 1-thread
// report for any N — the determinism contract the parity tests pin down.
//
// Three input shapes:
//   - a BatchSource pull function (anything that can fill a batch),
//   - a sflow::TraceReader (recorded traces; read_batch feeds the queue),
//   - an in-memory sample span (zero-copy; workers claim chunks).
//
// The calling thread acts as the reader: trace decoding stays serial
// (istreams are), while filtering, HTTP string matching, and per-IP
// evidence accumulation — the hot path — run on the workers.
//
// Worker failures are contained (DESIGN.md §8): an exception escaping a
// worker can never deadlock the bounded queue or terminate the process.
// By default the queue is aborted, every thread is joined, and the first
// exception is rethrown on the calling thread. With lenient_workers set,
// the failing batch is dropped, the week completes, and the report comes
// back with degraded=true plus per-worker dropped-batch counts.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "core/vantage_point.hpp"
#include "sflow/trace.hpp"

namespace ixp::core {

struct ParallelOptions {
  /// Worker thread count; 0 means std::thread::hardware_concurrency().
  unsigned threads = 1;
  /// Samples per work unit handed to a worker.
  std::size_t batch_size = 512;
  /// Bound on batches buffered between the reader and the workers.
  std::size_t max_queued_batches = 64;
  /// When false (default), the first worker exception aborts the week and
  /// is rethrown from analyze(). When true, a throwing batch is dropped
  /// and the week completes with WeeklyReport::degraded set.
  bool lenient_workers = false;
  /// Instrumentation hook run on the worker thread before each batch is
  /// observed (metrics, chaos testing). An exception it throws is handled
  /// exactly like a classifier exception on that batch.
  std::function<void(std::span<const sflow::FlowSample>, std::uint64_t)>
      worker_hook;
};

class ParallelAnalyzer {
 public:
  /// Fills `out` with the next batch of samples (the callee may clear and
  /// reuse the vector); returns the number delivered, 0 at end-of-stream.
  using BatchSource = std::function<std::size_t(std::vector<sflow::FlowSample>&)>;

  explicit ParallelAnalyzer(VantagePoint& vantage, ParallelOptions options = {});

  /// Analyzes one week pulled from `source`.
  [[nodiscard]] WeeklyReport analyze(int week, const BatchSource& source,
                                     const classify::ChainFetcher& fetch);

  /// Analyzes one week from a recorded trace.
  [[nodiscard]] WeeklyReport analyze(int week, sflow::TraceReader& reader,
                                     const classify::ChainFetcher& fetch);

  /// Analyzes one week of in-memory samples (zero-copy fan-out).
  [[nodiscard]] WeeklyReport analyze(int week,
                                     std::span<const sflow::FlowSample> samples,
                                     const classify::ChainFetcher& fetch);

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

 private:
  VantagePoint* vantage_;
  ParallelOptions options_;
  unsigned threads_;
};

}  // namespace ixp::core
