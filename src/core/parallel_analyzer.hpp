// ParallelAnalyzer — the sharded, multi-threaded week-analysis engine.
//
// Splits a week's sample stream into batches, fans the batches out to N
// worker threads (each accumulating into its own WeekShard), then reduces
// the shards in worker-index order and runs the ordinary probe/aggregate
// phase. Because WeekShard is a commutative monoid (exact integer byte
// tallies, OR-ed evidence, order-statistics host sets) and the reduce
// order is fixed, the N-thread report is byte-identical to the 1-thread
// report for any N — the determinism contract the parity tests pin down.
//
// One input shape: an ingest::IngestSource. The engine asks the source
// for a parallel plan (split()); a splittable source — a mapped trace, an
// in-memory span — hands back sub-sources that workers claim and decode
// concurrently with no sequence handoff, because every batch carries its
// own position-derived stream key. A serial source — an istream-backed
// TraceReader, a pull function, a live socket feed — is pumped by the
// calling thread through a bounded queue while the workers run the hot
// path (filtering, HTTP matching, evidence accumulation). The former
// per-shape analyze() overloads survive as deprecated shims over the
// corresponding ingest:: adapters.
//
// Worker failures are contained (DESIGN.md §8): an exception escaping a
// worker can never deadlock the bounded queue or terminate the process.
// By default the queue is aborted, every thread is joined, and the first
// exception is rethrown on the calling thread. With lenient_workers set,
// the failing batch is dropped, the week completes, and the report comes
// back with degraded=true plus per-worker dropped-batch counts.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "core/vantage_point.hpp"
#include "ingest/ingest_source.hpp"
#include "sflow/mapped_trace.hpp"
#include "sflow/trace.hpp"
#include "sflow/trace_segment.hpp"

namespace ixp::core {

/// Ingest health of one mapped-trace analysis: the per-segment error
/// taxonomies in segment (= stream) order, their sum, and whether that
/// sum stayed within the caller's ReadPolicy budget. Kept for the
/// deprecated mapped-trace shim; new callers read the same facts off
/// ingest::MappedSource directly. The accounting invariant carries over
/// exactly: trace size == 12 + total.bytes_delivered + total.bytes_skipped.
struct MappedIngest {
  std::vector<sflow::TraceSegment> segments;
  std::vector<sflow::ReaderStats> per_segment;
  sflow::ReaderStats total;
  bool within_budget = true;
};

struct ParallelOptions {
  /// Worker thread count; 0 means std::thread::hardware_concurrency().
  unsigned threads = 1;
  /// Samples per work unit handed to a worker.
  std::size_t batch_size = 512;
  /// Bound on batches buffered between the reader and the workers.
  std::size_t max_queued_batches = 64;
  /// When false (default), the first worker exception aborts the week and
  /// is rethrown from analyze(). When true, a throwing batch is dropped
  /// and the week completes with WeeklyReport::degraded set.
  bool lenient_workers = false;
  /// Instrumentation hook run on the worker thread before each batch is
  /// observed (metrics, chaos testing). An exception it throws is handled
  /// exactly like a classifier exception on that batch.
  std::function<void(std::span<const sflow::FlowSample>, std::uint64_t)>
      worker_hook;
};

class ParallelAnalyzer {
 public:
  /// Fills `out` with the next batch of samples (the callee may clear and
  /// reuse the vector); returns the number delivered, 0 at end-of-stream.
  using BatchSource = std::function<std::size_t(std::vector<sflow::FlowSample>&)>;

  explicit ParallelAnalyzer(VantagePoint& vantage, ParallelOptions options = {});

  /// Analyzes one week pulled from `source` — the single entry point for
  /// every input shape. The source's split() decides between concurrent
  /// claim-and-decode (mapped traces, spans) and a pumped bounded queue
  /// (streamed readers, pull functions, live feeds); either way the
  /// report is byte-identical for any thread count. Check the source's
  /// ok()/stats() afterwards for ingest health.
  [[nodiscard]] WeeklyReport analyze(int week, ingest::IngestSource& source,
                                     const classify::ChainFetcher& fetch);

  // ---- deprecated per-shape overloads (thin shims over ingest::
  // adapters; one release, then they go) -------------------------------

  [[deprecated("wrap the callable in ingest::FunctionSource and call "
               "analyze(IngestSource&)")]]
  [[nodiscard]] WeeklyReport analyze(int week, const BatchSource& source,
                                     const classify::ChainFetcher& fetch);

  [[deprecated("wrap the reader in ingest::ReaderSource and call "
               "analyze(IngestSource&)")]]
  [[nodiscard]] WeeklyReport analyze(int week, sflow::TraceReader& reader,
                                     const classify::ChainFetcher& fetch);

  [[deprecated("wrap the trace in ingest::MappedSource and call "
               "analyze(IngestSource&)")]]
  [[nodiscard]] WeeklyReport analyze(
      int week, const sflow::MappedTrace& trace,
      const classify::ChainFetcher& fetch,
      sflow::ReadPolicy policy = sflow::ReadPolicy::strict(),
      MappedIngest* ingest = nullptr);

  [[deprecated("wrap the span in ingest::SpanSource and call "
               "analyze(IngestSource&)")]]
  [[nodiscard]] WeeklyReport analyze(int week,
                                     std::span<const sflow::FlowSample> samples,
                                     const classify::ChainFetcher& fetch);

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

 private:
  VantagePoint* vantage_;
  ParallelOptions options_;
  unsigned threads_;
};

}  // namespace ixp::core
