// ServeService — the always-on collector behind `ixpscope serve`.
//
// Offline analysis gets a whole week as one input; the service gets the
// same stream one datagram at a time, from many concurrent agents, with
// no end in sight. The pieces:
//
//   socket/inject -> AgentQueues (bounded, drop-counting)
//        -> N pump workers, each pulling through a LiveQueueSource
//           (the same ingest::IngestSource API the offline analyzer
//           consumes) into a per-worker WeekShard
//        -> snapshot(): shards swapped out atomically, merged into one
//           sealed epoch, window folded, probe/aggregate phase run —
//           all outside the workers' locks, so ingest never pauses for
//           publication
//        -> drain(): close the queues, join the workers, publish the
//           final snapshot (the clean-SIGTERM path).
//
// Determinism carries over from the offline engine: every datagram is
// observed under a stream key derived from a trace offset — the replay
// frame's original offset, or a server-assigned virtual offset advancing
// exactly as TraceWriter would have laid the datagram down. A trace
// replayed datagram-by-datagram therefore produces a final cumulative
// snapshot byte-identical to `ixpscope analyze` of the same file, for any
// agent count and any worker count.
//
// The sliding window: WeekShard merge is a monoid with no inverse, so
// "last K epochs" cannot be maintained by subtraction. Instead each
// snapshot seals the interval since the previous one as an epoch shard;
// the published report is the fold of copies of the retained epochs
// (window_epochs == 0 folds everything ever sealed — the cumulative mode
// the parity tests pin against offline analysis).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/parallel_analyzer.hpp"
#include "core/vantage_point.hpp"
#include "ingest/ingest_source.hpp"
#include "sflow/collector.hpp"
#include "sflow/socket_intake.hpp"

namespace ixp::core {

struct ServeOptions {
  int week = 45;
  /// Pump worker count (0 = hardware concurrency).
  unsigned threads = 1;
  /// Per-agent bound on queued datagrams; beyond it the agent's own
  /// datagrams are dropped and counted (the service never stalls intake).
  std::size_t queue_capacity = sflow::AgentQueues::kDefaultCapacity;
  /// Cap on tracked agents in the intake accounting and the collector's
  /// sequence tracking (FIFO eviction beyond it).
  std::size_t max_agents = sflow::AgentQueues::kDefaultMaxAgents;
  /// Published report covers the last `window_epochs` snapshot intervals;
  /// 0 = cumulative since start.
  std::size_t window_epochs = 0;
  /// Observer for collector sequence-tracking evictions (agent cap hit);
  /// also counted in ServeAccounting. Runs on a pump worker thread.
  sflow::Collector::EvictionHook eviction_log;
};

/// Everything the service knows about where datagrams went. The exact-sum
/// invariants, checked by the overload tests:
///   per agent and total: received == taken + dropped
///   total taken == collector.datagrams + decode_errors
struct ServeAccounting {
  sflow::AgentQueuesStats intake;
  sflow::CollectorStats collector;
  std::uint64_t decode_errors = 0;
  /// Collector sequence-tracking rows evicted via the agent cap.
  std::uint64_t sequence_evictions = 0;
};

struct ServeSnapshot {
  /// 1 for the first publication, +1 per snapshot; the final drain
  /// snapshot carries the next number in sequence.
  std::uint64_t epoch = 0;
  /// The configured window (0 = cumulative), echoed for consumers.
  std::size_t window_epochs = 0;
  /// How many sealed epochs the report actually folds. Early in a
  /// windowed run this is below window_epochs — fewer epochs exist than
  /// the window asks for, and the report honestly covers only what has
  /// been sealed so far rather than pretending a full window.
  std::size_t epochs_folded = 0;
  WeeklyReport report;
  ServeAccounting accounting;
};

/// ingest::IngestSource over the service's AgentQueues: take() one
/// envelope, decode it, hand its samples out under the offset-derived
/// stream key. Several pump workers each own one LiveQueueSource over the
/// same queues — takes are disjoint, so the sources partition the stream.
/// next_batch() blocks until a datagram arrives or the queues close;
/// stats() reports the live-feed taxonomy in ReaderStats terms (a
/// datagram is accounted like a trace record: 4-byte length prefix plus
/// payload).
class LiveQueueSource final : public ingest::IngestSource {
 public:
  LiveQueueSource(sflow::AgentQueues& queues, sflow::Collector& collector,
                  std::mutex& collector_mutex,
                  std::atomic<std::uint64_t>& virtual_offset,
                  std::atomic<std::uint64_t>& decode_errors)
      : queues_(&queues),
        collector_(&collector),
        collector_mutex_(&collector_mutex),
        virtual_offset_(&virtual_offset),
        decode_errors_(&decode_errors) {}

  ingest::SourceStatus next_batch(ingest::SampleBatch& out) override;

  /// Safe to read from the pulling thread, or from anywhere once the
  /// queues are closed and the puller joined.
  [[nodiscard]] sflow::ReaderStats stats() const override { return stats_; }

 private:
  sflow::AgentQueues* queues_;
  sflow::Collector* collector_;
  std::mutex* collector_mutex_;
  std::atomic<std::uint64_t>* virtual_offset_;
  std::atomic<std::uint64_t>* decode_errors_;
  sflow::DatagramEnvelope envelope_;
  sflow::Datagram scratch_;
  sflow::ReaderStats stats_;
};

class ServeService {
 public:
  ServeService(VantagePoint& vantage, classify::ChainFetcher fetch,
               ServeOptions options);
  ~ServeService();

  ServeService(const ServeService&) = delete;
  ServeService& operator=(const ServeService&) = delete;

  /// The intake hand-off; bind SocketIntake's sink to offer(), or call it
  /// directly to inject datagrams without sockets.
  bool offer(sflow::DatagramEnvelope&& envelope) {
    return queues_.offer(std::move(envelope));
  }
  [[nodiscard]] sflow::AgentQueues& queues() noexcept { return queues_; }

  /// Spawns the pump workers. Call once.
  void start();

  /// Seals the epoch since the last snapshot and publishes the window
  /// report. Heavy (probe + aggregate) but runs outside the workers'
  /// shard locks; ingest continues meanwhile. Serialized internally.
  std::shared_ptr<const ServeSnapshot> snapshot();

  /// Last published snapshot (nullptr before the first snapshot()).
  [[nodiscard]] std::shared_ptr<const ServeSnapshot> current() const;

  /// Clean shutdown: stop intake, drain the queues, join the workers,
  /// publish and return the final snapshot. Idempotent.
  std::shared_ptr<const ServeSnapshot> drain();

  [[nodiscard]] ServeAccounting accounting() const;
  [[nodiscard]] unsigned threads() const noexcept {
    return static_cast<unsigned>(slots_.size());
  }

  /// Sample-carrying datagrams observed into a shard so far. Once this
  /// reaches the number offered, a subsequent snapshot() is guaranteed to
  /// cover them — the quiesce point tests (and operators) poll to get a
  /// deterministic epoch boundary out of an asynchronous pipeline.
  [[nodiscard]] std::uint64_t observed_batches() const noexcept {
    return observed_batches_.load(std::memory_order_acquire);
  }

 private:
  struct WorkerSlot {
    std::mutex mutex;
    WeekShard shard;
    explicit WorkerSlot(WeekShard&& s) : shard(std::move(s)) {}
  };

  void worker_loop(std::size_t index);

  VantagePoint* vantage_;
  classify::ChainFetcher fetch_;
  ServeOptions options_;

  sflow::AgentQueues queues_;
  sflow::Collector collector_;
  mutable std::mutex collector_mutex_;
  std::atomic<std::uint64_t> sequence_evictions_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
  /// Virtual trace offset for unframed (live) datagrams: starts where a
  /// fresh trace's first record would, advances by the bytes TraceWriter
  /// would have written — so live keys are exactly the keys a recorded
  /// trace of the same arrival order would produce.
  std::atomic<std::uint64_t> virtual_offset_{sflow::kTraceHeaderBytes};

  WeekSession session_;  ///< shard mint + week identity; never fed directly
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::unique_ptr<LiveQueueSource>> sources_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> observed_batches_{0};
  bool started_ = false;
  bool drained_ = false;

  mutable std::mutex publish_mutex_;  ///< serializes snapshot()/drain()
  std::deque<WeekShard> epochs_;      ///< sealed epochs, oldest first
  std::uint64_t next_epoch_ = 1;
  std::shared_ptr<const ServeSnapshot> published_;
};

}  // namespace ixp::core
