#include "core/serve_service.hpp"

#include <utility>

namespace ixp::core {

namespace {

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ingest::SourceStatus LiveQueueSource::next_batch(ingest::SampleBatch& out) {
  while (queues_->take(envelope_)) {
    if (!sflow::decode_into(envelope_.payload, scratch_)) {
      ++stats_.decode_errors;
      stats_.bytes_skipped += 4 + envelope_.payload.size();
      decode_errors_->fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    {
      std::lock_guard lock{*collector_mutex_};
      collector_->ingest(scratch_);
    }
    ++stats_.datagrams;
    stats_.samples += scratch_.samples.size();
    // Accounted like a trace record: 4-byte length prefix plus payload —
    // the same arithmetic the virtual offset advances by.
    stats_.bytes_delivered += 4 + envelope_.payload.size();
    const std::uint64_t offset =
        envelope_.framed()
            ? envelope_.offset
            : virtual_offset_->fetch_add(4 + envelope_.payload.size(),
                                         std::memory_order_relaxed);
    if (scratch_.samples.empty()) continue;  // counters-only datagram
    out.samples = scratch_.samples;
    out.first_seq = sflow::stream_seq_key(offset, 0);
    return ingest::SourceStatus::kBatch;
  }
  return ingest::SourceStatus::kEnd;
}

ServeService::ServeService(VantagePoint& vantage, classify::ChainFetcher fetch,
                           ServeOptions options)
    : vantage_(&vantage),
      fetch_(std::move(fetch)),
      options_(options),
      queues_(options.queue_capacity, options.max_agents),
      collector_(sflow::Collector::FlowSink{}, sflow::Collector::CounterSink{},
                 options.max_agents),
      session_(vantage.open_week(options.week)) {
  collector_.set_eviction_hook(
      [this](net::Ipv4Addr agent, std::uint32_t last_sequence) {
        sequence_evictions_.fetch_add(1, std::memory_order_relaxed);
        if (options_.eviction_log) options_.eviction_log(agent, last_sequence);
      });
}

ServeService::~ServeService() {
  if (started_) (void)drain();
}

void ServeService::start() {
  if (started_) return;
  started_ = true;
  const unsigned threads = resolve_threads(options_.threads);
  slots_.reserve(threads);
  sources_.reserve(threads);
  workers_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    slots_.push_back(std::make_unique<WorkerSlot>(session_.make_shard()));
    sources_.push_back(std::make_unique<LiveQueueSource>(
        queues_, collector_, collector_mutex_, virtual_offset_,
        decode_errors_));
  }
  for (unsigned t = 0; t < threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

void ServeService::worker_loop(std::size_t index) {
  WorkerSlot& slot = *slots_[index];
  LiveQueueSource& source = *sources_[index];
  ingest::SampleBatch batch;
  while (source.next_batch(batch) == ingest::SourceStatus::kBatch) {
    {
      std::lock_guard lock{slot.mutex};
      slot.shard.observe_batch(batch.samples, batch.first_seq);
    }
    observed_batches_.fetch_add(1, std::memory_order_release);
  }
}

std::shared_ptr<const ServeSnapshot> ServeService::snapshot() {
  std::lock_guard publish_lock{publish_mutex_};

  // Seal the epoch: swap every worker's live shard for a fresh one. Each
  // swap holds that worker's lock only for the exchange; decoding and
  // queueing never pause.
  WeekShard epoch = session_.make_shard();
  for (const auto& slot : slots_) {
    WeekShard fresh = session_.make_shard();
    {
      std::lock_guard lock{slot->mutex};
      std::swap(slot->shard, fresh);
    }
    epoch.merge(std::move(fresh));
  }

  if (options_.window_epochs == 0) {
    // Cumulative: one ever-growing sealed shard.
    if (epochs_.empty()) {
      epochs_.push_back(std::move(epoch));
    } else {
      epochs_.front().merge(std::move(epoch));
    }
  } else {
    epochs_.push_back(std::move(epoch));
    while (epochs_.size() > options_.window_epochs) epochs_.pop_front();
  }

  // The window report: fold copies of the retained epochs (merge consumes,
  // and the epochs must survive for the next snapshot), then run the
  // probe/aggregate phase. All outside the workers' locks.
  WeekShard folded = session_.make_shard();
  for (const WeekShard& sealed : epochs_) {
    WeekShard copy = sealed;
    folded.merge(std::move(copy));
  }

  auto snap = std::make_shared<ServeSnapshot>();
  snap->epoch = next_epoch_++;
  snap->window_epochs = options_.window_epochs;
  // In cumulative mode epochs_ is one ever-growing shard covering every
  // sealed interval; in windowed mode each deque entry is one interval.
  snap->epochs_folded = options_.window_epochs == 0
                            ? static_cast<std::size_t>(snap->epoch)
                            : epochs_.size();
  snap->report = vantage_->finish_week(std::move(folded), fetch_);
  snap->accounting = accounting();
  published_ = snap;
  return snap;
}

std::shared_ptr<const ServeSnapshot> ServeService::current() const {
  std::lock_guard lock{publish_mutex_};
  return published_;
}

std::shared_ptr<const ServeSnapshot> ServeService::drain() {
  {
    std::lock_guard lock{publish_mutex_};
    if (drained_) return published_;
    drained_ = true;
  }
  queues_.close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  return snapshot();
}

ServeAccounting ServeService::accounting() const {
  ServeAccounting out;
  out.intake = queues_.stats();
  {
    std::lock_guard lock{collector_mutex_};
    out.collector = collector_.stats();
  }
  out.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  out.sequence_evictions = sequence_evictions_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace ixp::core
