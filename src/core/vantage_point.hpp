// VantagePoint — the top-level measurement façade.
//
// Wires the whole pipeline for one observation week: sFlow sample stream
// -> Figure-1 filter cascade -> traffic dissection -> HTTPS probing ->
// metadata harvest -> aggregation against public databases (routing
// table, AS graph locality, geolocation). The output WeeklyReport carries
// everything the paper's tables and figures need for that week.
//
// The VantagePoint never touches generator ground truth: its inputs are
// the sample stream, active-measurement callbacks, and databases that are
// public in the real world (RouteViews-style routing, GeoLite-style
// geolocation, DNS, root certificates).
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "classify/dissector.hpp"
#include "classify/https_prober.hpp"
#include "classify/metadata.hpp"
#include "classify/peering_filter.hpp"
#include "core/org_clusterer.hpp"
#include "geo/geo_database.hpp"
#include "net/as_graph.hpp"
#include "net/routing_table.hpp"

namespace ixp::core {

/// Per-country aggregates (Figure 3, Table 2).
struct CountryTally {
  std::size_t ips = 0;
  double bytes = 0.0;
  std::size_t server_ips = 0;
  double server_bytes = 0.0;
};

/// Per-AS aggregates (Table 2's network columns).
struct AsTally {
  std::size_t ips = 0;
  double bytes = 0.0;
  std::size_t server_ips = 0;
  double server_bytes = 0.0;
};

/// Per-locality aggregates (Table 3).
struct LocalityTally {
  std::size_t ips = 0;
  std::unordered_set<net::Ipv4Prefix> prefixes;
  std::unordered_set<net::Asn> ases;
  double bytes = 0.0;
};

/// One identified server with its observables.
struct ServerObservation {
  net::Ipv4Addr addr;
  double bytes = 0.0;           // expanded bytes the IP "sees"
  bool http = false;
  bool https = false;
  bool rtmp = false;
  bool also_client = false;
  std::optional<net::Asn> asn;  // origin AS per the routing table
  geo::CountryCode country;
  classify::ServerMetadata metadata;
};

struct WeeklyReport {
  int week = 0;
  classify::FilterCounters filters;
  classify::DissectionSummary dissection;
  classify::ProbeFunnel https_funnel;
  classify::MetadataCoverage metadata_coverage;
  std::size_t metadata_cleaned_out = 0;  // §2.4 cleaning losses

  // Visibility (Table 1): peering row and server row.
  std::size_t peering_ips = 0;
  std::size_t peering_prefixes = 0;
  std::size_t peering_ases = 0;
  std::size_t peering_countries = 0;
  std::size_t server_ips = 0;
  std::size_t server_prefixes = 0;
  std::size_t server_ases = 0;
  std::size_t server_countries = 0;

  std::unordered_map<geo::CountryCode, CountryTally> by_country;
  std::unordered_map<net::Asn, AsTally> by_as;
  /// Index 0/1/2 = A(L)/A(M)/A(G); peering and server variants.
  LocalityTally peering_locality[3];
  LocalityTally server_locality[3];

  std::vector<ServerObservation> servers;

  [[nodiscard]] double peering_bytes() const noexcept {
    return filters.bytes_of(classify::TrafficClass::kPeering);
  }
};

/// VantagePoint knobs.
struct VantageOptions {
  int fetches_per_ip = 3;
};

class VantagePoint {
 public:
  VantagePoint(const fabric::Ixp& ixp, const net::RoutingTable& routing,
               const geo::GeoDatabase& geo,
               const std::unordered_map<net::Asn, net::Locality>& locality,
               const dns::ZoneDatabase& dns, const dns::PublicSuffixList& psl,
               const x509::RootStore& roots, VantageOptions options = {});

  /// Starts a new observation week; resets per-week state.
  void begin_week(int week);

  /// Ingests one sFlow sample (call once per sample of the week).
  void observe(const sflow::FlowSample& sample);

  /// Finishes the week: runs the HTTPS prober via `fetch`, harvests
  /// metadata, aggregates everything. The returned report is self-contained.
  [[nodiscard]] WeeklyReport end_week(const classify::ChainFetcher& fetch);

  /// The dissector of the week in progress (for advanced callers).
  [[nodiscard]] const classify::TrafficDissector& dissector() const {
    return *dissector_;
  }

 private:
  const fabric::Ixp* ixp_;
  const net::RoutingTable* routing_;
  const geo::GeoDatabase* geo_;
  const std::unordered_map<net::Asn, net::Locality>* locality_;
  const dns::ZoneDatabase* dns_;
  const dns::PublicSuffixList* psl_;
  const x509::RootStore* roots_;
  VantageOptions options_;

  int week_ = 0;
  std::optional<classify::PeeringFilter> filter_;
  std::unique_ptr<classify::TrafficDissector> dissector_;
  classify::FilterCounters counters_;
  /// Validated chains of confirmed HTTPS servers (leaf names feed §2.4).
  std::unordered_map<net::Ipv4Addr, x509::CertificateChain> confirmed_chains_;
};

}  // namespace ixp::core
