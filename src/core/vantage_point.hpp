// VantagePoint — the top-level measurement façade.
//
// Wires the whole pipeline for one observation week: sFlow sample stream
// -> Figure-1 filter cascade -> traffic dissection -> HTTPS probing ->
// metadata harvest -> aggregation against public databases (routing
// table, AS graph locality, geolocation). The output WeeklyReport carries
// everything the paper's tables and figures need for that week.
//
// The unit of work is a WeekSession obtained from open_week(): an RAII
// handle over the week in progress. Feed it samples (one at a time or in
// batches), optionally absorb worker WeekShards built elsewhere, then
// finish() it into a WeeklyReport. Dropping a session discards the week.
//
// The VantagePoint never touches generator ground truth: its inputs are
// the sample stream, active-measurement callbacks, and databases that are
// public in the real world (RouteViews-style routing, GeoLite-style
// geolocation, DNS, root certificates).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "classify/dissector.hpp"
#include "classify/https_prober.hpp"
#include "classify/metadata.hpp"
#include "classify/peering_filter.hpp"
#include "core/org_clusterer.hpp"
#include "core/week_shard.hpp"
#include "geo/geo_database.hpp"
#include "net/as_graph.hpp"
#include "net/routing_table.hpp"
#include "util/flat_hash_map.hpp"

namespace ixp::core {

/// Per-country aggregates (Figure 3, Table 2).
struct CountryTally {
  std::size_t ips = 0;
  double bytes = 0.0;
  std::size_t server_ips = 0;
  double server_bytes = 0.0;

  friend bool operator==(const CountryTally&, const CountryTally&) = default;
};

/// Per-AS aggregates (Table 2's network columns).
struct AsTally {
  std::size_t ips = 0;
  double bytes = 0.0;
  std::size_t server_ips = 0;
  double server_bytes = 0.0;

  friend bool operator==(const AsTally&, const AsTally&) = default;
};

/// Per-locality aggregates (Table 3).
struct LocalityTally {
  std::size_t ips = 0;
  std::unordered_set<net::Ipv4Prefix> prefixes;
  std::unordered_set<net::Asn> ases;
  double bytes = 0.0;

  friend bool operator==(const LocalityTally&, const LocalityTally&) = default;
};

/// One identified server with its observables.
struct ServerObservation {
  net::Ipv4Addr addr;
  double bytes = 0.0;           // expanded bytes the IP "sees"
  bool http = false;
  bool https = false;
  bool rtmp = false;
  bool also_client = false;
  std::optional<net::Asn> asn;  // origin AS per the routing table
  geo::CountryCode country;
  classify::ServerMetadata metadata;
};

struct WeeklyReport {
  int week = 0;
  classify::FilterCounters filters;
  classify::DissectionSummary dissection;
  classify::ProbeFunnel https_funnel;
  classify::MetadataCoverage metadata_coverage;
  std::size_t metadata_cleaned_out = 0;  // §2.4 cleaning losses

  // Visibility (Table 1): peering row and server row.
  std::size_t peering_ips = 0;
  std::size_t peering_prefixes = 0;
  std::size_t peering_ases = 0;
  std::size_t peering_countries = 0;
  std::size_t server_ips = 0;
  std::size_t server_prefixes = 0;
  std::size_t server_ases = 0;
  std::size_t server_countries = 0;

  util::FlatHashMap<geo::CountryCode, CountryTally> by_country;
  util::FlatHashMap<net::Asn, AsTally> by_as;
  /// Index 0/1/2 = A(L)/A(M)/A(G); peering and server variants.
  LocalityTally peering_locality[3];
  LocalityTally server_locality[3];

  /// Sorted by address — canonical regardless of ingest order.
  std::vector<ServerObservation> servers;

  /// Failure containment (DESIGN.md §8): set by the parallel engine when
  /// lenient worker mode dropped batches on worker exceptions. The report
  /// then under-counts by exactly those batches. worker_errors holds the
  /// per-worker dropped-batch counts and is attached only when degraded,
  /// so clean reports stay byte-identical across thread counts.
  bool degraded = false;
  std::vector<std::uint64_t> worker_errors;

  [[nodiscard]] double peering_bytes() const noexcept {
    return filters.bytes_of(classify::TrafficClass::kPeering);
  }
};

/// VantagePoint knobs.
struct VantageOptions {
  int fetches_per_ip = 3;
};

class VantagePoint;

/// RAII handle over one observation week. Obtained from
/// VantagePoint::open_week(); single-owner, movable. The session is also
/// the reduce point of the parallel engine: make_shard() mints empty
/// worker shards and absorb() folds them back in.
class WeekSession {
 public:
  WeekSession(WeekSession&&) noexcept = default;
  WeekSession& operator=(WeekSession&&) noexcept = default;
  WeekSession(const WeekSession&) = delete;
  WeekSession& operator=(const WeekSession&) = delete;

  /// Ingests one sample at the next stream position.
  void observe(const sflow::FlowSample& sample) {
    shard_.observe(sample, next_seq_++);
  }

  /// Ingests a batch occupying the next batch.size() stream positions.
  void observe_batch(std::span<const sflow::FlowSample> batch) {
    shard_.observe_batch(batch, next_seq_);
    next_seq_ += batch.size();
  }

  /// Mints an empty shard of this session's week for a worker thread.
  [[nodiscard]] WeekShard make_shard() const;

  /// Folds a worker shard into the session state.
  void absorb(WeekShard&& shard) { shard_.merge(std::move(shard)); }

  /// Finishes the week: runs the HTTPS prober via `fetch`, harvests
  /// metadata, aggregates everything. The returned report is
  /// self-contained; the session is spent afterwards.
  [[nodiscard]] WeeklyReport finish(const classify::ChainFetcher& fetch);

  [[nodiscard]] int week() const noexcept { return week_; }
  [[nodiscard]] std::uint64_t samples_observed() const noexcept {
    return shard_.samples_observed();
  }
  /// The dissector of the week in progress (for advanced callers).
  [[nodiscard]] const classify::TrafficDissector& dissector() const noexcept {
    return shard_.dissector();
  }

 private:
  friend class VantagePoint;
  WeekSession(VantagePoint& vp, int week);

  VantagePoint* vp_;
  int week_;
  WeekShard shard_;
  std::uint64_t next_seq_ = 0;
};

class VantagePoint {
 public:
  VantagePoint(const fabric::Ixp& ixp, const net::RoutingTable& routing,
               const geo::GeoDatabase& geo,
               const std::unordered_map<net::Asn, net::Locality>& locality,
               const dns::ZoneDatabase& dns, const dns::PublicSuffixList& psl,
               const x509::RootStore& roots, VantageOptions options = {});

  /// Opens a new observation week and hands back its session.
  [[nodiscard]] WeekSession open_week(int week) {
    return WeekSession{*this, week};
  }

  /// The member fabric this vantage observes — the context a persisted
  /// WeekShard needs to decode (store::SnapshotCodec::decode_shard).
  [[nodiscard]] const fabric::Ixp& ixp() const noexcept { return *ixp_; }

  /// Reduces a fully-merged shard into the week's report. This is the
  /// probe/aggregate phase; it iterates observation state in canonical
  /// (sorted-address) order so the report is identical for any shard
  /// split of the same sample stream.
  [[nodiscard]] WeeklyReport finish_week(WeekShard&& shard,
                                         const classify::ChainFetcher& fetch);

 private:
  friend class WeekSession;

  const fabric::Ixp* ixp_;
  const net::RoutingTable* routing_;
  const geo::GeoDatabase* geo_;
  const std::unordered_map<net::Asn, net::Locality>* locality_;
  const dns::ZoneDatabase* dns_;
  const dns::PublicSuffixList* psl_;
  const x509::RootStore* roots_;
  VantageOptions options_;
};

}  // namespace ixp::core
