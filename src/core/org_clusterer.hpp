// Organization clustering — the paper's primary methodological
// contribution (§5.1).
//
// Goal: "start with the server IPs seen at the IXP and cluster them so
// that the servers in one and the same cluster are provably under the
// administrative control of the same organization or company."
//
// Three steps, mirroring the paper:
//   1. Servers whose hostname-SOA authority and URI/certificate content
//      authorities all lead to the same entry: IP and content managed by
//      the same authority (78.7% of server IPs in week 45).
//   2. Servers with signals but no (or conflicting) hostname SOA: a
//      majority vote among candidate authorities, weighted by (i) number
//      of IPs already in each authority's cluster and (ii) the cluster's
//      network footprint (17.4%).
//   3. Servers with only partial SOA information (a reverse-zone SOA but
//      no hostname/URIs/certificates — e.g. CDN servers deployed deep
//      inside ISPs): the same heuristic on the available subset (3.9%).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "classify/metadata.hpp"
#include "dns/public_suffix.hpp"
#include "dns/zone_db.hpp"

namespace ixp::core {

struct ClusterAssignment {
  dns::DnsName authority;  // the cluster's identity
  int step = 0;            // 1..3; 0 = unclustered (no usable signal)
};

struct ClusteringResult {
  std::unordered_map<net::Ipv4Addr, ClusterAssignment> by_server;
  std::unordered_map<dns::DnsName, std::vector<net::Ipv4Addr>> clusters;
  /// Servers clustered per step (index 1..3; index 0 = unclustered).
  std::size_t step_counts[4] = {0, 0, 0, 0};

  [[nodiscard]] std::size_t clustered() const noexcept {
    return step_counts[1] + step_counts[2] + step_counts[3];
  }
  [[nodiscard]] std::size_t cluster_count() const noexcept {
    return clusters.size();
  }
  /// Fraction of clustered servers handled by `step`.
  [[nodiscard]] double step_share(int step) const noexcept {
    const std::size_t total = clustered();
    return total == 0 ? 0.0
                      : static_cast<double>(step_counts[step]) /
                            static_cast<double>(total);
  }
};

/// Majority-vote key (DESIGN.md ablation #3): the full vote weighs both
/// cluster IP counts and network footprint; the ablated variant counts
/// IPs only.
enum class VoteKey : std::uint8_t { kIpsAndFootprint, kIpsOnly };

/// Clustering knobs (the ablation benches sweep these).
struct ClusterOptions {
  VoteKey vote = VoteKey::kIpsAndFootprint;
  /// Run steps 1..max_step (DESIGN.md ablation #2: step-depth sweep).
  int max_step = 3;
  /// An SOA authority serving at least this many distinct registrable
  /// domains is treated as shared DNS infrastructure: it identifies who
  /// runs the *zone*, not who administers the server, so the signal falls
  /// back to the name's own registrable domain. (Meta-hosters still win
  /// the majority vote through their hostname-side signal.)
  std::size_t shared_authority_threshold = 3;
};

class OrgClusterer {
 public:
  OrgClusterer(const dns::ZoneDatabase& db, const dns::PublicSuffixList& psl,
               ClusterOptions options = {})
      : db_(&db), psl_(&psl), options_(options) {}

  /// Clusters the harvested server metadata. Deterministic: ties in the
  /// majority vote break towards the lexicographically smaller authority.
  [[nodiscard]] ClusteringResult cluster(
      std::span<const classify::ServerMetadata> servers) const;

 private:
  struct Signals;

  const dns::ZoneDatabase* db_;
  const dns::PublicSuffixList* psl_;
  ClusterOptions options_;
};

}  // namespace ixp::core
