#include "core/process_pool.hpp"

#include <cerrno>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#define IXPSCOPE_HAVE_FORK 1
#include <sys/wait.h>
#include <unistd.h>
#else
#define IXPSCOPE_HAVE_FORK 0
#endif

namespace ixp::core {

std::vector<ProcessStatus> ProcessPool::run(int count, const Job& job) {
  std::vector<ProcessStatus> statuses(static_cast<std::size_t>(count < 0 ? 0 : count));
  for (int i = 0; i < count; ++i) statuses[static_cast<std::size_t>(i)].worker = i;

#if IXPSCOPE_HAVE_FORK
  // Flush inherited stdio before forking: anything buffered here would
  // otherwise be written once per child as well as by the parent.
  std::fflush(stdout);
  std::fflush(stderr);

  for (int i = 0; i < count; ++i) {
    ProcessStatus& status = statuses[static_cast<std::size_t>(i)];
    const pid_t pid = ::fork();
    if (pid < 0) {
      // Spawn failure is not fatal to the batch: the caller's fold pass
      // recomputes whatever this worker would have produced.
      status.spawn_failed = true;
      continue;
    }
    if (pid == 0) {
      // Child. Run the job and leave via _exit: no unwinding into the
      // parent's stack frames, no double-flush of inherited buffers.
      int code = 1;
      try {
        code = job(i);
      } catch (...) {
        code = 1;
      }
      std::fflush(stdout);
      std::fflush(stderr);
      ::_exit(code);
    }
    status.pid = static_cast<long>(pid);
  }

  for (ProcessStatus& status : statuses) {
    if (status.spawn_failed || status.pid == 0) continue;
    int wait_status = 0;
    pid_t waited;
    do {
      waited = ::waitpid(static_cast<pid_t>(status.pid), &wait_status, 0);
    } while (waited < 0 && errno == EINTR);
    if (waited < 0) {
      status.spawn_failed = true;  // lost track of the child entirely
      continue;
    }
    if (WIFEXITED(wait_status)) {
      status.exited = true;
      status.exit_code = WEXITSTATUS(wait_status);
    } else if (WIFSIGNALED(wait_status)) {
      status.signaled = true;
      status.term_signal = WTERMSIG(wait_status);
    }
  }
#else
  // No fork(): run the jobs one after another in this process. Results
  // are identical — the jobs are deterministic and partition the work.
  for (int i = 0; i < count; ++i) {
    ProcessStatus& status = statuses[static_cast<std::size_t>(i)];
    status.ran_inline = true;
    status.exited = true;
    try {
      status.exit_code = job(i);
    } catch (...) {
      status.exit_code = 1;
    }
  }
#endif
  return statuses;
}

}  // namespace ixp::core
