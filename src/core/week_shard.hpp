// WeekShard — the mergeable unit of per-week observation state.
//
// A shard owns everything one worker accumulates while chewing through a
// slice of the week's sample stream: the Figure-1 filter counters and the
// traffic dissector's per-IP evidence. Shards form a commutative monoid
// under merge(): splitting a week's samples across any number of shards
// and folding them back together — in any order — reproduces the
// single-shard state bit for bit. That property is what lets the parallel
// engine promise that an N-thread analysis emits a report byte-identical
// to the 1-thread run.
//
// The contract rests on three design rules (see DESIGN.md §7):
//   1. byte tallies are exact integers (frame_length x sampling_rate),
//      accumulated in std::uint64_t — integer addition is associative;
//   2. per-IP evidence is OR-ed bit flags and integer counts;
//   3. bounded Host-header sets keep the k smallest (first_seq, name)
//      keys, an exact order statistic of the union.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "classify/dissector.hpp"
#include "classify/peering_filter.hpp"

namespace ixp::store {
class SnapshotCodec;
}  // namespace ixp::store

namespace ixp::core {

class WeekShard {
 public:
  WeekShard(const fabric::Ixp& ixp, int week)
      : filter_(ixp, week) {}

  /// Runs one sample through the filter cascade and, when it survives to
  /// peering, through the dissector. `seq` is the sample's global
  /// position in the week's stream (it orders Host-header tie-breaks).
  void observe(const sflow::FlowSample& sample, std::uint64_t seq) {
    auto peering = filter_.filter(sample, counters_);
    if (peering) {
      peering->seq = seq;
      dissector_.ingest(*peering);
    }
    ++samples_observed_;
  }

  /// Batch form: samples occupy stream positions
  /// [first_seq, first_seq + batch.size()). Equivalent to observe() per
  /// sample, but peering survivors have their hot fields derived once,
  /// here, into a structure-of-arrays FrameBatch (reused across batches)
  /// and handed to the dissector's batch ingest, which prefetches
  /// upcoming table slots. The staged payload views point into `batch`,
  /// so they must be drained before this call returns.
  void observe_batch(std::span<const sflow::FlowSample> batch,
                     std::uint64_t first_seq) {
    staged_.clear();
    for (const auto& sample : batch) {
      auto peering = filter_.filter(sample, counters_);
      if (peering) {
        peering->seq = first_seq;
        staged_.push(*peering);
      }
      ++first_seq;
      ++samples_observed_;
    }
    dissector_.ingest(staged_);
  }

  /// Folds another shard of the same week into this one; associative and
  /// commutative. The other shard is consumed.
  void merge(WeekShard&& other) {
    counters_.merge(other.counters_);
    dissector_.merge(std::move(other.dissector_));
    samples_observed_ += other.samples_observed_;
    other.counters_ = classify::FilterCounters{};
    other.samples_observed_ = 0;
  }

  [[nodiscard]] int week() const noexcept { return filter_.week(); }
  [[nodiscard]] const classify::FilterCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const classify::TrafficDissector& dissector() const noexcept {
    return dissector_;
  }
  [[nodiscard]] std::uint64_t samples_observed() const noexcept {
    return samples_observed_;
  }

 private:
  friend class VantagePoint;
  /// The snapshot codec (store/) reads and reconstructs shard internals
  /// when persisting a completed week.
  friend class store::SnapshotCodec;

  classify::PeeringFilter filter_;
  classify::FilterCounters counters_;
  classify::TrafficDissector dissector_;
  std::uint64_t samples_observed_ = 0;
  classify::FrameBatch staged_;  // observe_batch scratch, reused
};

}  // namespace ixp::core
