// ProcessPool — fork/waitpid worker supervision for the distributed
// week map-reduce (DESIGN.md §16).
//
// The pool forks N workers *after* the caller has built whatever heavy
// shared state the job closes over (the InternetModel, the vantage
// point): fork() makes that state copy-on-write-shared, so N processes
// cost one world build. Each child runs job(worker_index) and _exit()s
// with its return value — never unwinding back into the caller's stack,
// never flushing inherited stdio buffers twice (the parent flushes
// before forking). The parent waitpid()s every child and reports, per
// worker, exactly how it ended: clean exit code, or the signal that
// killed it.
//
// Containment is the caller's contract, not the pool's: a worker dying
// (crash, kill, nonzero exit) is an *observation* in the returned status
// table, not an error — the weeks map-reduce recovers by recomputing
// whatever the dead worker didn't durably commit.
//
// Workers must not spawn threads before fork (fork() only carries the
// calling thread into the child). The analysis engine is safe: its
// worker threads live only inside a reduce() call, and the pool is
// entered between calls. On non-POSIX hosts the pool degrades to running
// each job serially in-process (ran_inline), preserving results exactly
// — parallelism is an optimization, never a semantic.
#pragma once

#include <functional>
#include <vector>

namespace ixp::core {

/// How one worker ended.
struct ProcessStatus {
  int worker = 0;       ///< worker index, 0..count-1
  long pid = 0;         ///< child pid; 0 when ran_inline
  bool ran_inline = false;  ///< non-POSIX fallback: ran in this process
  bool exited = false;  ///< terminated normally (exit_code is valid)
  int exit_code = 0;
  bool signaled = false;  ///< killed by a signal (term_signal is valid)
  int term_signal = 0;
  bool spawn_failed = false;  ///< fork() itself failed; nothing ran

  [[nodiscard]] bool ok() const noexcept {
    return exited && exit_code == 0 && !spawn_failed;
  }
};

class ProcessPool {
 public:
  /// The work one child runs; its return value becomes the exit code.
  using Job = std::function<int(int worker)>;

  /// Forks `count` workers, runs job(i) in worker i, waits for all of
  /// them, and returns one status per worker in index order. Exceptions
  /// escaping a job are contained in the child (exit code 1).
  [[nodiscard]] static std::vector<ProcessStatus> run(int count,
                                                      const Job& job);
};

}  // namespace ixp::core
