#include "core/org_clusterer.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

namespace ixp::core {

namespace {

/// Per-cluster growth state used by the majority vote.
struct ClusterState {
  std::size_t ips = 0;
  std::unordered_set<std::uint32_t> footprint;  // distinct /16s

  [[nodiscard]] double score(VoteKey key) const {
    const double ip_score = static_cast<double>(ips);
    if (key == VoteKey::kIpsOnly) return ip_score;
    return ip_score + 4.0 * static_cast<double>(footprint.size());
  }
};

std::uint32_t slash16_of(net::Ipv4Addr addr) { return addr.value() >> 16; }

}  // namespace

/// The observable signals of one server, reduced to authorities.
struct OrgClusterer::Signals {
  /// Authority of the *IP* (hostname SOA resolved iteratively).
  std::optional<dns::DnsName> ip_authority;
  /// True when ip_authority came from a hostname (step-1 eligible) rather
  /// than from a bare reverse-zone SOA (step-3 material).
  bool ip_authority_from_hostname = false;
  /// Authorities of the *content* (URIs and certificate names).
  std::vector<dns::DnsName> content_authorities;
  /// Registrable domain of the hostname itself, when present.
  std::optional<dns::DnsName> hostname_domain;
  /// Registrable domains of the content names (parallel to authorities).
  std::vector<dns::DnsName> content_domains;

  [[nodiscard]] bool empty() const {
    return !ip_authority && content_authorities.empty();
  }
};

ClusteringResult OrgClusterer::cluster(
    std::span<const classify::ServerMetadata> servers) const {
  ClusteringResult result;
  result.by_server.reserve(servers.size());

  // ---- shared-authority detection ------------------------------------------
  // First pass: how many distinct registrable domains does each SOA
  // authority answer for across the whole pool? Authorities above the
  // threshold are shared DNS infrastructure (outsourced-DNS providers,
  // hosters running tenants' zones); their SOA names the zone operator,
  // not necessarily the server's administration, so the affected signal
  // degrades to the name's own registrable domain and the step-2 vote
  // decides ownership.
  const auto registrable_of = [&](const dns::DnsName& name)
      -> std::optional<dns::DnsName> { return psl_->registrable_domain(name); };

  std::unordered_map<dns::DnsName, std::unordered_set<dns::DnsName>>
      authority_domains;
  std::unordered_set<dns::DnsName> hostname_backed;  // orgs with own servers
  const auto note_pair = [&](const dns::DnsName& name) {
    const auto registrable = registrable_of(name);
    if (!registrable) return;
    if (const auto soa = db_->soa_of(*registrable)) {
      if (soa->authority != *registrable)
        authority_domains[soa->authority].insert(*registrable);
    }
  };
  for (const classify::ServerMetadata& md : servers) {
    if (md.hostname) {
      note_pair(*md.hostname);
      // Real organizations name servers under their own domains; pure
      // DNS providers never appear on the hostname side.
      if (const auto registrable = registrable_of(*md.hostname))
        hostname_backed.insert(*registrable);
    }
    for (const dns::Uri& uri : md.uris) note_pair(uri.host());
    for (const dns::DnsName& name : md.cert_names) note_pair(name);
  }
  const auto is_shared = [&](const dns::DnsName& authority) {
    if (hostname_backed.count(authority) > 0) return false;
    const auto it = authority_domains.find(authority);
    return it != authority_domains.end() &&
           it->second.size() >= options_.shared_authority_threshold;
  };

  // ---- derive signals -----------------------------------------------------
  const auto authority_of_domain =
      [&](const dns::DnsName& domain) -> dns::DnsName {
    // The authority of a content domain is its SOA's administrative
    // domain when one exists (and is not shared infrastructure),
    // otherwise the registrable domain itself.
    if (const auto soa = db_->soa_of(domain)) {
      if (!is_shared(soa->authority)) return soa->authority;
    }
    return domain;
  };

  std::vector<Signals> signals(servers.size());
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const classify::ServerMetadata& md = servers[i];
    Signals& sig = signals[i];
    if (md.hostname) sig.hostname_domain = registrable_of(*md.hostname);
    if (md.soa_authority) {
      if (md.hostname && is_shared(*md.soa_authority) && sig.hostname_domain) {
        // The hostname's zone is run by shared infrastructure: identify
        // the IP by the hostname's own registrable domain instead.
        sig.ip_authority = *sig.hostname_domain;
        sig.ip_authority_from_hostname = true;
      } else {
        sig.ip_authority = md.soa_authority;
        sig.ip_authority_from_hostname = md.hostname.has_value();
      }
    }
    const auto add_content = [&](const dns::DnsName& name) {
      const auto registrable = registrable_of(name);
      if (!registrable) return;
      sig.content_domains.push_back(*registrable);
      sig.content_authorities.push_back(authority_of_domain(*registrable));
    };
    for (const dns::Uri& uri : md.uris) add_content(uri.host());
    for (const dns::DnsName& name : md.cert_names) add_content(name);

    // When the hostname and every content name share one registrable
    // domain, that domain IS the administrative entity: its SOA merely
    // tells us who runs its DNS (possibly an outsourced provider), not
    // who controls IP and content. Collapse the signals onto the domain.
    if (sig.hostname_domain && !sig.content_domains.empty()) {
      const bool all_same = std::all_of(
          sig.content_domains.begin(), sig.content_domains.end(),
          [&](const dns::DnsName& d) { return d == *sig.hostname_domain; });
      if (all_same && sig.ip_authority != sig.hostname_domain) {
        sig.ip_authority = *sig.hostname_domain;
        sig.ip_authority_from_hostname = true;
        sig.content_authorities.assign(sig.content_authorities.size(),
                                       *sig.hostname_domain);
      }
    }
  }

  std::unordered_map<dns::DnsName, ClusterState> state;
  const auto assign = [&](std::size_t i, const dns::DnsName& authority,
                          int step) {
    result.by_server.emplace(servers[i].addr, ClusterAssignment{authority, step});
    result.clusters[authority].push_back(servers[i].addr);
    result.step_counts[step] += 1;
    ClusterState& cluster = state[authority];
    cluster.ips += 1;
    cluster.footprint.insert(slash16_of(servers[i].addr));
  };

  // ---- step 1: IP and content under the same authority --------------------
  std::vector<std::size_t> remaining;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const Signals& sig = signals[i];
    if (sig.empty()) {
      result.by_server.emplace(servers[i].addr, ClusterAssignment{});
      result.step_counts[0] += 1;
      continue;
    }
    if (sig.ip_authority && sig.ip_authority_from_hostname) {
      const bool consistent = std::all_of(
          sig.content_authorities.begin(), sig.content_authorities.end(),
          [&](const dns::DnsName& a) { return a == *sig.ip_authority; });
      if (consistent) {
        assign(i, *sig.ip_authority, 1);
        continue;
      }
    }
    remaining.push_back(i);
  }

  if (options_.max_step < 2) {
    for (const std::size_t i : remaining) {
      result.by_server.emplace(servers[i].addr, ClusterAssignment{});
      result.step_counts[0] += 1;
    }
    return result;
  }

  // ---- steps 2 and 3: majority vote ---------------------------------------
  // Step 2 first (servers with content signals), then step 3 (partial-SOA
  // only), so the step-3 vote can lean on everything built before it.
  const auto majority_vote = [&](std::size_t i) -> std::optional<dns::DnsName> {
    const Signals& sig = signals[i];
    // Candidate scores: authorities the server's signals point at (full
    // weight), the content names' own registrable domains (reduced
    // weight — an org whose DNS is outsourced is still the org, but the
    // authority signal is the primary one), and the IP-side authority.
    std::map<dns::DnsName, double> local;
    for (const dns::DnsName& authority : sig.content_authorities)
      local[authority] += 1.0;
    for (const dns::DnsName& domain : sig.content_domains) {
      if (std::find(sig.content_authorities.begin(),
                    sig.content_authorities.end(),
                    domain) == sig.content_authorities.end())
        local[domain] += 0.6;
    }
    if (sig.ip_authority) local[*sig.ip_authority] += 1.2;
    if (local.empty()) return std::nullopt;

    const dns::DnsName* best = nullptr;
    double best_score = -1.0;
    for (const auto& [candidate, local_score] : local) {
      double global = 0.0;
      const auto it = state.find(candidate);
      if (it != state.end()) global = it->second.score(options_.vote);
      const double score = local_score + global;
      // std::map iteration is ordered, so ties resolve to the
      // lexicographically smaller authority deterministically.
      if (score > best_score) {
        best_score = score;
        best = &candidate;
      }
    }
    return *best;
  };

  std::vector<std::size_t> partial_only;
  for (const std::size_t i : remaining) {
    const Signals& sig = signals[i];
    const bool has_content = !sig.content_authorities.empty();
    const bool hostname_backed = sig.ip_authority_from_hostname;
    if (!has_content && !hostname_backed) {
      partial_only.push_back(i);  // step-3 material
      continue;
    }
    if (const auto authority = majority_vote(i)) {
      assign(i, *authority, 2);
    } else {
      result.by_server.emplace(servers[i].addr, ClusterAssignment{});
      result.step_counts[0] += 1;
    }
  }

  if (options_.max_step < 3) {
    for (const std::size_t i : partial_only) {
      result.by_server.emplace(servers[i].addr, ClusterAssignment{});
      result.step_counts[0] += 1;
    }
    return result;
  }

  for (const std::size_t i : partial_only) {
    if (const auto authority = majority_vote(i)) {
      assign(i, *authority, 3);
    } else {
      result.by_server.emplace(servers[i].addr, ClusterAssignment{});
      result.step_counts[0] += 1;
    }
  }
  return result;
}

}  // namespace ixp::core
