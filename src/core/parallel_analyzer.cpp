#include "core/parallel_analyzer.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ixp::core {

namespace {

/// One unit of work: a batch of samples plus its global stream position.
struct Batch {
  std::vector<sflow::FlowSample> samples;
  std::uint64_t first_seq = 0;
};

/// Bounded MPMC queue: the reader blocks when the workers fall behind,
/// the workers block when the reader does.
class BatchQueue {
 public:
  explicit BatchQueue(std::size_t capacity) : capacity_(capacity) {}

  void push(Batch&& batch) {
    std::unique_lock lock{mutex_};
    not_full_.wait(lock, [&] { return queue_.size() < capacity_; });
    queue_.push_back(std::move(batch));
    lock.unlock();
    not_empty_.notify_one();
  }

  bool pop(Batch& out) {
    std::unique_lock lock{mutex_};
    not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  void close() {
    {
      std::lock_guard lock{mutex_};
      closed_ = true;
    }
    not_empty_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Batch> queue_;
  std::size_t capacity_;
  bool closed_ = false;
};

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ParallelAnalyzer::ParallelAnalyzer(VantagePoint& vantage,
                                   ParallelOptions options)
    : vantage_(&vantage),
      options_(options),
      threads_(resolve_threads(options.threads)) {
  if (options_.batch_size == 0) options_.batch_size = 1;
  if (options_.max_queued_batches == 0) options_.max_queued_batches = 1;
}

WeeklyReport ParallelAnalyzer::analyze(int week, const BatchSource& source,
                                       const classify::ChainFetcher& fetch) {
  WeekSession session = vantage_->open_week(week);

  if (threads_ <= 1) {
    std::vector<sflow::FlowSample> batch;
    while (source(batch) > 0) session.observe_batch(batch);
    return session.finish(fetch);
  }

  std::vector<WeekShard> shards;
  shards.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t) shards.push_back(session.make_shard());

  BatchQueue queue{options_.max_queued_batches};
  std::vector<std::thread> workers;
  workers.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t) {
    workers.emplace_back([&queue, &shard = shards[t]] {
      Batch batch;
      while (queue.pop(batch))
        shard.observe_batch(batch.samples, batch.first_seq);
    });
  }

  std::uint64_t next_seq = 0;
  std::vector<sflow::FlowSample> scratch;
  while (true) {
    const std::size_t n = source(scratch);
    if (n == 0) break;
    Batch batch;
    batch.samples = std::move(scratch);
    batch.first_seq = next_seq;
    next_seq += n;
    scratch = {};
    queue.push(std::move(batch));
  }
  queue.close();
  for (auto& worker : workers) worker.join();

  // Ordered reduce: shard 0, then 1, ... Merge is commutative anyway, but
  // a fixed order keeps the reduce itself schedule-independent.
  for (auto& shard : shards) session.absorb(std::move(shard));
  return session.finish(fetch);
}

WeeklyReport ParallelAnalyzer::analyze(int week, sflow::TraceReader& reader,
                                       const classify::ChainFetcher& fetch) {
  const std::size_t batch_size = options_.batch_size;
  return analyze(
      week,
      [&reader, batch_size](std::vector<sflow::FlowSample>& out) {
        return reader.read_batch(out, batch_size);
      },
      fetch);
}

WeeklyReport ParallelAnalyzer::analyze(int week,
                                       std::span<const sflow::FlowSample> samples,
                                       const classify::ChainFetcher& fetch) {
  WeekSession session = vantage_->open_week(week);

  if (threads_ <= 1) {
    session.observe_batch(samples);
    return session.finish(fetch);
  }

  std::vector<WeekShard> shards;
  shards.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t) shards.push_back(session.make_shard());

  const std::size_t batch_size = options_.batch_size;
  const std::size_t batches = (samples.size() + batch_size - 1) / batch_size;
  std::atomic<std::size_t> next_batch{0};

  std::vector<std::thread> workers;
  workers.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t) {
    workers.emplace_back([&, t] {
      WeekShard& shard = shards[t];
      for (std::size_t b = next_batch.fetch_add(1); b < batches;
           b = next_batch.fetch_add(1)) {
        const std::size_t begin = b * batch_size;
        const std::size_t count = std::min(batch_size, samples.size() - begin);
        shard.observe_batch(samples.subspan(begin, count), begin);
      }
    });
  }
  for (auto& worker : workers) worker.join();

  for (auto& shard : shards) session.absorb(std::move(shard));
  return session.finish(fetch);
}

}  // namespace ixp::core
