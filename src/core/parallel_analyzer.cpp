#include "core/parallel_analyzer.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

namespace ixp::core {

namespace {

/// One unit of work: a batch of samples plus its global stream position.
struct Batch {
  std::vector<sflow::FlowSample> samples;
  std::uint64_t first_seq = 0;
};

/// Bounded MPMC queue: the reader blocks when the workers fall behind,
/// the workers block when the reader does. abort() is the poison pill of
/// the failure path — it drains the queue and wakes every blocked thread,
/// so neither a reader stuck in push() nor a worker stuck in pop() can
/// outlive a worker failure.
class BatchQueue {
 public:
  explicit BatchQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False when the queue was aborted (the batch is discarded).
  bool push(Batch&& batch) {
    std::unique_lock lock{mutex_};
    not_full_.wait(lock, [&] { return queue_.size() < capacity_ || aborted_; });
    if (aborted_) return false;
    queue_.push_back(std::move(batch));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  bool pop(Batch& out) {
    std::unique_lock lock{mutex_};
    not_empty_.wait(lock, [&] { return !queue_.empty() || closed_ || aborted_; });
    if (aborted_ || queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Clean end-of-stream: workers drain what is queued, then stop.
  void close() {
    {
      std::lock_guard lock{mutex_};
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  /// Failure path: discard everything, wake everyone, refuse new work.
  void abort() {
    {
      std::lock_guard lock{mutex_};
      aborted_ = true;
      queue_.clear();
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Batch> queue_;
  std::size_t capacity_;
  bool closed_ = false;
  bool aborted_ = false;
};

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Captures the first worker exception; later ones are dropped (their
/// batches are already counted in the per-worker error tallies).
class FirstError {
 public:
  void capture() noexcept {
    std::lock_guard lock{mutex_};
    if (!error_) error_ = std::current_exception();
  }
  void rethrow_if_set() {
    if (error_) std::rethrow_exception(error_);
  }

 private:
  std::mutex mutex_;
  std::exception_ptr error_;
};

/// Stamps the failure-containment outcome onto a finished report.
/// worker_errors is attached only when batches were actually dropped, so
/// a clean run's report stays byte-identical across thread counts.
WeeklyReport finish_flagged(WeekSession& session,
                            const classify::ChainFetcher& fetch,
                            std::vector<std::uint64_t>&& worker_errors) {
  WeeklyReport report = session.finish(fetch);
  const std::uint64_t dropped = std::accumulate(
      worker_errors.begin(), worker_errors.end(), std::uint64_t{0});
  if (dropped > 0) {
    report.degraded = true;
    report.worker_errors = std::move(worker_errors);
  }
  return report;
}

}  // namespace

ParallelAnalyzer::ParallelAnalyzer(VantagePoint& vantage,
                                   ParallelOptions options)
    : vantage_(&vantage),
      options_(std::move(options)),
      threads_(resolve_threads(options_.threads)) {
  if (options_.batch_size == 0) options_.batch_size = 1;
  if (options_.max_queued_batches == 0) options_.max_queued_batches = 1;
}

WeeklyReport ParallelAnalyzer::analyze(int week, const BatchSource& source,
                                       const classify::ChainFetcher& fetch) {
  WeekSession session = vantage_->open_week(week);
  const bool lenient = options_.lenient_workers;
  const auto& hook = options_.worker_hook;

  if (threads_ <= 1) {
    // Same batch/seq bookkeeping as the threaded path so a dropped batch
    // leaves the same sequence gap regardless of thread count.
    WeekShard shard = session.make_shard();
    std::vector<std::uint64_t> errors(1, 0);
    std::vector<sflow::FlowSample> batch;
    std::uint64_t next_seq = 0;
    std::size_t n;
    while ((n = source(batch)) > 0) {
      try {
        if (hook) hook(batch, next_seq);
        shard.observe_batch(batch, next_seq);
      } catch (...) {
        if (!lenient) throw;
        ++errors[0];
      }
      next_seq += n;
    }
    session.absorb(std::move(shard));
    return finish_flagged(session, fetch, std::move(errors));
  }

  std::vector<WeekShard> shards;
  shards.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t) shards.push_back(session.make_shard());
  std::vector<std::uint64_t> errors(threads_, 0);
  FirstError first_error;

  BatchQueue queue{options_.max_queued_batches};
  std::vector<std::thread> workers;
  workers.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t) {
    workers.emplace_back([&, t] {
      WeekShard& shard = shards[t];
      Batch batch;
      while (queue.pop(batch)) {
        try {
          if (hook) hook(batch.samples, batch.first_seq);
          shard.observe_batch(batch.samples, batch.first_seq);
        } catch (...) {
          ++errors[t];
          if (!lenient) {
            first_error.capture();
            queue.abort();
            return;
          }
        }
      }
    });
  }

  try {
    std::uint64_t next_seq = 0;
    std::vector<sflow::FlowSample> scratch;
    while (true) {
      const std::size_t n = source(scratch);
      if (n == 0) break;
      Batch batch;
      batch.samples = std::move(scratch);
      batch.first_seq = next_seq;
      next_seq += n;
      scratch = {};
      if (!queue.push(std::move(batch))) break;  // a worker aborted the week
    }
  } catch (...) {
    // The source itself threw: unblock and collect every worker before
    // letting the exception continue — a joinable thread in a destructor
    // would terminate the process.
    queue.abort();
    for (auto& worker : workers) worker.join();
    throw;
  }
  queue.close();
  for (auto& worker : workers) worker.join();
  first_error.rethrow_if_set();

  // Ordered reduce: shard 0, then 1, ... Merge is commutative anyway, but
  // a fixed order keeps the reduce itself schedule-independent.
  for (auto& shard : shards) session.absorb(std::move(shard));
  return finish_flagged(session, fetch, std::move(errors));
}

WeeklyReport ParallelAnalyzer::analyze(int week, sflow::TraceReader& reader,
                                       const classify::ChainFetcher& fetch) {
  // Record-granular batches with offset-derived stream keys: the same
  // (key, sample) pairs a mapped-trace analysis produces, so the two
  // paths yield byte-identical reports over the same trace bytes. The
  // BatchSource plumbing keeps its running-index keys, hence the
  // dedicated pump here instead of a source lambda.
  WeekSession session = vantage_->open_week(week);
  const bool lenient = options_.lenient_workers;
  const auto& hook = options_.worker_hook;

  if (threads_ <= 1) {
    WeekShard shard = session.make_shard();
    std::vector<std::uint64_t> errors(1, 0);
    std::vector<sflow::FlowSample> batch;
    std::uint64_t seq_base = 0;
    while (reader.read_record(batch, seq_base) > 0) {
      try {
        if (hook) hook(batch, seq_base);
        shard.observe_batch(batch, seq_base);
      } catch (...) {
        if (!lenient) throw;
        ++errors[0];
      }
    }
    session.absorb(std::move(shard));
    return finish_flagged(session, fetch, std::move(errors));
  }

  std::vector<WeekShard> shards;
  shards.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t) shards.push_back(session.make_shard());
  std::vector<std::uint64_t> errors(threads_, 0);
  FirstError first_error;

  BatchQueue queue{options_.max_queued_batches};
  std::vector<std::thread> workers;
  workers.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t) {
    workers.emplace_back([&, t] {
      WeekShard& shard = shards[t];
      Batch batch;
      while (queue.pop(batch)) {
        try {
          if (hook) hook(batch.samples, batch.first_seq);
          shard.observe_batch(batch.samples, batch.first_seq);
        } catch (...) {
          ++errors[t];
          if (!lenient) {
            first_error.capture();
            queue.abort();
            return;
          }
        }
      }
    });
  }

  try {
    std::vector<sflow::FlowSample> scratch;
    std::uint64_t seq_base = 0;
    while (reader.read_record(scratch, seq_base) > 0) {
      Batch batch;
      batch.samples = std::move(scratch);
      batch.first_seq = seq_base;
      scratch = {};
      if (!queue.push(std::move(batch))) break;  // a worker aborted the week
    }
  } catch (...) {
    queue.abort();
    for (auto& worker : workers) worker.join();
    throw;
  }
  queue.close();
  for (auto& worker : workers) worker.join();
  first_error.rethrow_if_set();

  for (auto& shard : shards) session.absorb(std::move(shard));
  return finish_flagged(session, fetch, std::move(errors));
}

WeeklyReport ParallelAnalyzer::analyze(int week, const sflow::MappedTrace& trace,
                                       const classify::ChainFetcher& fetch,
                                       sflow::ReadPolicy policy,
                                       MappedIngest* ingest) {
  WeekSession session = vantage_->open_week(week);
  const bool lenient = options_.lenient_workers;
  const auto& hook = options_.worker_hook;

  // 2× over-segmentation keeps workers busy when corruption (resync
  // scans) makes segment costs uneven; one segment when single-threaded
  // makes the walk literally the streamed reader's walk.
  const std::size_t want = threads_ <= 1 ? 1 : std::size_t{threads_} * 2;
  const std::vector<sflow::TraceSegment> segments =
      sflow::TraceSegmenter::split(trace.bytes(), want);
  std::vector<sflow::ReaderStats> per_segment(segments.size());

  const auto finalize_ingest = [&] {
    if (ingest == nullptr) return;
    ingest->segments = segments;
    ingest->total = sflow::ReaderStats{};
    for (const auto& stats : per_segment) ingest->total += stats;
    ingest->per_segment = std::move(per_segment);
    ingest->within_budget = ingest->total.errors() <= policy.max_errors;
  };

  if (threads_ <= 1) {
    WeekShard shard = session.make_shard();
    std::vector<std::uint64_t> errors(1, 0);
    sflow::TraceCursor cursor{trace.bytes(), {}};
    for (std::size_t s = 0; s < segments.size(); ++s) {
      cursor.reset(trace.bytes(), segments[s]);
      std::uint64_t seq_base = 0;
      for (auto batch = cursor.read_record(seq_base); !batch.empty();
           batch = cursor.read_record(seq_base)) {
        try {
          if (hook) hook(batch, seq_base);
          shard.observe_batch(batch, seq_base);
        } catch (...) {
          if (!lenient) {
            per_segment[s] = cursor.stats();
            finalize_ingest();
            throw;
          }
          ++errors[0];
        }
      }
      per_segment[s] = cursor.stats();
    }
    session.absorb(std::move(shard));
    finalize_ingest();
    return finish_flagged(session, fetch, std::move(errors));
  }

  std::vector<WeekShard> shards;
  shards.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t) shards.push_back(session.make_shard());
  std::vector<std::uint64_t> errors(threads_, 0);
  FirstError first_error;
  std::atomic<std::size_t> next_segment{0};
  std::atomic<bool> aborted{false};

  std::vector<std::thread> workers;
  workers.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t) {
    workers.emplace_back([&, t] {
      WeekShard& shard = shards[t];
      sflow::TraceCursor cursor{trace.bytes(), {}};
      for (std::size_t s = next_segment.fetch_add(1);
           s < segments.size() && !aborted.load(std::memory_order_relaxed);
           s = next_segment.fetch_add(1)) {
        cursor.reset(trace.bytes(), segments[s]);
        std::uint64_t seq_base = 0;
        for (auto batch = cursor.read_record(seq_base); !batch.empty();
             batch = cursor.read_record(seq_base)) {
          try {
            if (hook) hook(batch, seq_base);
            shard.observe_batch(batch, seq_base);
          } catch (...) {
            ++errors[t];
            if (!lenient) {
              first_error.capture();
              aborted.store(true, std::memory_order_relaxed);
              per_segment[s] = cursor.stats();
              return;
            }
          }
        }
        per_segment[s] = cursor.stats();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  finalize_ingest();
  first_error.rethrow_if_set();

  for (auto& shard : shards) session.absorb(std::move(shard));
  return finish_flagged(session, fetch, std::move(errors));
}

WeeklyReport ParallelAnalyzer::analyze(int week,
                                       std::span<const sflow::FlowSample> samples,
                                       const classify::ChainFetcher& fetch) {
  WeekSession session = vantage_->open_week(week);
  const bool lenient = options_.lenient_workers;
  const auto& hook = options_.worker_hook;

  if (threads_ <= 1) {
    WeekShard shard = session.make_shard();
    std::vector<std::uint64_t> errors(1, 0);
    const std::size_t batch_size = options_.batch_size;
    for (std::size_t begin = 0; begin < samples.size(); begin += batch_size) {
      const std::size_t count = std::min(batch_size, samples.size() - begin);
      const auto chunk = samples.subspan(begin, count);
      try {
        if (hook) hook(chunk, begin);
        shard.observe_batch(chunk, begin);
      } catch (...) {
        if (!lenient) throw;
        ++errors[0];
      }
    }
    session.absorb(std::move(shard));
    return finish_flagged(session, fetch, std::move(errors));
  }

  std::vector<WeekShard> shards;
  shards.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t) shards.push_back(session.make_shard());
  std::vector<std::uint64_t> errors(threads_, 0);
  FirstError first_error;

  const std::size_t batch_size = options_.batch_size;
  const std::size_t batches = (samples.size() + batch_size - 1) / batch_size;
  std::atomic<std::size_t> next_batch{0};
  std::atomic<bool> aborted{false};

  std::vector<std::thread> workers;
  workers.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t) {
    workers.emplace_back([&, t] {
      WeekShard& shard = shards[t];
      for (std::size_t b = next_batch.fetch_add(1);
           b < batches && !aborted.load(std::memory_order_relaxed);
           b = next_batch.fetch_add(1)) {
        const std::size_t begin = b * batch_size;
        const std::size_t count = std::min(batch_size, samples.size() - begin);
        const auto chunk = samples.subspan(begin, count);
        try {
          if (hook) hook(chunk, begin);
          shard.observe_batch(chunk, begin);
        } catch (...) {
          ++errors[t];
          if (!lenient) {
            first_error.capture();
            aborted.store(true, std::memory_order_relaxed);
            return;
          }
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  first_error.rethrow_if_set();

  for (auto& shard : shards) session.absorb(std::move(shard));
  return finish_flagged(session, fetch, std::move(errors));
}

}  // namespace ixp::core
