#include "core/parallel_analyzer.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

namespace ixp::core {

namespace {

/// One queued unit of work: an owned copy of a pumped batch plus its
/// global stream position. Claim-mode workers never touch this — their
/// batches stay zero-copy views into the sub-source they drain.
struct Batch {
  std::vector<sflow::FlowSample> samples;
  std::uint64_t first_seq = 0;
};

/// Bounded MPMC queue: the reader blocks when the workers fall behind,
/// the workers block when the reader does. abort() is the poison pill of
/// the failure path — it drains the queue and wakes every blocked thread,
/// so neither a reader stuck in push() nor a worker stuck in pop() can
/// outlive a worker failure.
class BatchQueue {
 public:
  explicit BatchQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False when the queue was aborted (the batch is discarded).
  bool push(Batch&& batch) {
    std::unique_lock lock{mutex_};
    not_full_.wait(lock, [&] { return queue_.size() < capacity_ || aborted_; });
    if (aborted_) return false;
    queue_.push_back(std::move(batch));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  bool pop(Batch& out) {
    std::unique_lock lock{mutex_};
    not_empty_.wait(lock, [&] { return !queue_.empty() || closed_ || aborted_; });
    if (aborted_ || queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Clean end-of-stream: workers drain what is queued, then stop.
  void close() {
    {
      std::lock_guard lock{mutex_};
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  /// Failure path: discard everything, wake everyone, refuse new work.
  void abort() {
    {
      std::lock_guard lock{mutex_};
      aborted_ = true;
      queue_.clear();
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Batch> queue_;
  std::size_t capacity_;
  bool closed_ = false;
  bool aborted_ = false;
};

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Captures the first worker exception; later ones are dropped (their
/// batches are already counted in the per-worker error tallies).
class FirstError {
 public:
  void capture() noexcept {
    std::lock_guard lock{mutex_};
    if (!error_) error_ = std::current_exception();
  }
  void rethrow_if_set() {
    if (error_) std::rethrow_exception(error_);
  }

 private:
  std::mutex mutex_;
  std::exception_ptr error_;
};

/// Stamps the failure-containment outcome onto a finished report.
/// worker_errors is attached only when batches were actually dropped, so
/// a clean run's report stays byte-identical across thread counts.
WeeklyReport finish_flagged(WeekSession& session,
                            const classify::ChainFetcher& fetch,
                            std::vector<std::uint64_t>&& worker_errors) {
  WeeklyReport report = session.finish(fetch);
  const std::uint64_t dropped = std::accumulate(
      worker_errors.begin(), worker_errors.end(), std::uint64_t{0});
  if (dropped > 0) {
    report.degraded = true;
    report.worker_errors = std::move(worker_errors);
  }
  return report;
}

}  // namespace

ParallelAnalyzer::ParallelAnalyzer(VantagePoint& vantage,
                                   ParallelOptions options)
    : vantage_(&vantage),
      options_(std::move(options)),
      threads_(resolve_threads(options_.threads)) {
  if (options_.batch_size == 0) options_.batch_size = 1;
  if (options_.max_queued_batches == 0) options_.max_queued_batches = 1;
}

WeeklyReport ParallelAnalyzer::analyze(int week, ingest::IngestSource& source,
                                       const classify::ChainFetcher& fetch) {
  WeekSession session = vantage_->open_week(week);
  std::vector<std::uint64_t> errors;
  WeekShard shard = reduce(session, source, &errors);
  session.absorb(std::move(shard));
  return finish_flagged(session, fetch, std::move(errors));
}

WeekShard ParallelAnalyzer::reduce(WeekSession& session,
                                   ingest::IngestSource& source,
                                   std::vector<std::uint64_t>* worker_errors) {
  const bool lenient = options_.lenient_workers;
  const auto& hook = options_.worker_hook;

  // Ask the source for a parallel plan. 2× over-partitioning keeps
  // workers busy when part costs are uneven (resync scans in corrupted
  // segments); exactly one part when single-threaded makes the walk
  // literally the serial one.
  const std::size_t want = threads_ <= 1 ? 1 : std::size_t{threads_} * 2;
  std::vector<std::unique_ptr<ingest::IngestSource>> parts = source.split(want);

  if (threads_ <= 1) {
    // Serial: drain the parts in order (or the source itself if it has no
    // plan) on the calling thread. Same batch/seq bookkeeping as the
    // threaded paths so a dropped batch leaves the same sequence gap
    // regardless of thread count.
    WeekShard shard = session.make_shard();
    std::vector<std::uint64_t> errors(1, 0);
    const auto consume = [&](ingest::IngestSource& src) {
      ingest::SampleBatch batch;
      while (src.next_batch(batch) == ingest::SourceStatus::kBatch) {
        try {
          if (hook) hook(batch.samples, batch.first_seq);
          shard.observe_batch(batch.samples, batch.first_seq);
        } catch (...) {
          if (!lenient) throw;
          ++errors[0];
        }
      }
    };
    if (parts.empty()) {
      consume(source);
    } else {
      for (const auto& part : parts) consume(*part);
    }
    if (worker_errors != nullptr) *worker_errors = std::move(errors);
    return shard;
  }

  std::vector<WeekShard> shards;
  shards.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t) shards.push_back(session.make_shard());
  std::vector<std::uint64_t> errors(threads_, 0);
  FirstError first_error;

  if (!parts.empty()) {
    // Claim mode: workers claim whole sub-sources via an atomic counter
    // and decode them concurrently — no pump thread, no copies. A strict
    // failure stops claiming; workers already inside a part finish or
    // bail on their own batch boundary.
    std::atomic<std::size_t> next_part{0};
    std::atomic<bool> aborted{false};

    std::vector<std::thread> workers;
    workers.reserve(threads_);
    for (unsigned t = 0; t < threads_; ++t) {
      workers.emplace_back([&, t] {
        WeekShard& shard = shards[t];
        for (std::size_t p = next_part.fetch_add(1);
             p < parts.size() && !aborted.load(std::memory_order_relaxed);
             p = next_part.fetch_add(1)) {
          ingest::IngestSource& part = *parts[p];
          ingest::SampleBatch batch;
          while (part.next_batch(batch) == ingest::SourceStatus::kBatch) {
            try {
              if (hook) hook(batch.samples, batch.first_seq);
              shard.observe_batch(batch.samples, batch.first_seq);
            } catch (...) {
              ++errors[t];
              if (!lenient) {
                first_error.capture();
                aborted.store(true, std::memory_order_relaxed);
                return;
              }
            }
          }
        }
      });
    }
    for (auto& worker : workers) worker.join();
    first_error.rethrow_if_set();

    // Ordered reduce: shard 0, then 1, ... Merge is commutative anyway,
    // but a fixed order keeps the reduce itself schedule-independent.
    for (std::size_t t = 1; t < shards.size(); ++t)
      shards[0].merge(std::move(shards[t]));
    if (worker_errors != nullptr) *worker_errors = std::move(errors);
    return std::move(shards[0]);
  }

  // Pump mode: the source is serial (an istream, a pull function, a live
  // feed), so the calling thread pulls batches — copying each view into
  // queue-owned storage, since the view dies on the next pull — and the
  // workers run the hot path behind the bounded queue.
  BatchQueue queue{options_.max_queued_batches};
  std::vector<std::thread> workers;
  workers.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t) {
    workers.emplace_back([&, t] {
      WeekShard& shard = shards[t];
      Batch batch;
      while (queue.pop(batch)) {
        try {
          if (hook) hook(batch.samples, batch.first_seq);
          shard.observe_batch(batch.samples, batch.first_seq);
        } catch (...) {
          ++errors[t];
          if (!lenient) {
            first_error.capture();
            queue.abort();
            return;
          }
        }
      }
    });
  }

  try {
    ingest::SampleBatch pulled;
    while (source.next_batch(pulled) == ingest::SourceStatus::kBatch) {
      Batch batch;
      batch.samples.assign(pulled.samples.begin(), pulled.samples.end());
      batch.first_seq = pulled.first_seq;
      if (!queue.push(std::move(batch))) break;  // a worker aborted the week
    }
  } catch (...) {
    // The source itself threw: unblock and collect every worker before
    // letting the exception continue — a joinable thread in a destructor
    // would terminate the process.
    queue.abort();
    for (auto& worker : workers) worker.join();
    throw;
  }
  queue.close();
  for (auto& worker : workers) worker.join();
  first_error.rethrow_if_set();

  for (std::size_t t = 1; t < shards.size(); ++t)
    shards[0].merge(std::move(shards[t]));
  if (worker_errors != nullptr) *worker_errors = std::move(errors);
  return std::move(shards[0]);
}

}  // namespace ixp::core
