// The 32-byte matcher policy. This TU is compiled with -mavx2 (see
// src/classify/CMakeLists.txt) so the intrinsics inline into
// match_impl; HttpMatcher::match only routes here after
// util::CpuFeatures reported a CPU and OS that support AVX2. If the
// toolchain builds this file without AVX2 (non-x86, or a compiler
// without -mavx2), match_avx2 degrades to the SSE2 form so the symbol
// always exists.
#include "classify/http_match_impl.hpp"

#ifdef IXPSCOPE_HTTP_X86

#ifdef __AVX2__
#include <immintrin.h>

namespace ixp::classify::detail {

namespace {

struct Avx2Policy {
  static std::size_t find_lf(std::string_view text, std::size_t from) noexcept {
    const char* p = text.data();
    const std::size_t n = text.size();
    const __m256i lf = _mm256_set1_epi8('\n');
    std::size_t i = from;
    for (; i + 32 <= n; i += 32) {
      const unsigned found =
          static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)),
              lf)));
      if (found != 0)
        return i + static_cast<std::size_t>(__builtin_ctz(found));
    }
    if (i < n) return Sse2Policy::find_lf(text, i);
    return std::string_view::npos;
  }

  static std::size_t find_crlf(std::string_view text) noexcept {
    const char* p = text.data();
    const std::size_t n = text.size();
    const __m256i cr = _mm256_set1_epi8('\r');
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
      unsigned found =
          static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)),
              cr)));
      while (found != 0) {
        const std::size_t at =
            i + static_cast<std::size_t>(__builtin_ctz(found));
        if (at + 1 < n && p[at + 1] == '\n') return at;
        found &= found - 1;
      }
    }
    for (; i + 1 < n; ++i)
      if (p[i] == '\r' && p[i + 1] == '\n') return i;
    return std::string_view::npos;
  }

  static bool token_at(std::string_view text, std::size_t pos,
                       const PaddedToken& token) noexcept {
    if (pos + token.len > text.size()) return false;
    if (pos + 32 > text.size())  // near the payload end: 16-byte/scalar form
      return Sse2Policy::token_at(text, pos, token);
    const unsigned eq =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(text.data() + pos)),
            _mm256_load_si256(
                reinterpret_cast<const __m256i*>(token.bytes)))));
    return (eq & token.mask) == token.mask;
  }
};

}  // namespace

HttpMatch match_avx2(std::string_view payload) noexcept {
  return match_impl<Avx2Policy>(payload);
}

}  // namespace ixp::classify::detail

#else  // !__AVX2__

namespace ixp::classify::detail {

HttpMatch match_avx2(std::string_view payload) noexcept {
  return match_impl<Sse2Policy>(payload);
}

}  // namespace ixp::classify::detail

#endif  // __AVX2__
#endif  // IXPSCOPE_HTTP_X86
