// LaneFlags — lane-wise evidence-bit extraction from FrameBatch arrays.
//
// The dissector's per-sample switch (request/response/header-only ×
// port tests) costs more in branch mispredicts than in arithmetic: a
// realistic traffic mix keeps every branch unpredictable. This kernel
// re-states the whole decision as bitwise algebra over the SoA port /
// transport / indication arrays and evaluates it 16–32 samples per step
// (SSE2 / AVX2, dispatched via util::CpuFeatures), writing one evidence
// byte per endpoint. The dissector's table-update pass then runs with
// no data-dependent branches at all (DESIGN.md §14).
//
// compute_scalar is the oracle: the dispatched form is held byte-
// identical to it by the differential fuzz suite
// (tests/classify/simd_differential_test.cpp) on arbitrary inputs,
// including non-TCP samples and every indication value.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ixp::classify {

class LaneFlags {
 public:
  /// Computes the per-sample evidence bytes the dissector ORs into the
  /// source and destination IpActivity entries: candidate-443 / RTMP
  /// port evidence (TCP only) plus the HTTP server/client/port bits
  /// implied by the sample's HttpIndication. All arrays hold `n`
  /// index-aligned entries; `src_flags`/`dst_flags` are fully written.
  [[gnu::hot]] static void compute(const std::uint16_t* src_port,
                                   const std::uint16_t* dst_port,
                                   const std::uint8_t* tcp,
                                   const std::uint8_t* indication,
                                   std::size_t n, std::uint8_t* src_flags,
                                   std::uint8_t* dst_flags) noexcept;

  /// The scalar reference the SIMD paths are tested against.
  static void compute_scalar(const std::uint16_t* src_port,
                             const std::uint16_t* dst_port,
                             const std::uint8_t* tcp,
                             const std::uint8_t* indication, std::size_t n,
                             std::uint8_t* src_flags,
                             std::uint8_t* dst_flags) noexcept;
};

namespace detail {

/// The fixed-width kernels behind LaneFlags::compute, exposed so the
/// micro_hotpath A/B and the differential suite can pin each tier
/// directly. On non-x86 builds lane_flags_sse2 degrades to the scalar
/// form; lane_flags_avx2 (its own TU, compiled with -mavx2) degrades to
/// the SSE2 form when the toolchain can't build it. Callers of the AVX2
/// form must still gate on util::CpuFeatures — the symbol always links,
/// but executing it needs hardware+OS support.
void lane_flags_sse2(const std::uint16_t* src_port,
                     const std::uint16_t* dst_port, const std::uint8_t* tcp,
                     const std::uint8_t* indication, std::size_t n,
                     std::uint8_t* src_flags, std::uint8_t* dst_flags) noexcept;

void lane_flags_avx2(const std::uint16_t* src_port,
                     const std::uint16_t* dst_port, const std::uint8_t* tcp,
                     const std::uint8_t* indication, std::size_t n,
                     std::uint8_t* src_flags, std::uint8_t* dst_flags) noexcept;

}  // namespace detail

}  // namespace ixp::classify
