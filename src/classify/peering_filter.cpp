#include "classify/peering_filter.hpp"

#include "sflow/fast_parse.hpp"

namespace ixp::classify {

std::optional<PeeringSample> PeeringFilter::filter(
    const sflow::FlowSample& sample, FilterCounters& counters) const {
  const std::uint64_t expanded =
      static_cast<std::uint64_t>(sample.frame.frame_length) *
      static_cast<std::uint64_t>(sample.sampling_rate);
  const auto account = [&](TrafficClass c) {
    counters.samples[static_cast<std::size_t>(c)] += 1;
    counters.bytes[static_cast<std::size_t>(c)] += expanded;
  };

  const auto parsed = sflow::parse_frame_fast(sample.frame);
  if (!parsed) {
    // Unparsable captures are treated as non-IPv4 junk.
    account(TrafficClass::kNonIpv4);
    return std::nullopt;
  }

  // Step 1: IPv4 only.
  if (!parsed->is_ipv4()) {
    account(TrafficClass::kNonIpv4);
    return std::nullopt;
  }

  // Step 2: member-to-member and not local. Management traffic (the
  // IXP's own MACs) counts as local.
  const sflow::MacAddr src = parsed->eth.src;
  const sflow::MacAddr dst = parsed->eth.dst;
  const bool local = src == ixp_->management_mac() || dst == ixp_->management_mac();
  if (local || !ixp_->is_member_port(src, week_) ||
      !ixp_->is_member_port(dst, week_)) {
    account(TrafficClass::kNonMemberOrLocal);
    return std::nullopt;
  }

  // Step 3: TCP or UDP only.
  if (!parsed->is_tcp() && !parsed->is_udp()) {
    account(TrafficClass::kNonTcpUdp);
    return std::nullopt;
  }

  account(TrafficClass::kPeering);
  (parsed->is_tcp() ? counters.tcp_bytes : counters.udp_bytes) += expanded;
  return PeeringSample{*parsed, expanded};
}

}  // namespace ixp::classify
