// HTTP string matching over 128-byte payload snippets (§2.2.2).
//
// "We use two different patterns. The first pattern matches the initial
// line of request and response packets and looks for HTTP method words
// (e.g., GET, HEAD, POST) and the words HTTP/1.{0,1}. The second pattern
// applies to header lines in any packet of a connection and relies on
// commonly used HTTP header field words."
//
// The matcher also extracts the Host header when present — that is where
// the URIs of §2.4 come from.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace ixp::classify {

enum class HttpIndication : std::uint8_t {
  kNone,        // no HTTP evidence in the snippet
  kRequest,     // initial request line (sender is a client)
  kResponse,    // initial response line (sender is a server)
  kHeaderOnly,  // header field words mid-connection (direction unknown)
};

struct HttpMatch {
  HttpIndication indication = HttpIndication::kNone;
  /// Host header value, when the snippet contains one.
  std::optional<std::string> host;
  /// Request path (first line of a request), when present.
  std::optional<std::string> path;
};

/// Stateless matcher; safe to share across threads.
class HttpMatcher {
 public:
  /// Scans a captured payload snippet. The snippet may be truncated
  /// mid-line (sFlow capture boundary) — partial trailing tokens are
  /// ignored rather than misparsed.
  [[nodiscard]] static HttpMatch match(std::span<const std::byte> payload);

  /// Convenience overload for text.
  [[nodiscard]] static HttpMatch match(std::string_view payload);
};

}  // namespace ixp::classify
