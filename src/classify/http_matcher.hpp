// HTTP string matching over 128-byte payload snippets (§2.2.2).
//
// "We use two different patterns. The first pattern matches the initial
// line of request and response packets and looks for HTTP method words
// (e.g., GET, HEAD, POST) and the words HTTP/1.{0,1}. The second pattern
// applies to header lines in any packet of a connection and relies on
// commonly used HTTP header field words."
//
// The matcher also extracts the Host header when present — that is where
// the URIs of §2.4 come from.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

namespace ixp::classify {

enum class HttpIndication : std::uint8_t {
  kNone,        // no HTTP evidence in the snippet
  kRequest,     // initial request line (sender is a client)
  kResponse,    // initial response line (sender is a server)
  kHeaderOnly,  // header field words mid-connection (direction unknown)
};

/// Zero-allocation match result: `host` and `path` are views into the
/// payload buffer handed to match() and share its lifetime. An empty
/// view means "not present" (an empty header value is never returned).
/// Callers that keep a value beyond the sample copy it at the point of
/// storage — one copy at the evidence-set insert, none per sample.
struct HttpMatch {
  HttpIndication indication = HttpIndication::kNone;
  /// Host header value, when the snippet contains one.
  std::string_view host;
  /// Request path (first line of a request), when present.
  std::string_view path;
};

/// Stateless matcher; safe to share across threads.
class HttpMatcher {
 public:
  /// Scans a captured payload snippet. The snippet may be truncated
  /// mid-line (sFlow capture boundary) — partial trailing tokens are
  /// ignored rather than misparsed. Dispatches to the widest vector
  /// tier util::CpuFeatures reports (DESIGN.md §14); every tier is held
  /// byte-identical to match_scalar by the differential fuzz suite.
  [[nodiscard]] static HttpMatch match(std::span<const std::byte> payload);

  /// Convenience overload for text.
  [[nodiscard]] static HttpMatch match(std::string_view payload);

  /// The scalar reference implementation — the oracle the SIMD tiers
  /// are differentially tested against. Same contract as match().
  [[nodiscard]] static HttpMatch match_scalar(std::span<const std::byte> payload);
  [[nodiscard]] static HttpMatch match_scalar(std::string_view payload);
};

}  // namespace ixp::classify
