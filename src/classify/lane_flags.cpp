#include "classify/lane_flags.hpp"

#include "classify/dissector.hpp"
#include "classify/http_matcher.hpp"
#include "util/cpu_features.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define IXPSCOPE_LANE_X86 1
#endif

namespace ixp::classify {

namespace {

constexpr std::uint8_t kReq = static_cast<std::uint8_t>(HttpIndication::kRequest);
constexpr std::uint8_t kResp =
    static_cast<std::uint8_t>(HttpIndication::kResponse);
constexpr std::uint8_t kHdr =
    static_cast<std::uint8_t>(HttpIndication::kHeaderOnly);

/// One sample, branch form — the semantics contract. Mirrors
/// TrafficDissector::ingest_fields exactly: port evidence gated on TCP,
/// indication evidence not (the matcher never fires on non-TCP anyway).
inline void scalar_lane(std::uint16_t sp, std::uint16_t dp, std::uint8_t tcp,
                        std::uint8_t ind, std::uint8_t& sf,
                        std::uint8_t& df) noexcept {
  std::uint8_t s = 0;
  std::uint8_t d = 0;
  if (tcp != 0) {
    if (sp == 443) s |= kCandidate443;
    if (dp == 443) d |= kCandidate443;
    if (sp == 1935) s |= kSeenRtmp1935;
    if (dp == 1935) d |= kSeenRtmp1935;
  }
  const std::uint8_t ssrv80 = sp == 8080 ? kSeenPort8080 : kSeenPort80;
  const std::uint8_t dsrv80 = dp == 8080 ? kSeenPort8080 : kSeenPort80;
  if (ind == kReq) {
    d |= kSeenHttpServer | dsrv80;
    s |= kSeenHttpClient;
  } else if (ind == kResp) {
    s |= kSeenHttpServer | ssrv80;
    d |= kSeenHttpClient;
  } else if (ind == kHdr) {
    const bool ssrvish = sp == 80 || sp == 8080 || sp == 443;
    const bool dsrvish = dp == 80 || dp == 8080 || dp == 443;
    if (ssrvish && !dsrvish) {
      s |= kSeenHttpServer | ssrv80;
      d |= kSeenHttpClient;
    } else if (dsrvish && !ssrvish) {
      d |= kSeenHttpServer | dsrv80;
      s |= kSeenHttpClient;
    }
  }
  sf = s;
  df = d;
}

#ifdef IXPSCOPE_LANE_X86

/// The lane algebra on one 8-wide half, everything in 16-bit lanes.
/// `t`, `req`, `resp`, `hdr` are 0/0xFFFF lane masks; ports are raw.
/// Restated from scalar_lane:
///   s = t&((sp==443)?C443:0 | (sp==1935)?RTMP:0)
///     | (req|hdrD)&CLIENT | (resp|hdrS)&(SERVER|ssrv80)
/// where hdrS = hdr & srvish(sp) & ~srvish(dp), hdrD mirrored, and
/// ssrv80 selects the 8080 bit over the 80 bit. d is the mirror image.
struct LaneHalf {
  __m128i s;
  __m128i d;
};

inline LaneHalf lane_half_sse2(__m128i sp, __m128i dp, __m128i t, __m128i req,
                               __m128i resp, __m128i hdr) noexcept {
  const __m128i e443s = _mm_cmpeq_epi16(sp, _mm_set1_epi16(443));
  const __m128i e443d = _mm_cmpeq_epi16(dp, _mm_set1_epi16(443));
  const __m128i e1935s = _mm_cmpeq_epi16(sp, _mm_set1_epi16(1935));
  const __m128i e1935d = _mm_cmpeq_epi16(dp, _mm_set1_epi16(1935));
  const __m128i e80s = _mm_cmpeq_epi16(sp, _mm_set1_epi16(80));
  const __m128i e80d = _mm_cmpeq_epi16(dp, _mm_set1_epi16(80));
  const __m128i e8080s = _mm_cmpeq_epi16(sp, _mm_set1_epi16(8080));
  const __m128i e8080d = _mm_cmpeq_epi16(dp, _mm_set1_epi16(8080));

  const __m128i ssrvish = _mm_or_si128(_mm_or_si128(e80s, e8080s), e443s);
  const __m128i dsrvish = _mm_or_si128(_mm_or_si128(e80d, e8080d), e443d);
  const __m128i hdr_s = _mm_andnot_si128(dsrvish, _mm_and_si128(hdr, ssrvish));
  const __m128i hdr_d = _mm_andnot_si128(ssrvish, _mm_and_si128(hdr, dsrvish));

  const __m128i ssrv80 =
      _mm_or_si128(_mm_and_si128(e8080s, _mm_set1_epi16(kSeenPort8080)),
                   _mm_andnot_si128(e8080s, _mm_set1_epi16(kSeenPort80)));
  const __m128i dsrv80 =
      _mm_or_si128(_mm_and_si128(e8080d, _mm_set1_epi16(kSeenPort8080)),
                   _mm_andnot_si128(e8080d, _mm_set1_epi16(kSeenPort80)));

  const __m128i port_s = _mm_and_si128(
      t, _mm_or_si128(_mm_and_si128(e443s, _mm_set1_epi16(kCandidate443)),
                      _mm_and_si128(e1935s, _mm_set1_epi16(kSeenRtmp1935))));
  const __m128i port_d = _mm_and_si128(
      t, _mm_or_si128(_mm_and_si128(e443d, _mm_set1_epi16(kCandidate443)),
                      _mm_and_si128(e1935d, _mm_set1_epi16(kSeenRtmp1935))));

  const __m128i server_s = _mm_and_si128(
      _mm_or_si128(resp, hdr_s),
      _mm_or_si128(_mm_set1_epi16(kSeenHttpServer), ssrv80));
  const __m128i server_d = _mm_and_si128(
      _mm_or_si128(req, hdr_d),
      _mm_or_si128(_mm_set1_epi16(kSeenHttpServer), dsrv80));
  const __m128i client_s = _mm_and_si128(_mm_or_si128(req, hdr_d),
                                         _mm_set1_epi16(kSeenHttpClient));
  const __m128i client_d = _mm_and_si128(_mm_or_si128(resp, hdr_s),
                                         _mm_set1_epi16(kSeenHttpClient));

  return {_mm_or_si128(port_s, _mm_or_si128(server_s, client_s)),
          _mm_or_si128(port_d, _mm_or_si128(server_d, client_d))};
}

#endif  // IXPSCOPE_LANE_X86

}  // namespace

namespace detail {

/// SSE2: 16 samples per step — two 8-wide halves packed to 16 bytes.
/// Non-x86 builds degrade to the scalar loop so the symbol always links.
void lane_flags_sse2(const std::uint16_t* src_port,
                     const std::uint16_t* dst_port, const std::uint8_t* tcp,
                     const std::uint8_t* indication, std::size_t n,
                     std::uint8_t* src_flags,
                     std::uint8_t* dst_flags) noexcept {
#ifdef IXPSCOPE_LANE_X86
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i tcp8 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(tcp + i));
    const __m128i ind8 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(indication + i));
    // 0/nonzero byte -> 0/0xFFFF lane mask (tcp bytes are 0 or 1).
    const __m128i t16 = _mm_xor_si128(_mm_cmpeq_epi8(tcp8, zero),
                                      _mm_set1_epi8(-1));
    const __m128i req8 = _mm_cmpeq_epi8(ind8, _mm_set1_epi8(kReq));
    const __m128i resp8 = _mm_cmpeq_epi8(ind8, _mm_set1_epi8(kResp));
    const __m128i hdr8 = _mm_cmpeq_epi8(ind8, _mm_set1_epi8(kHdr));

    const LaneHalf lo = lane_half_sse2(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src_port + i)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst_port + i)),
        _mm_unpacklo_epi8(t16, t16), _mm_unpacklo_epi8(req8, req8),
        _mm_unpacklo_epi8(resp8, resp8), _mm_unpacklo_epi8(hdr8, hdr8));
    const LaneHalf hi = lane_half_sse2(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src_port + i + 8)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst_port + i + 8)),
        _mm_unpackhi_epi8(t16, t16), _mm_unpackhi_epi8(req8, req8),
        _mm_unpackhi_epi8(resp8, resp8), _mm_unpackhi_epi8(hdr8, hdr8));

    // Lanes only carry bits <= 0x31, so unsigned saturation is exact.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(src_flags + i),
                     _mm_packus_epi16(lo.s, hi.s));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst_flags + i),
                     _mm_packus_epi16(lo.d, hi.d));
  }
  for (; i < n; ++i)
    scalar_lane(src_port[i], dst_port[i], tcp[i], indication[i], src_flags[i],
                dst_flags[i]);
#else
  LaneFlags::compute_scalar(src_port, dst_port, tcp, indication, n, src_flags,
                            dst_flags);
#endif  // IXPSCOPE_LANE_X86
}

}  // namespace detail

void LaneFlags::compute_scalar(const std::uint16_t* src_port,
                               const std::uint16_t* dst_port,
                               const std::uint8_t* tcp,
                               const std::uint8_t* indication, std::size_t n,
                               std::uint8_t* src_flags,
                               std::uint8_t* dst_flags) noexcept {
  for (std::size_t i = 0; i < n; ++i)
    scalar_lane(src_port[i], dst_port[i], tcp[i], indication[i], src_flags[i],
                dst_flags[i]);
}

void LaneFlags::compute(const std::uint16_t* src_port,
                        const std::uint16_t* dst_port, const std::uint8_t* tcp,
                        const std::uint8_t* indication, std::size_t n,
                        std::uint8_t* src_flags,
                        std::uint8_t* dst_flags) noexcept {
#ifdef IXPSCOPE_LANE_X86
  const util::SimdLevel level = util::CpuFeatures::active();
  if (level >= util::SimdLevel::kAvx2) {
    detail::lane_flags_avx2(src_port, dst_port, tcp, indication, n, src_flags,
                            dst_flags);
    return;
  }
  if (level >= util::SimdLevel::kSse2) {
    detail::lane_flags_sse2(src_port, dst_port, tcp, indication, n, src_flags,
                            dst_flags);
    return;
  }
#endif
  compute_scalar(src_port, dst_port, tcp, indication, n, src_flags, dst_flags);
}

}  // namespace ixp::classify
