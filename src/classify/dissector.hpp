// Traffic dissection — the discovery pass over one week of peering
// samples (§2.2.2).
//
// The dissector watches every peering sample, applies the HTTP string
// matcher to the payload snippets, and accumulates per-IP evidence:
// who acts as an HTTP server, who as a client, who is a port-443 (HTTPS)
// candidate, who speaks RTMP, and which Host headers (URIs) each server
// was asked for. Nothing here consults the ground-truth model — the
// dissector sees only what the IXP would see.
//
// All accumulated state forms a commutative monoid under merge():
// integer byte/sample tallies, OR-ed evidence bits, and Host-header sets
// bounded by earliest global sequence number. Splitting a week's samples
// across any number of dissectors and merging them back — in any order —
// reproduces the single-dissector state exactly. The parallel engine in
// core/ relies on this contract.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "classify/frame_batch.hpp"
#include "classify/http_matcher.hpp"
#include "classify/peering_filter.hpp"
#include "net/ipv4.hpp"
#include "util/flat_hash_map.hpp"
#include "util/inline_string.hpp"

namespace ixp::store {
class SnapshotCodec;
}  // namespace ixp::store

namespace ixp::classify {

/// Evidence bits per IP.
inline constexpr std::uint8_t kSeenHttpServer = 0x01;  // string-match evidence
inline constexpr std::uint8_t kSeenHttpClient = 0x02;
inline constexpr std::uint8_t kCandidate443 = 0x04;    // traffic on TCP 443
inline constexpr std::uint8_t kSeenRtmp1935 = 0x08;    // traffic on TCP 1935
inline constexpr std::uint8_t kSeenPort80 = 0x10;      // server evidence on 80
inline constexpr std::uint8_t kSeenPort8080 = 0x20;    // server evidence on 8080
inline constexpr std::uint8_t kConfirmedHttps = 0x40;  // set by the prober

struct IpActivity {
  std::uint32_t samples = 0;
  std::uint64_t bytes = 0;  // expanded bytes of samples touching this IP
  std::uint8_t flags = 0;

  [[nodiscard]] bool http_server() const noexcept {
    return (flags & kSeenHttpServer) != 0;
  }
  [[nodiscard]] bool https_server() const noexcept {
    return (flags & kConfirmedHttps) != 0;
  }
  [[nodiscard]] bool web_server() const noexcept {
    return http_server() || https_server();
  }
  [[nodiscard]] bool client() const noexcept {
    return (flags & kSeenHttpClient) != 0;
  }
  /// Multi-purpose: server activity on more than one of {80/8080, 443, 1935}.
  [[nodiscard]] bool multi_purpose() const noexcept;
};

/// Week-level tallies produced by finalize().
struct DissectionSummary {
  std::size_t unique_ips = 0;
  std::size_t http_server_ips = 0;
  std::size_t https_candidate_ips = 0;
  std::size_t https_server_ips = 0;  // after the prober confirmed them
  std::size_t web_server_ips = 0;    // HTTP union HTTPS
  std::size_t client_ips = 0;
  std::size_t dual_role_ips = 0;     // server and client
  std::size_t multi_purpose_ips = 0;
  double dual_role_server_bytes = 0.0;
  double total_bytes = 0.0;          // peering bytes (each sample once)

  friend bool operator==(const DissectionSummary&,
                         const DissectionSummary&) = default;
};

class TrafficDissector {
 public:
  TrafficDissector();

  /// Ingests one peering sample (output of PeeringFilter::filter). The
  /// sample's `seq` orders Host-header first-seen tie-breaks.
  void ingest(const PeeringSample& sample);

  /// Batch form: equivalent to ingesting each sample in order, but the
  /// flat tables' probe slots for upcoming samples are prefetched a few
  /// iterations ahead, overlapping their cache misses with payload
  /// matching. Use this when samples arrive in runs (the shard path).
  void ingest(std::span<const PeeringSample> batch);

  /// Structure-of-arrays form: equivalent to ingesting each staged
  /// sample in order, but the per-sample fields were derived once at
  /// filter time and stream out of FrameBatch's parallel arrays, and
  /// the address arrays drive the prefetch lookahead directly. This is
  /// the production shard path (WeekShard::observe_batch). Placed in
  /// .text.hot: the table-update loop is front-end sensitive, and
  /// grouping it with the other hot kernels keeps its placement stable
  /// as unrelated TUs move around the image.
  [[gnu::hot]] void ingest(const FrameBatch& batch);

  /// Marks an IP as a confirmed HTTPS server (prober feedback).
  void confirm_https(net::Ipv4Addr addr);

  /// Folds another dissector's state into this one. Associative and
  /// commutative; the other dissector is consumed.
  void merge(TrafficDissector&& other);

  using ActivityMap = util::FlatHashMap<net::Ipv4Addr, IpActivity>;

  [[nodiscard]] const ActivityMap& activity() const noexcept {
    return activity_;
  }

  /// Host headers observed per server IP (capped, deduplicated), ordered
  /// by earliest observation — deterministic under any shard split.
  [[nodiscard]] std::vector<std::string> hosts_of(net::Ipv4Addr addr) const;

  /// All port-443 candidates (input to the HTTPS prober), sorted by IP.
  [[nodiscard]] std::vector<net::Ipv4Addr> https_candidates() const;

  /// All identified web-server IPs (call after confirm_https feedback),
  /// sorted by IP.
  [[nodiscard]] std::vector<net::Ipv4Addr> web_servers() const;

  [[nodiscard]] DissectionSummary summarize() const;

 private:
  /// The snapshot codec (store/) serializes the evidence tables in
  /// canonical sorted order and reconstructs them on load.
  friend class store::SnapshotCodec;

  static constexpr std::size_t kMaxHostsPerServer = 8;

  /// Host headers come out of the 128-byte capture minus the "Host:"
  /// prefix, so kHostCapacity bytes always hold a full value and the
  /// inline copy is lossless.
  static constexpr std::size_t kHostCapacity =
      sflow::kCaptureBytes - sizeof("Host:") + 1;

  /// One Host header with the global sequence number of its earliest
  /// sighting; the per-server set keeps the kMaxHostsPerServer smallest
  /// (first_seq, name) keys, which makes the bounded set an exact
  /// order-statistics monoid under merge. The name lives inline — the
  /// single copy out of the capture buffer happens right here, at
  /// evidence-set insertion, never per sample.
  struct HostObservation {
    util::InlineString<kHostCapacity> name;
    std::uint64_t first_seq = 0;
  };

  void note_host(net::Ipv4Addr server, std::string_view host,
                 std::uint64_t seq);

  /// The per-sample update, shared by every ingest form: fields arrive
  /// flat — including the HTTP match verdict, computed exactly once
  /// upstream (at staging time on the batch path, inline on the
  /// single-sample path) — so no path re-derives them from ParsedFrame.
  void ingest_fields(net::Ipv4Addr src, net::Ipv4Addr dst,
                     std::uint16_t src_port, std::uint16_t dst_port, bool tcp,
                     HttpIndication indication, std::string_view host,
                     std::uint64_t expanded_bytes, std::uint64_t seq);

  ActivityMap activity_;
  util::FlatHashMap<net::Ipv4Addr, std::vector<HostObservation>> hosts_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace ixp::classify
