// The Figure-1 filter cascade.
//
// "After removing from the overall traffic, in succession, all non-IPv4
// traffic (~0.4%), all traffic that is either not member-to-member or
// stays local (~0.6%), all member-to-member IPv4 traffic that is not TCP
// or UDP (<0.5%), this peering traffic makes up more than 98.5% of the
// total traffic."
#pragma once

#include <cstdint>
#include <optional>

#include "fabric/ixp.hpp"
#include "sflow/datagram.hpp"
#include "sflow/frame.hpp"

namespace ixp::classify {

enum class TrafficClass : std::uint8_t {
  kNonIpv4,          // native IPv6, ARP, ...
  kNonMemberOrLocal, // not member-to-member, or IXP management traffic
  kNonTcpUdp,        // member-to-member IPv4, but ICMP/GRE/...
  kPeering,          // the traffic all analyses run on
};

/// Sample and (expanded) byte tallies per class, plus the TCP/UDP split
/// of the surviving peering traffic.
///
/// Byte tallies are kept in integer units: expanded bytes are always
/// frame_length x sampling_rate, an exact integer, so accumulating them
/// in std::uint64_t makes merge() associative AND commutative — the
/// foundation of the parallel engine's determinism contract (any shard
/// split of a week reduces to bit-identical counters).
struct FilterCounters {
  std::uint64_t samples[4] = {0, 0, 0, 0};
  std::uint64_t bytes[4] = {0, 0, 0, 0};
  std::uint64_t tcp_bytes = 0;
  std::uint64_t udp_bytes = 0;

  [[nodiscard]] std::uint64_t total_samples() const noexcept {
    return samples[0] + samples[1] + samples[2] + samples[3];
  }
  [[nodiscard]] double total_bytes() const noexcept {
    return static_cast<double>(bytes[0] + bytes[1] + bytes[2] + bytes[3]);
  }
  [[nodiscard]] std::uint64_t of(TrafficClass c) const noexcept {
    return samples[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double bytes_of(TrafficClass c) const noexcept {
    return static_cast<double>(bytes[static_cast<std::size_t>(c)]);
  }

  /// Adds another shard's tallies; associative and commutative.
  void merge(const FilterCounters& other) noexcept {
    for (std::size_t i = 0; i < 4; ++i) {
      samples[i] += other.samples[i];
      bytes[i] += other.bytes[i];
    }
    tcp_bytes += other.tcp_bytes;
    udp_bytes += other.udp_bytes;
  }

  friend bool operator==(const FilterCounters&, const FilterCounters&) = default;
};

/// Classification result for one sample that survived to peering.
struct PeeringSample {
  sflow::ParsedFrame frame;
  std::uint64_t expanded_bytes = 0;  // frame_length x sampling rate (exact)
  /// Global position of the sample in the week's stream. Used to keep
  /// first-seen tie-breaks (Host-header caps) deterministic under any
  /// shard split; callers that never shard may leave it 0.
  std::uint64_t seq = 0;
};

class PeeringFilter {
 public:
  /// `week` selects which members are on the fabric.
  PeeringFilter(const fabric::Ixp& ixp, int week) noexcept
      : ixp_(&ixp), week_(week) {}

  /// Classifies one sample, updates `counters`, and returns the parsed
  /// frame when (and only when) it is peering traffic.
  std::optional<PeeringSample> filter(const sflow::FlowSample& sample,
                                      FilterCounters& counters) const;

  [[nodiscard]] int week() const noexcept { return week_; }

 private:
  const fabric::Ixp* ixp_;
  int week_;
};

}  // namespace ixp::classify
