#include "classify/dissector.hpp"

#include "classify/lane_flags.hpp"

#include <algorithm>
#include <tuple>

namespace ixp::classify {

bool IpActivity::multi_purpose() const noexcept {
  int purposes = 0;
  if ((flags & (kSeenPort80 | kSeenPort8080)) != 0) ++purposes;
  if ((flags & kConfirmedHttps) != 0) ++purposes;
  if ((flags & kSeenRtmp1935) != 0 && (flags & kSeenHttpServer) != 0) ++purposes;
  return purposes >= 2;
}

TrafficDissector::TrafficDissector() {
  activity_.reserve(1 << 16);
}

void TrafficDissector::note_host(net::Ipv4Addr server, std::string_view host,
                                 std::uint64_t seq) {
  auto& hosts = hosts_[server];
  for (auto& seen : hosts) {
    if (seen.name == host) {
      seen.first_seq = std::min(seen.first_seq, seq);
      return;
    }
  }
  if (hosts.size() < kMaxHostsPerServer) {
    hosts.push_back({util::InlineString<kHostCapacity>{host}, seq});
    return;
  }
  // Keep the kMaxHostsPerServer smallest (first_seq, name) keys: evict the
  // largest when the newcomer precedes it.
  auto latest = std::max_element(
      hosts.begin(), hosts.end(), [](const auto& a, const auto& b) {
        return std::tie(a.first_seq, a.name) < std::tie(b.first_seq, b.name);
      });
  if (std::tuple{seq, host} < std::tuple{latest->first_seq, latest->name.view()}) {
    latest->name.assign(host);
    latest->first_seq = seq;
  }
}

void TrafficDissector::ingest(const PeeringSample& sample) {
  const sflow::ParsedFrame& frame = sample.frame;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  bool tcp = false;
  if (frame.is_tcp()) {
    src_port = frame.tcp->src_port;
    dst_port = frame.tcp->dst_port;
    tcp = true;
  } else if (frame.is_udp()) {
    src_port = frame.udp->src_port;
    dst_port = frame.udp->dst_port;
  }

  // Both table touches are random-access; issue the prefetches first and
  // run the payload match while the lines arrive.
  activity_.prefetch(frame.ip->src);
  activity_.prefetch(frame.ip->dst);

  HttpMatch match;
  if (tcp && !frame.payload.empty()) match = HttpMatcher::match(frame.payload);
  ingest_fields(frame.ip->src, frame.ip->dst, src_port, dst_port, tcp,
                match.indication, match.host, sample.expanded_bytes,
                sample.seq);
}

void TrafficDissector::ingest_fields(net::Ipv4Addr src, net::Ipv4Addr dst,
                                     std::uint16_t src_port,
                                     std::uint16_t dst_port, bool tcp,
                                     HttpIndication indication,
                                     std::string_view host,
                                     std::uint64_t expanded_bytes,
                                     std::uint64_t seq) {
  if (!host.empty())
    hosts_.prefetch(indication == HttpIndication::kRequest ? dst : src);

  // Up to two inserts follow; grow first so the second operator[] can
  // never rehash out from under the first reference (src_info would
  // dangle into the freed slot array — caught by ASan at bench scale).
  activity_.reserve(activity_.size() + 2);
  IpActivity& src_info = activity_[src];
  IpActivity& dst_info = activity_[dst];
  src_info.samples += 1;
  dst_info.samples += 1;
  src_info.bytes += expanded_bytes;
  dst_info.bytes += expanded_bytes;
  total_bytes_ += expanded_bytes;

  // Port-based candidate evidence (HTTPS cannot be string-matched).
  if (tcp) {
    if (src_port == 443) src_info.flags |= kCandidate443;
    if (dst_port == 443) dst_info.flags |= kCandidate443;
    if (src_port == 1935) src_info.flags |= kSeenRtmp1935;
    if (dst_port == 1935) dst_info.flags |= kSeenRtmp1935;
  }

  switch (indication) {
    case HttpIndication::kNone:
      return;
    case HttpIndication::kRequest: {
      dst_info.flags |= kSeenHttpServer;
      if (dst_port == 8080)
        dst_info.flags |= kSeenPort8080;
      else
        dst_info.flags |= kSeenPort80;
      src_info.flags |= kSeenHttpClient;
      if (!host.empty()) note_host(dst, host, seq);
      return;
    }
    case HttpIndication::kResponse: {
      src_info.flags |= kSeenHttpServer;
      if (src_port == 8080)
        src_info.flags |= kSeenPort8080;
      else
        src_info.flags |= kSeenPort80;
      dst_info.flags |= kSeenHttpClient;
      if (!host.empty()) note_host(src, host, seq);
      return;
    }
    case HttpIndication::kHeaderOnly: {
      // Direction unknown; fall back to the conventional server ports.
      const bool src_serverish =
          src_port == 80 || src_port == 8080 || src_port == 443;
      const bool dst_serverish =
          dst_port == 80 || dst_port == 8080 || dst_port == 443;
      if (src_serverish && !dst_serverish) {
        src_info.flags |= kSeenHttpServer | (src_port == 8080 ? kSeenPort8080
                                                              : kSeenPort80);
        dst_info.flags |= kSeenHttpClient;
      } else if (dst_serverish && !src_serverish) {
        dst_info.flags |= kSeenHttpServer | (dst_port == 8080 ? kSeenPort8080
                                                              : kSeenPort80);
        src_info.flags |= kSeenHttpClient;
      }
      return;
    }
  }
}

void TrafficDissector::ingest(std::span<const PeeringSample> batch) {
  // Far enough ahead that the prefetched lines arrive before use, close
  // enough that they are not evicted again in between.
  constexpr std::size_t kLookahead = 8;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i + kLookahead < batch.size()) {
      const sflow::ParsedFrame& ahead = batch[i + kLookahead].frame;
      activity_.prefetch(ahead.ip->src);
      activity_.prefetch(ahead.ip->dst);
    }
    ingest(batch[i]);
  }
}

void TrafficDissector::ingest(const FrameBatch& batch) {
  const std::size_t n = batch.size();
  const net::Ipv4Addr* src = batch.src();
  const net::Ipv4Addr* dst = batch.dst();
  const std::uint64_t* bytes = batch.bytes();
  const std::uint64_t* seq = batch.seq();
  const std::uint8_t* indication = batch.indication();
  const std::string_view* host = batch.host();

  // Phase-split form (DESIGN.md §14), equivalent to per-sample
  // ingest_fields in index order because every per-IP update is an OR
  // or an add (both commute) and the host pass preserves sample order:
  //   A. lane-wise evidence bytes out of the SoA port/transport/
  //      indication arrays (LaneFlags, SIMD-dispatched) — all of the
  //      sample's data-dependent branching, hoisted out of the loop
  //      that touches the tables;
  //   B. one branchless interleaved probe stream over the activity
  //      table, src and dst per sample, prefetched kLookahead ahead;
  //   C. Host-header evidence in sample order (note_host's bounded-set
  //      eviction is order-sensitive, so this order is the contract).
  constexpr std::size_t kChunk = 512;
  constexpr std::size_t kLookahead = 8;
  std::uint8_t src_flags[kChunk];
  std::uint8_t dst_flags[kChunk];

  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t m = std::min(kChunk, n - base);
    LaneFlags::compute(batch.src_port() + base, batch.dst_port() + base,
                       batch.tcp() + base, indication + base, m, src_flags,
                       dst_flags);
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t ahead = base + i + kLookahead;
      if (ahead < n) {
        activity_.prefetch(src[ahead]);
        activity_.prefetch(dst[ahead]);
      }
      const std::size_t at = base + i;
      IpActivity& src_info = activity_[src[at]];
      src_info.samples += 1;
      src_info.bytes += bytes[at];
      src_info.flags |= src_flags[i];
      IpActivity& dst_info = activity_[dst[at]];
      dst_info.samples += 1;
      dst_info.bytes += bytes[at];
      dst_info.flags |= dst_flags[i];
      total_bytes_ += bytes[at];
    }
    for (std::size_t i = base; i < base + m; ++i) {
      if (host[i].empty()) continue;
      const auto ind = static_cast<HttpIndication>(indication[i]);
      if (ind == HttpIndication::kRequest)
        note_host(dst[i], host[i], seq[i]);
      else if (ind == HttpIndication::kResponse)
        note_host(src[i], host[i], seq[i]);
    }
  }
}

void TrafficDissector::confirm_https(net::Ipv4Addr addr) {
  activity_[addr].flags |= kConfirmedHttps;
}

void TrafficDissector::merge(TrafficDissector&& other) {
  for (const auto& [addr, info] : other.activity_) {
    IpActivity& mine = activity_[addr];
    mine.samples += info.samples;
    mine.bytes += info.bytes;
    mine.flags |= info.flags;
  }
  for (auto& [addr, hosts] : other.hosts_) {
    for (const auto& seen : hosts)
      note_host(addr, seen.name.view(), seen.first_seq);
  }
  total_bytes_ += other.total_bytes_;
  other.activity_.clear();
  other.hosts_.clear();
  other.total_bytes_ = 0;
}

std::vector<std::string> TrafficDissector::hosts_of(net::Ipv4Addr addr) const {
  const auto it = hosts_.find(addr);
  if (it == hosts_.end()) return {};
  std::vector<HostObservation> ordered = it->second;
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    return std::tie(a.first_seq, a.name) < std::tie(b.first_seq, b.name);
  });
  std::vector<std::string> out;
  out.reserve(ordered.size());
  for (const auto& seen : ordered) out.push_back(seen.name.str());
  return out;
}

std::vector<net::Ipv4Addr> TrafficDissector::https_candidates() const {
  std::vector<net::Ipv4Addr> out;
  for (const auto& [addr, info] : activity_) {
    if ((info.flags & kCandidate443) != 0) out.push_back(addr);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<net::Ipv4Addr> TrafficDissector::web_servers() const {
  std::vector<net::Ipv4Addr> out;
  for (const auto& [addr, info] : activity_) {
    if (info.web_server()) out.push_back(addr);
  }
  std::sort(out.begin(), out.end());
  return out;
}

DissectionSummary TrafficDissector::summarize() const {
  DissectionSummary s;
  s.unique_ips = activity_.size();
  s.total_bytes = static_cast<double>(total_bytes_);
  std::uint64_t dual_role_bytes = 0;
  for (const auto& [addr, info] : activity_) {
    if (info.http_server()) ++s.http_server_ips;
    if ((info.flags & kCandidate443) != 0) ++s.https_candidate_ips;
    if (info.https_server()) ++s.https_server_ips;
    if (info.web_server()) ++s.web_server_ips;
    if (info.client()) ++s.client_ips;
    if (info.web_server() && info.client()) {
      ++s.dual_role_ips;
      dual_role_bytes += info.bytes;
    }
    if (info.multi_purpose()) ++s.multi_purpose_ips;
  }
  s.dual_role_server_bytes = static_cast<double>(dual_role_bytes);
  return s;
}

}  // namespace ixp::classify
