// FrameBatch — structure-of-arrays staging of peering survivors.
//
// The staging step derives each surviving sample's hot fields exactly
// once, at filter time: addresses, ports, transport, expanded bytes,
// sequence number — and the HTTP string match, run here while the
// payload is still hot in cache from frame parsing. The dissector's
// batch pass then streams index-aligned parallel arrays (~50 contiguous
// bytes per sample instead of re-walking a ~130-byte ParsedFrame with
// its optional transport headers and re-reading 128 payload bytes) and
// spends itself purely on evidence-table updates, software-prefetching
// the table slots of upcoming samples.
//
// Host views alias the FlowSample buffers the batch was filtered from:
// a FrameBatch must be drained (ingested) before those samples go away.
// WeekShard::observe_batch owns that lifetime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "classify/http_matcher.hpp"
#include "classify/peering_filter.hpp"
#include "net/ipv4.hpp"

namespace ixp::classify {

class FrameBatch {
 public:
  /// Appends one filter survivor (running the HTTP match on its
  /// payload); `sample.seq` must already be set.
  void push(const PeeringSample& sample) {
    const sflow::ParsedFrame& frame = sample.frame;
    src_.push_back(frame.ip->src);
    dst_.push_back(frame.ip->dst);
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    bool tcp = false;
    if (frame.is_tcp()) {
      src_port = frame.tcp->src_port;
      dst_port = frame.tcp->dst_port;
      tcp = true;
    } else if (frame.is_udp()) {
      src_port = frame.udp->src_port;
      dst_port = frame.udp->dst_port;
    }
    src_port_.push_back(src_port);
    dst_port_.push_back(dst_port);
    tcp_.push_back(tcp ? 1 : 0);
    bytes_.push_back(sample.expanded_bytes);
    seq_.push_back(sample.seq);

    HttpMatch match;
    if (tcp && !frame.payload.empty()) match = HttpMatcher::match(frame.payload);
    indication_.push_back(static_cast<std::uint8_t>(match.indication));
    host_.push_back(match.host);
  }

  void clear() noexcept {
    src_.clear();
    dst_.clear();
    src_port_.clear();
    dst_port_.clear();
    tcp_.clear();
    bytes_.clear();
    seq_.clear();
    indication_.clear();
    host_.clear();
  }

  void reserve(std::size_t n) {
    src_.reserve(n);
    dst_.reserve(n);
    src_port_.reserve(n);
    dst_port_.reserve(n);
    tcp_.reserve(n);
    bytes_.reserve(n);
    seq_.reserve(n);
    indication_.reserve(n);
    host_.reserve(n);
  }

  [[nodiscard]] std::size_t size() const noexcept { return src_.size(); }
  [[nodiscard]] bool empty() const noexcept { return src_.empty(); }

  // Parallel arrays, index-aligned across all accessors.
  [[nodiscard]] const net::Ipv4Addr* src() const noexcept { return src_.data(); }
  [[nodiscard]] const net::Ipv4Addr* dst() const noexcept { return dst_.data(); }
  [[nodiscard]] const std::uint16_t* src_port() const noexcept {
    return src_port_.data();
  }
  [[nodiscard]] const std::uint16_t* dst_port() const noexcept {
    return dst_port_.data();
  }
  [[nodiscard]] const std::uint8_t* tcp() const noexcept { return tcp_.data(); }
  [[nodiscard]] const std::uint64_t* bytes() const noexcept {
    return bytes_.data();
  }
  [[nodiscard]] const std::uint64_t* seq() const noexcept { return seq_.data(); }
  /// HttpIndication per sample, stored as its underlying byte.
  [[nodiscard]] const std::uint8_t* indication() const noexcept {
    return indication_.data();
  }
  /// Host header views (empty = none); alias the source sample buffers.
  [[nodiscard]] const std::string_view* host() const noexcept {
    return host_.data();
  }

 private:
  std::vector<net::Ipv4Addr> src_;
  std::vector<net::Ipv4Addr> dst_;
  std::vector<std::uint16_t> src_port_;
  std::vector<std::uint16_t> dst_port_;
  std::vector<std::uint8_t> tcp_;
  std::vector<std::uint64_t> bytes_;
  std::vector<std::uint64_t> seq_;
  std::vector<std::uint8_t> indication_;
  std::vector<std::string_view> host_;
};

}  // namespace ixp::classify
