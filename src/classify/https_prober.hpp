// HTTPS server identification via active certificate crawling (§2.2.2).
//
// Port-443 traffic alone is not proof of HTTPS ("TCP port 443 is commonly
// used to circumvent firewalls... e.g., SSH servers or VPNs"). The prober
// crawls every candidate IP for an X.509 chain several times and keeps
// only IPs whose chains pass all six checks of the ChainValidator,
// including cross-fetch stability.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "net/ipv4.hpp"
#include "x509/validator.hpp"

namespace ixp::classify {

/// Active measurement primitive: fetch up to `times` certificate chains
/// from an IP. An empty vector means nothing listened; an entry with an
/// empty chain means something answered without X.509 material.
using ChainFetcher = std::function<std::vector<x509::CertificateChain>(
    net::Ipv4Addr addr, int times)>;

/// The paper's identification funnel: ~1.5M candidates -> ~500K respond
/// -> ~250K pass all checks (week 45). `early_exits` counts candidates
/// dismissed by the cheap liveness fetch before the full stability sweep
/// (the ~1M dead candidates dominate the crawl, so this is the population
/// the short-circuit saves fetches on).
struct ProbeFunnel {
  std::size_t candidates = 0;
  std::size_t responded = 0;
  std::size_t confirmed = 0;
  std::size_t early_exits = 0;
};

class HttpsProber {
 public:
  HttpsProber(const x509::RootStore& roots, const dns::PublicSuffixList& psl,
              int fetches_per_ip = 3)
      : validator_(roots, psl), fetches_(fetches_per_ip) {}

  /// Probes every candidate; returns the confirmed HTTPS server IPs.
  [[nodiscard]] std::vector<net::Ipv4Addr> probe(
      std::span<const net::Ipv4Addr> candidates, const ChainFetcher& fetch,
      ProbeFunnel& funnel) const;

  /// Single-IP variant; returns true when confirmed.
  [[nodiscard]] bool probe_one(net::Ipv4Addr addr,
                               const ChainFetcher& fetch) const;

  /// Attaches a registrable-domain memo shared across the probe run (see
  /// x509::DomainCache). Non-owning.
  void set_domain_cache(x509::DomainCache* cache) noexcept {
    validator_.set_domain_cache(cache);
  }

 private:
  x509::ChainValidator validator_;
  int fetches_;
};

}  // namespace ixp::classify
