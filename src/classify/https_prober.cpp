#include "classify/https_prober.hpp"

namespace ixp::classify {

namespace {

/// The full stability sweep for one responder. `fetched` holds
/// `fetches_per_ip` chains; timestamps spread across the probing window
/// ("we perform the active measurements several times and check for
/// changes").
bool sweep_confirms(const x509::ChainValidator& validator,
                    std::span<const x509::CertificateChain> fetched) {
  std::vector<x509::Timestamp> times;
  times.reserve(fetched.size());
  for (std::size_t i = 0; i < fetched.size(); ++i)
    times.push_back(static_cast<x509::Timestamp>(100 + 50 * i));
  return validator.validate_stable(fetched, times).ok;
}

}  // namespace

bool HttpsProber::probe_one(net::Ipv4Addr addr,
                            const ChainFetcher& fetch) const {
  // Liveness short-circuit: one cheap fetch decides whether anything
  // listens before the full stability sweep is paid. ~2/3 of candidate
  // IPs are dead, so this saves fetches_per_ip - 1 fetches on most of
  // the population.
  std::vector<x509::CertificateChain> fetched = fetch(addr, 1);
  if (fetched.empty()) return false;
  if (fetches_ > 1) {
    // Full sweep, refetched from scratch: verdicts must not depend on
    // whether the liveness probe ran (flaky fetchers may answer
    // differently per call).
    fetched = fetch(addr, fetches_);
    if (fetched.empty()) return false;
  }
  return sweep_confirms(validator_, fetched);
}

std::vector<net::Ipv4Addr> HttpsProber::probe(
    std::span<const net::Ipv4Addr> candidates, const ChainFetcher& fetch,
    ProbeFunnel& funnel) const {
  std::vector<net::Ipv4Addr> confirmed;
  funnel.candidates += candidates.size();
  for (const net::Ipv4Addr addr : candidates) {
    std::vector<x509::CertificateChain> fetched = fetch(addr, 1);
    if (fetched.empty()) {
      // Nothing listened: early exit before the stability sweep.
      ++funnel.early_exits;
      continue;
    }
    if (fetches_ > 1) {
      fetched = fetch(addr, fetches_);
      if (fetched.empty()) continue;  // vanished mid-probe: not a responder
    }
    ++funnel.responded;
    if (sweep_confirms(validator_, fetched)) {
      ++funnel.confirmed;
      confirmed.push_back(addr);
    }
  }
  return confirmed;
}

}  // namespace ixp::classify
