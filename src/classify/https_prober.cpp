#include "classify/https_prober.hpp"

namespace ixp::classify {

bool HttpsProber::probe_one(net::Ipv4Addr addr,
                            const ChainFetcher& fetch) const {
  const std::vector<x509::CertificateChain> fetched = fetch(addr, fetches_);
  if (fetched.empty()) return false;
  // Spread the fetch timestamps across the probing window ("we perform
  // the active measurements several times and check for changes").
  std::vector<x509::Timestamp> times;
  times.reserve(fetched.size());
  for (std::size_t i = 0; i < fetched.size(); ++i)
    times.push_back(static_cast<x509::Timestamp>(100 + 50 * i));
  return validator_.validate_stable(fetched, times).ok;
}

std::vector<net::Ipv4Addr> HttpsProber::probe(
    std::span<const net::Ipv4Addr> candidates, const ChainFetcher& fetch,
    ProbeFunnel& funnel) const {
  std::vector<net::Ipv4Addr> confirmed;
  funnel.candidates += candidates.size();
  for (const net::Ipv4Addr addr : candidates) {
    const std::vector<x509::CertificateChain> fetched = fetch(addr, fetches_);
    if (fetched.empty()) continue;
    ++funnel.responded;
    std::vector<x509::Timestamp> times;
    times.reserve(fetched.size());
    for (std::size_t i = 0; i < fetched.size(); ++i)
      times.push_back(static_cast<x509::Timestamp>(100 + 50 * i));
    if (validator_.validate_stable(fetched, times).ok) {
      ++funnel.confirmed;
      confirmed.push_back(addr);
    }
  }
  return confirmed;
}

}  // namespace ixp::classify
