#include "classify/http_matcher.hpp"

#include <array>
#include <cctype>

namespace ixp::classify {

namespace {

constexpr std::array<std::string_view, 8> kMethods{
    "GET ", "HEAD ", "POST ", "PUT ", "DELETE ", "OPTIONS ", "TRACE ", "CONNECT "};

// Header field words per the RFCs / W3C specs the paper cites.
constexpr std::array<std::string_view, 10> kHeaderFields{
    "Host:", "Server:", "Content-Type:", "Content-Length:", "User-Agent:",
    "Accept:", "Set-Cookie:", "Cache-Control:", "Location:",
    "Access-Control-Allow-Methods:"};

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

/// True at byte `b` for every byte that starts one of `words`. Each
/// starts_with probe costs a library memcmp; on the per-sample hot path
/// that is the dominant cost for non-HTTP payloads, so gate the whole
/// probe loop behind a single table lookup on the first byte.
template <std::size_t N>
constexpr std::array<bool, 256> first_byte_table(
    const std::array<std::string_view, N>& words) {
  std::array<bool, 256> table{};
  for (const std::string_view word : words)
    table[static_cast<unsigned char>(word.front())] = true;
  return table;
}

constexpr auto kMethodFirst = first_byte_table(kMethods);
constexpr auto kFieldFirst = first_byte_table(kHeaderFields);

/// True when `line` (a request's first line) ends in HTTP/1.0 or HTTP/1.1.
bool request_line_has_version(std::string_view line) {
  const std::size_t at = line.rfind("HTTP/1.");
  if (at == std::string_view::npos) return false;
  if (at + 8 > line.size()) return false;
  const char minor = line[at + 7];
  return minor == '0' || minor == '1';
}

std::string_view first_line(std::string_view text) {
  const std::size_t eol = text.find("\r\n");
  return eol == std::string_view::npos ? text : text.substr(0, eol);
}

/// Extracts the value following "Host:" up to CRLF (trimmed). Returns a
/// view into `text` — no allocation; empty view when the field is absent
/// or its value empty.
std::string_view extract_header(std::string_view text, std::string_view field) {
  const std::size_t at = text.find(field);
  if (at == std::string_view::npos) return {};
  std::size_t begin = at + field.size();
  while (begin < text.size() && text[begin] == ' ') ++begin;
  std::size_t end = begin;
  while (end < text.size() && text[end] != '\r' && text[end] != '\n') ++end;
  // A value truncated by the capture boundary is unusable only if empty.
  return text.substr(begin, end - begin);
}

}  // namespace

HttpMatch HttpMatcher::match(std::string_view payload) {
  HttpMatch result;
  if (payload.empty()) return result;

  const std::string_view line = first_line(payload);

  // Pattern 1a: request line "METHOD SP path SP HTTP/1.x". (line[0], when
  // it exists, equals payload[0]; an empty line can't start a method.)
  if (kMethodFirst[static_cast<unsigned char>(payload[0])]) {
    for (const std::string_view method : kMethods) {
      if (!starts_with(line, method)) continue;
      if (!request_line_has_version(line)) break;  // e.g. RTSP or truncated
      result.indication = HttpIndication::kRequest;
      const std::size_t path_begin = method.size();
      const std::size_t path_end = line.find(' ', path_begin);
      if (path_end != std::string_view::npos && path_end > path_begin)
        result.path = line.substr(path_begin, path_end - path_begin);
      result.host = extract_header(payload, "Host:");
      return result;
    }
  }

  // Pattern 1b: response status line "HTTP/1.x NNN".
  if (starts_with(line, "HTTP/1.") && line.size() >= 12 &&
      (line[7] == '0' || line[7] == '1') && line[8] == ' ' &&
      std::isdigit(static_cast<unsigned char>(line[9])) &&
      std::isdigit(static_cast<unsigned char>(line[10])) &&
      std::isdigit(static_cast<unsigned char>(line[11]))) {
    result.indication = HttpIndication::kResponse;
    result.host = extract_header(payload, "Host:");
    return result;
  }

  // Pattern 2: header field words at the start of a line, anywhere in the
  // snippet (mid-connection packets of a header that spans frames; the
  // begin-of-line anchor avoids matching random payload bytes). One walk
  // over line starts rather than one substring search per field word: a
  // non-HTTP capture has almost no '\n' bytes, so this decides "miss" in
  // a handful of prefix probes instead of ten scans of the payload.
  std::size_t pos = 0;
  while (true) {
    if (pos < payload.size() &&
        kFieldFirst[static_cast<unsigned char>(payload[pos])]) {
      const std::string_view rest = payload.substr(pos);
      for (const std::string_view field : kHeaderFields) {
        if (starts_with(rest, field)) {
          result.indication = HttpIndication::kHeaderOnly;
          result.host = extract_header(payload, "Host:");
          return result;
        }
      }
    }
    const std::size_t nl = payload.find('\n', pos);
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  return result;
}

HttpMatch HttpMatcher::match(std::span<const std::byte> payload) {
  return match(std::string_view{
      reinterpret_cast<const char*>(payload.data()), payload.size()});
}

}  // namespace ixp::classify
