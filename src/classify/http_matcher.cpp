#include "classify/http_matcher.hpp"

#include "classify/http_match_impl.hpp"
#include "util/cpu_features.hpp"

namespace ixp::classify {

HttpMatch HttpMatcher::match(std::string_view payload) {
#ifdef IXPSCOPE_HTTP_X86
  const util::SimdLevel level = util::CpuFeatures::active();
  if (level >= util::SimdLevel::kAvx2) return detail::match_avx2(payload);
  if (level >= util::SimdLevel::kSse2)
    return detail::match_impl<detail::Sse2Policy>(payload);
#endif
  return detail::match_impl<detail::ScalarPolicy>(payload);
}

HttpMatch HttpMatcher::match_scalar(std::string_view payload) {
  return detail::match_impl<detail::ScalarPolicy>(payload);
}

HttpMatch HttpMatcher::match(std::span<const std::byte> payload) {
  return match(std::string_view{
      reinterpret_cast<const char*>(payload.data()), payload.size()});
}

HttpMatch HttpMatcher::match_scalar(std::span<const std::byte> payload) {
  return match_scalar(std::string_view{
      reinterpret_cast<const char*>(payload.data()), payload.size()});
}

}  // namespace ixp::classify
