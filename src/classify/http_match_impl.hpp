// Internal: the HTTP matcher algorithm, parameterized by a scanning
// policy (DESIGN.md §14). One template — match_impl<Policy> — holds the
// entire decision structure (request line, response line, header-field
// words, anchored Host extraction); policies supply only the three
// primitives the hot loops spend their time in:
//
//   find_lf(text, from)        next '\n' at or after `from`
//   find_crlf(text)            first "\r\n" pair
//   token_at(text, pos, tok)   does `tok` occur at exactly `pos`?
//
// ScalarPolicy implements them with libc (memchr/memcmp — the portable
// SWAR-or-better fallback) and doubles as the differential oracle behind
// HttpMatcher::match_scalar. Sse2Policy (this header, x86 baseline) and
// the AVX2 policy (http_matcher_avx2.cpp, own TU compiled with -mavx2)
// use 16/32-byte compares against pre-padded token images. No policy
// reads past either the payload or a token: token images are padded to
// 32 bytes at compile time, and payload tails shorter than a vector are
// handed to memcmp.
//
// This header is internal to the classify library and its tests; the
// public surface stays in http_matcher.hpp.
#pragma once

#include <array>
#include <cctype>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "classify/http_matcher.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <emmintrin.h>
#define IXPSCOPE_HTTP_X86 1
#endif

namespace ixp::classify::detail {

constexpr std::array<std::string_view, 8> kMethods{
    "GET ", "HEAD ", "POST ", "PUT ", "DELETE ", "OPTIONS ", "TRACE ", "CONNECT "};

// Header field words per the RFCs / W3C specs the paper cites.
constexpr std::array<std::string_view, 10> kHeaderFields{
    "Host:", "Server:", "Content-Type:", "Content-Length:", "User-Agent:",
    "Accept:", "Set-Cookie:", "Cache-Control:", "Location:",
    "Access-Control-Allow-Methods:"};

/// A token padded to vector width, with the byte-compare mask that
/// selects its real length. Longest token today is 29 bytes
/// ("Access-Control-Allow-Methods:"), so 32 bytes hold everything and a
/// full-width load of `bytes` can never overread the image.
struct PaddedToken {
  alignas(32) char bytes[32];
  std::uint32_t mask;
  std::uint32_t len;
};

constexpr PaddedToken make_token(std::string_view text) {
  PaddedToken token{{}, 0, 0};
  for (std::size_t i = 0; i < text.size(); ++i) token.bytes[i] = text[i];
  token.len = static_cast<std::uint32_t>(text.size());
  token.mask = text.size() >= 32 ? 0xFFFFFFFFu
                                 : (1u << text.size()) - 1u;
  return token;
}

template <std::size_t N>
constexpr std::array<PaddedToken, N> make_tokens(
    const std::array<std::string_view, N>& words) {
  std::array<PaddedToken, N> tokens{};
  for (std::size_t i = 0; i < N; ++i) tokens[i] = make_token(words[i]);
  return tokens;
}

inline constexpr auto kMethodTokens = make_tokens(kMethods);
inline constexpr auto kFieldTokens = make_tokens(kHeaderFields);
inline constexpr PaddedToken kHostToken = make_token("Host:");
inline constexpr PaddedToken kVersionToken = make_token("HTTP/1.");

/// True at byte `b` for every byte that starts one of `words`: gates the
/// token-probe loops behind one table load per line start.
template <std::size_t N>
constexpr std::array<bool, 256> first_byte_table(
    const std::array<std::string_view, N>& words) {
  std::array<bool, 256> table{};
  for (const std::string_view word : words)
    table[static_cast<unsigned char>(word.front())] = true;
  return table;
}

inline constexpr auto kMethodFirst = first_byte_table(kMethods);
inline constexpr auto kFieldFirst = first_byte_table(kHeaderFields);

/// True when `line` (a request's first line) ends in HTTP/1.0 or
/// HTTP/1.1. Runs only on lines that already matched a method word, so
/// it stays scalar.
inline bool request_line_has_version(std::string_view line) {
  const std::size_t at = line.rfind("HTTP/1.");
  if (at == std::string_view::npos) return false;
  if (at + 8 > line.size()) return false;
  const char minor = line[at + 7];
  return minor == '0' || minor == '1';
}

/// Portable policy and differential oracle. libc memchr/memcmp already
/// run word-at-a-time (SWAR) or better on every libc this builds
/// against, so this is also the no-SIMD fallback tier.
struct ScalarPolicy {
  static std::size_t find_lf(std::string_view text, std::size_t from) noexcept {
    return text.find('\n', from);
  }
  static std::size_t find_crlf(std::string_view text) noexcept {
    return text.find("\r\n");
  }
  static bool token_at(std::string_view text, std::size_t pos,
                       const PaddedToken& token) noexcept {
    return pos + token.len <= text.size() &&
           std::memcmp(text.data() + pos, token.bytes, token.len) == 0;
  }
};

#ifdef IXPSCOPE_HTTP_X86

/// 16-byte policy on the x86-64 baseline ISA (SSE2 needs no target
/// attribute, so it can live in this shared header).
struct Sse2Policy {
  static std::size_t find_lf(std::string_view text, std::size_t from) noexcept {
    const char* p = text.data();
    const std::size_t n = text.size();
    const __m128i lf = _mm_set1_epi8('\n');
    std::size_t i = from;
    for (; i + 16 <= n; i += 16) {
      const int found = _mm_movemask_epi8(_mm_cmpeq_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i)), lf));
      if (found != 0)
        return i + static_cast<std::size_t>(__builtin_ctz(
                       static_cast<unsigned>(found)));
    }
    for (; i < n; ++i)
      if (p[i] == '\n') return i;
    return std::string_view::npos;
  }

  static std::size_t find_crlf(std::string_view text) noexcept {
    const char* p = text.data();
    const std::size_t n = text.size();
    const __m128i cr = _mm_set1_epi8('\r');
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
      // Candidate '\r' bytes; the '\n' check reads the next byte
      // directly, which also handles a pair straddling the block edge.
      unsigned found = static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i)), cr)));
      while (found != 0) {
        const std::size_t at = i + static_cast<std::size_t>(__builtin_ctz(found));
        if (at + 1 < n && p[at + 1] == '\n') return at;
        found &= found - 1;
      }
    }
    for (; i + 1 < n; ++i)
      if (p[i] == '\r' && p[i + 1] == '\n') return i;
    return std::string_view::npos;
  }

  static bool token_at(std::string_view text, std::size_t pos,
                       const PaddedToken& token) noexcept {
    if (pos + token.len > text.size()) return false;
    if (pos + 16 > text.size())  // vector load would overread the payload
      return std::memcmp(text.data() + pos, token.bytes, token.len) == 0;
    const unsigned eq = static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(text.data() + pos)),
        _mm_load_si128(reinterpret_cast<const __m128i*>(token.bytes)))));
    const unsigned head = token.mask & 0xFFFFu;
    if ((eq & head) != head) return false;
    if (token.len <= 16) return true;
    const unsigned tail = token.mask >> 16;
    if (pos + 32 > text.size())
      return std::memcmp(text.data() + pos + 16, token.bytes + 16,
                         token.len - 16) == 0;
    const unsigned eq2 = static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(
        _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(text.data() + pos + 16)),
        _mm_load_si128(reinterpret_cast<const __m128i*>(token.bytes + 16)))));
    return (eq2 & tail) == tail;
  }
};

/// AVX2 entry point, defined in http_matcher_avx2.cpp (its own TU so it
/// can be compiled with -mavx2 and fully inline the 32-byte policy).
/// Falls back to the SSE2 form when that TU was built without AVX2.
HttpMatch match_avx2(std::string_view payload) noexcept;

#endif  // IXPSCOPE_HTTP_X86

/// The anchored Host extraction: the field must sit at the payload
/// start or immediately after a line break. (An unanchored substring
/// search would lift "Host:" out of the middle of a URL or cookie —
/// the pre-§14 matcher did exactly that.)
template <typename Policy>
std::string_view extract_host(std::string_view text) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    if (Policy::token_at(text, pos, kHostToken)) {
      std::size_t begin = pos + kHostToken.len;
      while (begin < text.size() && text[begin] == ' ') ++begin;
      std::size_t end = begin;
      while (end < text.size() && text[end] != '\r' && text[end] != '\n') ++end;
      // A value truncated by the capture boundary is unusable only if
      // empty.
      return text.substr(begin, end - begin);
    }
    const std::size_t nl = Policy::find_lf(text, pos);
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  return {};
}

template <typename Policy>
HttpMatch match_impl(std::string_view payload) {
  HttpMatch result;
  if (payload.empty()) return result;

  const std::size_t eol = Policy::find_crlf(payload);
  const std::string_view line =
      eol == std::string_view::npos ? payload : payload.substr(0, eol);

  // Pattern 1a: request line "METHOD SP path SP HTTP/1.x". (line[0],
  // when it exists, equals payload[0]; an empty line can't start a
  // method.)
  if (kMethodFirst[static_cast<unsigned char>(payload[0])]) {
    for (std::size_t i = 0; i < kMethodTokens.size(); ++i) {
      const PaddedToken& method = kMethodTokens[i];
      if (!Policy::token_at(line, 0, method)) continue;
      if (!request_line_has_version(line)) break;  // e.g. RTSP or truncated
      result.indication = HttpIndication::kRequest;
      const std::size_t path_begin = method.len;
      const std::size_t path_end = line.find(' ', path_begin);
      if (path_end != std::string_view::npos && path_end > path_begin)
        result.path = line.substr(path_begin, path_end - path_begin);
      result.host = extract_host<Policy>(payload);
      return result;
    }
  }

  // Pattern 1b: response status line "HTTP/1.x NNN".
  if (Policy::token_at(line, 0, kVersionToken) && line.size() >= 12 &&
      (line[7] == '0' || line[7] == '1') && line[8] == ' ' &&
      std::isdigit(static_cast<unsigned char>(line[9])) &&
      std::isdigit(static_cast<unsigned char>(line[10])) &&
      std::isdigit(static_cast<unsigned char>(line[11]))) {
    result.indication = HttpIndication::kResponse;
    result.host = extract_host<Policy>(payload);
    return result;
  }

  // Pattern 2: header field words at the start of a line, anywhere in
  // the snippet (mid-connection packets of a header that spans frames;
  // the begin-of-line anchor avoids matching random payload bytes). One
  // walk over line starts rather than one substring search per field
  // word: a non-HTTP capture has almost no '\n' bytes, so this decides
  // "miss" in a handful of prefix probes instead of ten scans of the
  // payload.
  std::size_t pos = 0;
  while (true) {
    if (pos < payload.size() &&
        kFieldFirst[static_cast<unsigned char>(payload[pos])]) {
      for (std::size_t i = 0; i < kFieldTokens.size(); ++i) {
        if (Policy::token_at(payload, pos, kFieldTokens[i])) {
          result.indication = HttpIndication::kHeaderOnly;
          result.host = extract_host<Policy>(payload);
          return result;
        }
      }
    }
    const std::size_t nl = Policy::find_lf(payload, pos);
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  return result;
}

}  // namespace ixp::classify::detail
