#include "classify/metadata.hpp"

#include <algorithm>
#include <array>

namespace ixp::classify {

bool MetadataHarvester::is_rir_authority(const dns::DnsName& name) {
  static constexpr std::array<std::string_view, 5> kRirs{
      "ripe.net", "arin.net", "apnic.net", "lacnic.net", "afrinic.net"};
  for (const std::string_view rir : kRirs) {
    if (name.text() == rir) return true;
  }
  return false;
}

ServerMetadata MetadataHarvester::harvest(
    net::Ipv4Addr addr, std::span<const std::string> hosts,
    const x509::CertificateChain* chain) const {
  ServerMetadata md;
  md.addr = addr;

  // DNS: hostname via reverse lookup, authority via iterative SOA (or the
  // reverse SOA when no hostname exists).
  md.hostname = db_->reverse(addr);
  if (md.hostname) {
    if (const auto soa = db_->soa_of(*md.hostname))
      md.soa_authority = soa->authority;
  }
  if (!md.soa_authority) {
    if (const auto authority = db_->reverse_soa(addr))
      md.soa_authority = authority;
  }
  // Cleaning: RIR authorities carry no organizational information.
  if (md.soa_authority && is_rir_authority(*md.soa_authority))
    md.soa_authority.reset();

  // URIs: parse and validate each observed Host header; keep only hosts
  // with a proper registrable domain (drops IP literals, single labels,
  // unknown TLDs).
  for (const std::string& host : hosts) {
    const auto uri = dns::Uri::parse(host);
    if (!uri) continue;
    if (!uri->authority(*psl_)) continue;
    if (std::find(md.uris.begin(), md.uris.end(), *uri) == md.uris.end())
      md.uris.push_back(*uri);
  }

  // Certificates: names covered by the validated chain's leaf.
  if (chain != nullptr && !chain->empty())
    md.cert_names = chain->leaf().covered_names();

  return md;
}

}  // namespace ixp::classify
