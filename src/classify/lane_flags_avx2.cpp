// The 32-wide LaneFlags tier. This TU is compiled with -mavx2 (see
// src/classify/CMakeLists.txt) so the 256-bit forms inline;
// LaneFlags::compute only routes here after util::CpuFeatures reported
// a CPU and OS that support AVX2. If the toolchain builds this file
// without AVX2 (non-x86, or a compiler without -mavx2), lane_flags_avx2
// degrades to the SSE2 form so the symbol always links.
#include "classify/lane_flags.hpp"

#include "classify/dissector.hpp"
#include "classify/http_matcher.hpp"

#ifdef __AVX2__

#include <immintrin.h>

namespace ixp::classify::detail {
namespace {

constexpr std::uint8_t kReq = static_cast<std::uint8_t>(HttpIndication::kRequest);
constexpr std::uint8_t kResp =
    static_cast<std::uint8_t>(HttpIndication::kResponse);
constexpr std::uint8_t kHdr =
    static_cast<std::uint8_t>(HttpIndication::kHeaderOnly);

/// The lane algebra of lane_flags.cpp's lane_half_sse2, verbatim in
/// 256-bit form: one 16-wide half, everything in 16-bit lanes. `t`,
/// `req`, `resp`, `hdr` are 0/0xFFFF lane masks; ports are raw.
struct LaneHalf256 {
  __m256i s;
  __m256i d;
};

inline LaneHalf256 lane_half_avx2(__m256i sp, __m256i dp, __m256i t,
                                  __m256i req, __m256i resp,
                                  __m256i hdr) noexcept {
  const __m256i e443s = _mm256_cmpeq_epi16(sp, _mm256_set1_epi16(443));
  const __m256i e443d = _mm256_cmpeq_epi16(dp, _mm256_set1_epi16(443));
  const __m256i e1935s = _mm256_cmpeq_epi16(sp, _mm256_set1_epi16(1935));
  const __m256i e1935d = _mm256_cmpeq_epi16(dp, _mm256_set1_epi16(1935));
  const __m256i e80s = _mm256_cmpeq_epi16(sp, _mm256_set1_epi16(80));
  const __m256i e80d = _mm256_cmpeq_epi16(dp, _mm256_set1_epi16(80));
  const __m256i e8080s = _mm256_cmpeq_epi16(sp, _mm256_set1_epi16(8080));
  const __m256i e8080d = _mm256_cmpeq_epi16(dp, _mm256_set1_epi16(8080));

  const __m256i ssrvish =
      _mm256_or_si256(_mm256_or_si256(e80s, e8080s), e443s);
  const __m256i dsrvish =
      _mm256_or_si256(_mm256_or_si256(e80d, e8080d), e443d);
  const __m256i hdr_s =
      _mm256_andnot_si256(dsrvish, _mm256_and_si256(hdr, ssrvish));
  const __m256i hdr_d =
      _mm256_andnot_si256(ssrvish, _mm256_and_si256(hdr, dsrvish));

  const __m256i ssrv80 = _mm256_or_si256(
      _mm256_and_si256(e8080s, _mm256_set1_epi16(kSeenPort8080)),
      _mm256_andnot_si256(e8080s, _mm256_set1_epi16(kSeenPort80)));
  const __m256i dsrv80 = _mm256_or_si256(
      _mm256_and_si256(e8080d, _mm256_set1_epi16(kSeenPort8080)),
      _mm256_andnot_si256(e8080d, _mm256_set1_epi16(kSeenPort80)));

  const __m256i port_s = _mm256_and_si256(
      t,
      _mm256_or_si256(_mm256_and_si256(e443s, _mm256_set1_epi16(kCandidate443)),
                      _mm256_and_si256(e1935s,
                                       _mm256_set1_epi16(kSeenRtmp1935))));
  const __m256i port_d = _mm256_and_si256(
      t,
      _mm256_or_si256(_mm256_and_si256(e443d, _mm256_set1_epi16(kCandidate443)),
                      _mm256_and_si256(e1935d,
                                       _mm256_set1_epi16(kSeenRtmp1935))));

  const __m256i server_s = _mm256_and_si256(
      _mm256_or_si256(resp, hdr_s),
      _mm256_or_si256(_mm256_set1_epi16(kSeenHttpServer), ssrv80));
  const __m256i server_d = _mm256_and_si256(
      _mm256_or_si256(req, hdr_d),
      _mm256_or_si256(_mm256_set1_epi16(kSeenHttpServer), dsrv80));
  const __m256i client_s = _mm256_and_si256(
      _mm256_or_si256(req, hdr_d), _mm256_set1_epi16(kSeenHttpClient));
  const __m256i client_d = _mm256_and_si256(
      _mm256_or_si256(resp, hdr_s), _mm256_set1_epi16(kSeenHttpClient));

  return {_mm256_or_si256(port_s, _mm256_or_si256(server_s, client_s)),
          _mm256_or_si256(port_d, _mm256_or_si256(server_d, client_d))};
}

/// One 16-sample half: byte inputs widened to 0/0xFFFF word masks with
/// cvtepi8_epi16 (the compares produce 0/0xFF, which sign-extends to the
/// full-lane mask), ports loaded as raw 16-wide words.
inline LaneHalf256 load_half(const std::uint16_t* sp, const std::uint16_t* dp,
                             const std::uint8_t* tcp,
                             const std::uint8_t* ind) noexcept {
  const __m128i tcp8 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tcp));
  const __m128i ind8 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(ind));
  const __m128i t8 = _mm_xor_si128(_mm_cmpeq_epi8(tcp8, _mm_setzero_si128()),
                                   _mm_set1_epi8(-1));
  const __m128i req8 = _mm_cmpeq_epi8(ind8, _mm_set1_epi8(kReq));
  const __m128i resp8 = _mm_cmpeq_epi8(ind8, _mm_set1_epi8(kResp));
  const __m128i hdr8 = _mm_cmpeq_epi8(ind8, _mm_set1_epi8(kHdr));
  return lane_half_avx2(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sp)),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dp)),
      _mm256_cvtepi8_epi16(t8), _mm256_cvtepi8_epi16(req8),
      _mm256_cvtepi8_epi16(resp8), _mm256_cvtepi8_epi16(hdr8));
}

/// packus_epi16 packs per 128-bit lane, so pack(half0, half1) lands the
/// 8-byte chunks as [0..7, 16..23, 8..15, 24..31]; permute4x64 with
/// control (0,2,1,3) = 0xD8 restores sample order. Lanes only carry
/// bits <= 0x31, so unsigned saturation is exact.
inline __m256i pack_flags(__m256i lo, __m256i hi) noexcept {
  return _mm256_permute4x64_epi64(_mm256_packus_epi16(lo, hi), 0xD8);
}

}  // namespace

void lane_flags_avx2(const std::uint16_t* src_port,
                     const std::uint16_t* dst_port, const std::uint8_t* tcp,
                     const std::uint8_t* indication, std::size_t n,
                     std::uint8_t* src_flags,
                     std::uint8_t* dst_flags) noexcept {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const LaneHalf256 lo =
        load_half(src_port + i, dst_port + i, tcp + i, indication + i);
    const LaneHalf256 hi = load_half(src_port + i + 16, dst_port + i + 16,
                                     tcp + i + 16, indication + i + 16);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(src_flags + i),
                        pack_flags(lo.s, hi.s));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst_flags + i),
                        pack_flags(lo.d, hi.d));
  }
  if (i < n)
    lane_flags_sse2(src_port + i, dst_port + i, tcp + i, indication + i, n - i,
                    src_flags + i, dst_flags + i);
}

}  // namespace ixp::classify::detail

#else  // !__AVX2__

namespace ixp::classify::detail {

void lane_flags_avx2(const std::uint16_t* src_port,
                     const std::uint16_t* dst_port, const std::uint8_t* tcp,
                     const std::uint8_t* indication, std::size_t n,
                     std::uint8_t* src_flags,
                     std::uint8_t* dst_flags) noexcept {
  lane_flags_sse2(src_port, dst_port, tcp, indication, n, src_flags, dst_flags);
}

}  // namespace ixp::classify::detail

#endif  // __AVX2__
