// Server meta-data harvesting (§2.4).
//
// For every identified server IP the pipeline gathers three kinds of
// meta-data: DNS information (PTR hostname and/or an iteratively resolved
// SOA authority), URIs recovered from the sampled payloads (Host headers),
// and names from validated X.509 certificates. The harvest is then cleaned
// ("removing non-valid URIs, SOA resource records of the RIRs such as
// ripe.net, etc."), which costs slightly under 3% of the server pool.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dns/public_suffix.hpp"
#include "dns/uri.hpp"
#include "dns/zone_db.hpp"
#include "net/ipv4.hpp"
#include "x509/certificate.hpp"

namespace ixp::classify {

struct ServerMetadata {
  net::Ipv4Addr addr;
  std::optional<dns::DnsName> hostname;       // reverse DNS
  std::optional<dns::DnsName> soa_authority;  // from hostname or reverse SOA
  std::vector<dns::Uri> uris;                 // cleaned Host headers
  std::vector<dns::DnsName> cert_names;       // subject + SANs of valid cert

  [[nodiscard]] bool has_dns() const noexcept {
    return hostname.has_value() || soa_authority.has_value();
  }
  [[nodiscard]] bool has_uri() const noexcept { return !uris.empty(); }
  [[nodiscard]] bool has_cert() const noexcept { return !cert_names.empty(); }
  [[nodiscard]] bool has_any() const noexcept {
    return has_dns() || has_uri() || has_cert();
  }
};

/// §2.4's coverage statistics over the harvested pool.
struct MetadataCoverage {
  std::size_t servers = 0;
  std::size_t with_dns = 0;
  std::size_t with_uri = 0;
  std::size_t with_cert = 0;
  std::size_t with_any = 0;
  std::size_t cleaned_out = 0;  // servers whose metadata vanished in cleaning

  void add(const ServerMetadata& md) {
    ++servers;
    if (md.has_dns()) ++with_dns;
    if (md.has_uri()) ++with_uri;
    if (md.has_cert()) ++with_cert;
    if (md.has_any()) ++with_any;
  }
};

class MetadataHarvester {
 public:
  MetadataHarvester(const dns::ZoneDatabase& db, const dns::PublicSuffixList& psl)
      : db_(&db), psl_(&psl) {}

  /// Harvests and cleans one server's metadata. `hosts` are the raw Host
  /// header strings from the dissector; `chain` the validated certificate
  /// chain (nullptr when the IP is not a confirmed HTTPS server).
  [[nodiscard]] ServerMetadata harvest(
      net::Ipv4Addr addr, std::span<const std::string> hosts,
      const x509::CertificateChain* chain) const;

  /// True for SOA authorities that carry no organizational signal (the
  /// RIRs' zones).
  [[nodiscard]] static bool is_rir_authority(const dns::DnsName& name);

 private:
  const dns::ZoneDatabase* db_;
  const dns::PublicSuffixList* psl_;
};

}  // namespace ixp::classify
