#include "gen/org_catalog.hpp"

namespace ixp::gen {

namespace {

geo::CountryCode cc(const char* code) {
  return *geo::CountryCode::parse(code);
}

OrgSpec org(const char* name, OrgKind kind, std::optional<net::Asn> asn,
            const char* country, double vis_share, double traffic_share) {
  OrgSpec spec;
  spec.name = name;
  spec.kind = kind;
  spec.home_as = asn;
  spec.home_country = cc(country);
  spec.visible_server_share = vis_share;
  spec.traffic_share = traffic_share;
  return spec;
}

}  // namespace

// Shares are fractions of the *total server universe* (visible + blind) and
// of the total weekly server traffic; the paper's week-45 absolute numbers
// divided by 1.8M servers. See DESIGN.md §"Per-experiment index" for the
// sources of each figure.
std::vector<OrgSpec> named_org_specs() {
  std::vector<OrgSpec> specs;

  {
    // Akamai, AS20940: 28K visible servers in 278 ASes; publicly ~100K
    // servers in 1K+ ASes, the delta being private clusters and far
    // regions (§3.3). 11.1% of its traffic arrives via non-Akamai links
    // (Fig. 7b). Multi-purpose HTTP+RTMP servers (§2.2.2).
    auto akamai = org("akamai", OrgKind::kCdn, net::Asn{20940}, "US", 0.0156, 0.120);
    akamai.home_as_is_member = true;
    akamai.blind_server_share = 0.040;
    akamai.visible_as_spread = 278;
    akamai.blind_as_spread = 430;
    akamai.rtmp_fraction = 0.45;
    akamai.https_fraction = 0.08;
    akamai.dual_role_fraction = 0.02;
    akamai.indirect_link_fraction = 0.111;
    specs.push_back(std::move(akamai));
  }
  {
    // Google, AS15169: 11.5K visible servers; GGC caches inside eyeballs.
    auto google = org("google", OrgKind::kContent, net::Asn{15169}, "US", 0.0064, 0.095);
    google.home_as_is_member = true;
    google.blind_server_share = 0.0055;
    google.visible_as_spread = 120;
    google.blind_as_spread = 80;
    google.https_fraction = 0.35;
    google.indirect_link_fraction = 0.06;
    specs.push_back(std::move(google));
  }
  {
    // Hetzner, AS24940 (DE): hoster, #3 by overall traffic (Table 2).
    auto hetzner = org("hetzner", OrgKind::kHoster, net::Asn{24940}, "DE", 0.0090, 0.055);
    hetzner.home_as_is_member = true;
    hetzner.tenant_capacity = 30'000;
    specs.push_back(std::move(hetzner));
  }
  {
    // VKontakte, AS47541 (RU): content, #4 by server traffic (Table 2).
    auto vk = org("vkontakte", OrgKind::kContent, net::Asn{47541}, "RU", 0.0020, 0.045);
    vk.home_as_is_member = true;
    specs.push_back(std::move(vk));
  }
  {
    auto leaseweb = org("leaseweb", OrgKind::kHoster, net::Asn{16265}, "NL", 0.0080, 0.035);
    leaseweb.home_as_is_member = true;
    leaseweb.tenant_capacity = 25'000;
    specs.push_back(std::move(leaseweb));
  }
  {
    // Limelight: CDN, multi-purpose + machine-to-machine heavy (§2.2.2).
    auto limelight = org("limelight", OrgKind::kCdn, net::Asn{22822}, "US", 0.0030, 0.030);
    limelight.home_as_is_member = true;
    limelight.visible_as_spread = 40;
    limelight.rtmp_fraction = 0.50;
    limelight.dual_role_fraction = 0.35;
    limelight.indirect_link_fraction = 0.15;
    specs.push_back(std::move(limelight));
  }
  {
    auto ovh = org("ovh", OrgKind::kHoster, net::Asn{16276}, "FR", 0.0122, 0.028);
    ovh.home_as_is_member = true;
    ovh.tenant_capacity = 50'000;
    specs.push_back(std::move(ovh));
  }
  {
    // EdgeCast: top contributor among dual server+client IPs (§2.2.2).
    auto edgecast = org("edgecast", OrgKind::kCdn, net::Asn{15133}, "US", 0.0025, 0.025);
    edgecast.home_as_is_member = true;
    edgecast.visible_as_spread = 30;
    edgecast.dual_role_fraction = 0.50;
    edgecast.indirect_link_fraction = 0.12;
    specs.push_back(std::move(edgecast));
  }
  {
    auto link11 = org("link11", OrgKind::kHoster, net::Asn{24961}, "DE", 0.0020, 0.022);
    link11.home_as_is_member = true;
    link11.tenant_capacity = 8'000;
    specs.push_back(std::move(link11));
  }
  {
    // Kartina: streamer (RU-language TV for DE audiences); RTMP-heavy.
    auto kartina = org("kartina", OrgKind::kStreamer, net::Asn{49489}, "DE", 0.0015, 0.020);
    kartina.home_as_is_member = true;
    kartina.rtmp_fraction = 0.60;
    specs.push_back(std::move(kartina));
  }
  {
    // CloudFlare: own data centers, yet the same scattered link-usage
    // pattern as Akamai via transit routing (Fig. 7c).
    auto cloudflare = org("cloudflare", OrgKind::kCdn, net::Asn{13335}, "US", 0.0030, 0.020);
    cloudflare.home_as_is_member = true;
    cloudflare.https_fraction = 0.90;
    cloudflare.indirect_link_fraction = 0.13;
    specs.push_back(std::move(cloudflare));
  }
  {
    // Amazon CloudFront: "almost all traffic is sent via the IXP's Amazon
    // links" (§5.3).
    auto cloudfront = org("cloudfront", OrgKind::kCdn, net::Asn{16509}, "US", 0.0040, 0.018);
    cloudfront.home_as_is_member = true;
    cloudfront.indirect_link_fraction = 0.01;
    specs.push_back(std::move(cloudfront));
  }
  {
    // Amazon EC2: cloud part; "a sizable fraction comes via other IXP
    // peering links" (§5.3). Publishes DC locations + IP ranges (§4.2).
    auto ec2 = org("ec2", OrgKind::kCloud, net::Asn{16509}, "US", 0.0080, 0.012);
    ec2.home_as_is_member = true;
    ec2.https_fraction = 0.30;
    ec2.indirect_link_fraction = 0.25;
    ec2.tenant_capacity = 12'000;
    ec2.publishes_server_ips = true;
    ec2.data_centers = {{"us-east", cc("US"), 0.40},
                        {"us-west", cc("US"), 0.20},
                        {"eu-ireland", cc("IE"), 0.25},
                        {"ap-tokyo", cc("JP"), 0.15}};
    specs.push_back(std::move(ec2));
  }
  {
    // Netflix: streamer expanding into Scandinavia on EC2-Ireland at the
    // end of 2012 (§4.2). Servers live in the EC2 AS.
    auto netflix = org("netflix", OrgKind::kStreamer, net::Asn{16509}, "US", 0.0018, 0.008);
    netflix.https_fraction = 0.20;
    specs.push_back(std::move(netflix));
  }
  {
    // The anonymized "major cloud provider" of the Hurricane-Sandy case
    // study: ~14K server IPs across named DC locations (§4.2).
    auto nimbus = org("nimbus", OrgKind::kCloud, net::Asn{39572}, "US", 0.0078, 0.006);
    nimbus.home_as_is_member = true;
    nimbus.publishes_server_ips = true;
    nimbus.data_centers = {{"us-east", cc("US"), 0.45},
                           {"us-west", cc("US"), 0.30},
                           {"eu-central", cc("DE"), 0.25}};
    specs.push_back(std::move(nimbus));
  }
  // Table 2's "Server IPs by network" head: the big hosting brands.
  {
    auto oneandone = org("oneandone", OrgKind::kHoster, net::Asn{8560}, "DE", 0.0133, 0.010);
    oneandone.home_as_is_member = true;
    oneandone.tenant_capacity = 20'000;
    specs.push_back(std::move(oneandone));
  }
  {
    // Softlayer, AS36351: the §5.2 example — its AS hosts 40K+ server IPs
    // belonging to 350+ different organizations (Fig. 6c's square).
    auto softlayer = org("softlayer", OrgKind::kHoster, net::Asn{36351}, "US", 0.0111, 0.009);
    softlayer.home_as_is_member = true;
    softlayer.tenant_capacity = 55'000;
    specs.push_back(std::move(softlayer));
  }
  {
    auto theplanet = org("theplanet", OrgKind::kHoster, net::Asn{21844}, "US", 0.0100, 0.008);
    theplanet.home_as_is_member = true;
    theplanet.tenant_capacity = 28'000;
    specs.push_back(std::move(theplanet));
  }
  {
    // Chinanet: eyeball AS with a sizable server population; its stable
    // pool is "basically invisible in terms of traffic" at the IXP (Fig. 5).
    auto chinanet = org("chinanet-idc", OrgKind::kEyeballOps, net::Asn{4134}, "CN", 0.0083, 0.0012);
    specs.push_back(std::move(chinanet));
  }
  {
    auto hosteurope = org("hosteurope", OrgKind::kHoster, net::Asn{20773}, "DE", 0.0067, 0.006);
    hosteurope.home_as_is_member = true;
    hosteurope.tenant_capacity = 15'000;
    specs.push_back(std::move(hosteurope));
  }
  {
    auto strato = org("strato", OrgKind::kHoster, net::Asn{6724}, "DE", 0.0061, 0.006);
    strato.home_as_is_member = true;
    strato.tenant_capacity = 13'000;
    specs.push_back(std::move(strato));
  }
  {
    auto webazilla = org("webazilla", OrgKind::kHoster, net::Asn{35415}, "NL", 0.0056, 0.005);
    webazilla.home_as_is_member = true;
    webazilla.tenant_capacity = 10'000;
    specs.push_back(std::move(webazilla));
  }
  {
    auto plusserver = org("plusserver", OrgKind::kHoster, net::Asn{8972}, "DE", 0.0050, 0.005);
    plusserver.home_as_is_member = true;
    plusserver.tenant_capacity = 10'000;
    specs.push_back(std::move(plusserver));
  }
  {
    // The anonymized giant hosters of §5.2: AS92572 with 90K+ server IPs,
    // AS56740 and AS50099 with 50K+ each — mostly *tenant* servers, so
    // they dominate Fig. 6(c) without entering Table 2's org ranking.
    auto giant = org("gianthost", OrgKind::kHoster, net::Asn{92572}, "DE", 0.0020, 0.004);
    giant.home_as_is_member = true;
    giant.tenant_capacity = 95'000;
    specs.push_back(std::move(giant));

    auto biga = org("bighost-a", OrgKind::kHoster, net::Asn{56740}, "NL", 0.0015, 0.003);
    biga.home_as_is_member = true;
    biga.tenant_capacity = 52'000;
    specs.push_back(std::move(biga));

    auto bigb = org("bighost-b", OrgKind::kHoster, net::Asn{50099}, "GB", 0.0015, 0.003);
    bigb.home_as_is_member = true;
    bigb.tenant_capacity = 52'000;
    specs.push_back(std::move(bigb));
  }
  {
    // Eweka: network operator whose machines act as servers *and* clients
    // (machine-to-machine traffic, §2.2.2).
    auto eweka = org("eweka", OrgKind::kEyeballOps, net::Asn{43350}, "NL", 0.0015, 0.012);
    eweka.home_as_is_member = true;
    eweka.dual_role_fraction = 0.70;
    specs.push_back(std::move(eweka));
  }
  {
    // CDN77: "a recently launched low-cost no-commitment CDN" that has no
    // ASN of its own and publishes all its server IPs (§5.1) — invisible
    // to the traditional AS-level view.
    auto cdn77 = org("cdn77", OrgKind::kCdn, std::nullopt, "CZ", 0.0008, 0.004);
    cdn77.visible_as_spread = 30;
    cdn77.publishes_server_ips = true;
    specs.push_back(std::move(cdn77));
  }
  {
    // Rapidshare: one-click hosting without an ASN (§5.1).
    auto rapidshare = org("rapidshare", OrgKind::kOneClick, std::nullopt, "CH", 0.0006, 0.006);
    rapidshare.visible_as_spread = 3;
    specs.push_back(std::move(rapidshare));
  }
  {
    // Hostica: the §5.1 meta-hoster example — SOA outsourced, clustered
    // only by the step-2 majority vote.
    auto hostica = org("hostica", OrgKind::kHoster, std::nullopt, "US", 0.0006, 0.002);
    hostica.naming = NamingScheme::kOutsourcedSoa;
    hostica.visible_as_spread = 6;
    specs.push_back(std::move(hostica));
  }
  return specs;
}

std::vector<EyeballSpec> named_eyeball_specs() {
  // Table 2, "All IPs by network" and traffic columns. ip_share is the
  // fraction of weekly background (non-server) activity.
  return {
      {"chinanet", net::Asn{4134}, cc("CN"), 0.055, false},
      {"vodafone-de", net::Asn{3209}, cc("DE"), 0.040, true},
      {"free-sas", net::Asn{12322}, cc("FR"), 0.034, true},
      {"turk-telekom", net::Asn{9121}, cc("TR"), 0.030, true},
      {"telecom-italia", net::Asn{3269}, cc("IT"), 0.027, true},
      {"liberty-global", net::Asn{6830}, cc("AT"), 0.024, true},
      {"vodafone-it", net::Asn{30722}, cc("IT"), 0.021, true},
      {"comnet", net::Asn{8386}, cc("TR"), 0.019, true},
      {"virgin-media", net::Asn{5089}, cc("GB"), 0.017, true},
      {"telefonica-de", net::Asn{6805}, cc("DE"), 0.016, true},
      {"kabel-deutschland", net::Asn{31334}, cc("DE"), 0.015, true},
      {"unitymedia", net::Asn{20825}, cc("DE"), 0.013, true},
      {"kyivstar", net::Asn{15895}, cc("UA"), 0.012, true},
  };
}

}  // namespace ixp::gen
