#include "gen/isp_observer.hpp"

namespace ixp::gen {

std::unordered_set<net::Ipv4Addr> IspObserver::observed_servers(
    int week) const {
  std::unordered_set<net::Ipv4Addr> out;
  const InternetModel& model = *model_;
  const auto& servers = model.servers();
  for (std::uint32_t s = 0; s < servers.size(); ++s) {
    const ServerRecord& server = servers[s];
    if (!model.server_active(s, week)) continue;
    // Observation probability by visibility class: the ISP's customers
    // reach most of the popular visible servers, plus a slice of servers
    // the IXP cannot see.
    double p = 0.0;
    switch (server.blind) {
      case BlindReason::kNone:
        // The ISP's customers concentrate on the popular stable pool.
        p = server.activity.kind == ActivityKind::kStable ? 0.92 : 0.30;
        break;
      case BlindReason::kPrivateCluster: p = 0.040; break;
      case BlindReason::kFarRegion: p = 0.040; break;
      case BlindReason::kSmallFarOrg: p = 0.030; break;
      case BlindReason::kErrorHandler: p = 0.010; break;
    }
    const std::uint64_t h = util::mix64(model.config().seed ^ 0x15bull ^
                                        (std::uint64_t{s} << 10) ^
                                        static_cast<std::uint64_t>(week));
    if (static_cast<double>(h >> 11) * 0x1.0p-53 < p) out.insert(server.addr);
  }
  return out;
}

}  // namespace ixp::gen
