// Scale configuration for the synthetic Internet.
//
// The paper's vantage point sees ~232M IPs and ~1.5M server IPs per week —
// far beyond what a reproduction should simulate packet-by-packet. All
// population sizes are therefore explicit knobs, with factory presets that
// scale the paper's counts down while keeping *structural* counts (ASes,
// prefixes, members, countries) at or near paper scale, because those are
// the headline visibility numbers of Table 1.
//
// Every experiment binary prints the scale it ran at next to the paper's
// values; EXPERIMENTS.md records the comparison.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ixp::gen {

struct ScaleConfig {
  std::uint64_t seed = 0x2012'0827;  // measurement period start (Aug 27 2012)

  // --- structural (paper scale by default) -------------------------------
  std::size_t as_count = 42'825;        // actively routed ASes
  std::size_t prefix_count = 460'000;   // routed prefixes (paper: 450K-500K)
  std::size_t member_count = 443;       // IXP members in week 35
  std::size_t member_joins = 14;        // new members over weeks 36..51
  std::size_t org_count = 21'000;       // organizations with servers
  std::size_t site_count = 1'000'000;   // Alexa-style ranked site list
  std::size_t resolver_candidates = 280'000;  // CDN resolver list (§2.3)

  // --- populations (scaled by `volume` in the presets) -------------------
  /// Target number of *weekly visible* server IPs (paper: ~1.5M). The
  /// model derives the total server universe from this (the weekly pool
  /// plus churn reservoir plus blind servers is ~2.6x larger).
  std::size_t weekly_server_ips = 1'500'000;
  std::size_t client_pool = 40'000'000;  // HTTP client IP pool
  /// Active non-server host population generating background traffic;
  /// drives the unique peering IP count of Table 1 (~232M IPs/week).
  std::size_t background_ip_pool = 200'000'000;

  // --- weekly traffic (sampled-record counts, scaled) --------------------
  /// Background (non-server) peering samples per week.
  std::uint64_t weekly_background_samples = 320'000'000;
  /// Server-related samples per week (the server-byte share of peering
  /// traffic must exceed 70%, §2.2.2).
  std::uint64_t weekly_server_flows = 255'000'000;

  int first_week = 35;
  int last_week = 51;

  /// Paper-shaped preset: structure at paper scale, populations and
  /// traffic scaled by `volume` (e.g. 1.0/128). Used by the exp_* benches.
  [[nodiscard]] static ScaleConfig bench(double volume = 1.0 / 128.0);

  /// Small preset for integration tests: structure ~1/64, volume tiny.
  /// Runs the full pipeline in well under a second.
  [[nodiscard]] static ScaleConfig test();

  /// Number of weeks covered (inclusive range first_week..last_week).
  [[nodiscard]] int week_count() const noexcept {
    return last_week - first_week + 1;
  }

  /// Order-sensitive FNV-1a digest of every knob above (seed included).
  /// This is the model half of a snapshot's provenance: any change to any
  /// field — however small — yields a different fingerprint, so a re-run
  /// under a tweaked model recomputes exactly the weeks the tweak
  /// invalidates (DESIGN.md §16). Stable across hosts and compilers.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

}  // namespace ixp::gen
