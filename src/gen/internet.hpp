// The synthetic Internet.
//
// InternetModel is the ground truth everything else measures against: the
// AS topology around the IXP, the routed prefix space with geolocation,
// the IXP member fabric, the organizations and their (heterogeneously
// deployed) server infrastructures, the DNS zones and X.509 certificates
// describing those servers, the Alexa-style site ranking, and the open
// resolver population. Construction is fully deterministic from the
// ScaleConfig seed.
//
// The model deliberately contains everything the paper says exists but
// the IXP cannot see — private clusters, far-away deployments, servers
// that answer only invalid URIs (§3.3) — so the blind-spot analyses have
// real ground truth to be blind about.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dns/name.hpp"
#include "dns/resolver.hpp"
#include "dns/zone_db.hpp"
#include "fabric/ixp.hpp"
#include "gen/org_catalog.hpp"
#include "gen/scale.hpp"
#include "geo/geo_database.hpp"
#include "net/as_graph.hpp"
#include "net/ipv4.hpp"
#include "net/routing_table.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"
#include "x509/certificate.hpp"

namespace ixp::gen {

/// Structural role of an AS in the synthetic topology.
enum class AsRole : std::uint8_t {
  kTier1,
  kTransit,
  kEyeball,
  kContent,
  kCdn,
  kHoster,
  kCloud,
  kEnterprise,
  kUniversity,
  kReseller,         // IXP member whose port fronts remote customers
  kResellerCustomer, // remote AS reaching the IXP through a reseller
};

struct AsRecord {
  net::Asn asn;
  AsRole role = AsRole::kEnterprise;
  geo::CountryCode country;
  bool member = false;
  int join_week = 0;
  /// Index (into ases()) of the member AS whose IXP port carries this
  /// AS's traffic; self for members.
  std::uint32_t entry_member = 0;
  net::Locality locality = net::Locality::kGlobal;
  std::uint32_t first_prefix = 0;  // contiguous range in prefixes()
  std::uint32_t prefix_count = 0;
  /// Relative weight of this AS in weekly background (non-server) IP
  /// activity; drives Table 1/2/3's IP columns.
  double background_weight = 0.0;
  /// Relative weight in the Web *client* population.
  double client_weight = 0.0;
};

struct PrefixRecord {
  net::Ipv4Prefix prefix;
  std::uint32_t as_index = 0;
};

/// Server roles observed as ports: HTTP (80/8080), HTTPS (443), RTMP (1935).
inline constexpr std::uint8_t kRoleHttp = 0x01;
inline constexpr std::uint8_t kRoleHttps = 0x02;
inline constexpr std::uint8_t kRoleRtmp = 0x04;

/// Why a server is invisible at the IXP (§3.3's four categories).
enum class BlindReason : std::uint8_t {
  kNone,            // visible
  kPrivateCluster,  // serves only clients inside its host AS
  kFarRegion,       // geographically far, region-aware delivery
  kErrorHandler,    // only answers invalid URIs
  kSmallFarOrg,     // small org/university far from the IXP
};

/// Longitudinal activity pattern of a server across the 17 weeks.
enum class ActivityKind : std::uint8_t {
  kStable,     // active every week (Fig. 4's white segment)
  kRecurrent,  // active each week independently with probability `p`
  kArrival,    // first active in `first_week`, active afterwards
};

struct Activity {
  ActivityKind kind = ActivityKind::kStable;
  float p = 1.0f;
  std::int16_t first_week = 0;
};

/// What the prober finds when it crawls an IP on port 443 (§2.2.2).
enum class TlsBehavior : std::uint8_t {
  kNoResponse,   // candidate that never answers (most client IPs)
  kValidStable,  // proper certificate, stable across fetches
  kInvalidCert,  // responds with a failing certificate
  kUnstable,     // cloud churn: different tenant per fetch
  kSquatter,     // SSH/VPN on 443: no X.509 material at all
};

struct ServerRecord {
  net::Ipv4Addr addr;
  /// Administrative owner (ground truth for §5.1 clustering): the org
  /// that manages the IP and its content. For hoster-managed tenants this
  /// is the hoster.
  std::uint32_t org = 0;  // index into orgs()
  /// The org whose *content* the server delivers (equals `org` except for
  /// hoster-managed tenant servers).
  std::uint32_t content_org = 0;
  std::uint32_t host_as = 0;   // index into ases()
  /// Week this server started speaking HTTPS (0 = since the beginning);
  /// drives the §4.2 HTTPS-growth case study.
  std::int16_t https_since = 0;
  std::uint8_t roles = kRoleHttp;
  bool dual_role = false;      // also initiates connections (§2.2.2)
  BlindReason blind = BlindReason::kNone;
  Activity activity;
  TlsBehavior tls = TlsBehavior::kNoResponse;
  float traffic_weight = 1.0f;   // relative within its organization
  std::int16_t data_center = -1; // index into the org's data_centers
  // Metadata availability (targets §2.4's coverage percentages).
  bool has_ptr = false;          // reverse DNS hostname
  bool has_reverse_soa = false;  // SOA reachable even without hostname
  bool serves_uris = false;      // URIs recoverable from payload at the IXP

  [[nodiscard]] bool visible() const noexcept {
    return blind == BlindReason::kNone;
  }
};

struct OrgRecord {
  std::string name;
  dns::DnsName domain;  // e.g. akamai.com
  OrgKind kind = OrgKind::kSite;
  NamingScheme naming = NamingScheme::kOwnSoa;
  std::optional<std::uint32_t> home_as;  // index into ases(); CDN77: nullopt
  double traffic_share = 0.0;            // of weekly server traffic
  double indirect_link_fraction = 0.0;
  std::uint32_t server_count = 0;  // servers administratively owned
  bool named_head = false;
  bool publishes_server_ips = false;
  std::vector<OrgSpec::DataCenter> data_centers;
  /// For tenants: the hoster org their servers live in (fig 6c).
  std::optional<std::uint32_t> hosted_by;
};

class InternetModel {
 public:
  explicit InternetModel(const ScaleConfig& cfg);

  InternetModel(const InternetModel&) = delete;
  InternetModel& operator=(const InternetModel&) = delete;

  [[nodiscard]] const ScaleConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::vector<AsRecord>& ases() const noexcept { return ases_; }
  [[nodiscard]] const std::vector<PrefixRecord>& prefixes() const noexcept {
    return prefixes_;
  }
  [[nodiscard]] const std::vector<OrgRecord>& orgs() const noexcept { return orgs_; }
  [[nodiscard]] const std::vector<ServerRecord>& servers() const noexcept {
    return servers_;
  }
  [[nodiscard]] const fabric::Ixp& ixp() const noexcept { return ixp_; }
  [[nodiscard]] const net::RoutingTable& routing() const noexcept {
    return routing_;
  }
  [[nodiscard]] const net::AsGraph& as_graph() const noexcept { return graph_; }
  [[nodiscard]] const geo::GeoDatabase& geo_db() const noexcept { return geo_; }
  [[nodiscard]] const dns::ZoneDatabase& dns_db() const noexcept { return dns_; }
  [[nodiscard]] const dns::ResolverPopulation& resolvers() const noexcept {
    return resolvers_;
  }
  [[nodiscard]] const x509::RootStore& root_store() const noexcept {
    return roots_;
  }

  /// Alexa-style ranked site list (rank 0 = most popular).
  struct Site {
    dns::DnsName domain;
    std::uint32_t org = 0;  // the organization owning the content
    /// Set when the site's delivery is outsourced to a CDN: DNS resolves
    /// the site to the CDN's servers ("any content is delivered by any of
    /// its servers", §5.1's Akamai validation).
    std::optional<std::uint32_t> cdn;
  };
  [[nodiscard]] const std::vector<Site>& sites() const noexcept { return sites_; }

  /// Country of a server (host AS country, or its data-center country).
  [[nodiscard]] geo::CountryCode server_country(const ServerRecord& server) const;

  /// Whether a server is active (has traffic) in an absolute week.
  /// Deterministic: recurrent servers hash (seed, server, week).
  [[nodiscard]] bool server_active(std::uint32_t server_index, int week) const;

  /// The k-th client IP of the pool (deterministic, stable mapping).
  [[nodiscard]] net::Ipv4Addr client_addr(std::uint64_t k) const;

  /// Index lookup: server by IP (visible and blind alike).
  [[nodiscard]] std::optional<std::uint32_t> server_by_addr(net::Ipv4Addr addr) const;

  /// Org index by name (named head entities), if present.
  [[nodiscard]] std::optional<std::uint32_t> org_by_name(std::string_view name) const;

  /// Simulates crawling `addr` on TCP 443 `times` times at the given week
  /// (the §2.2.2 active measurement). Returns one chain per successful
  /// fetch; empty when nothing answers.
  [[nodiscard]] std::vector<x509::CertificateChain> fetch_chains(
      net::Ipv4Addr addr, int times, int week) const;

  /// Zero-copy form of fetch_chains for the probe engine: the chain the
  /// `fetch_index`-th crawl of `addr` would deliver this `week`, or nullptr
  /// when nothing answers. Stable/invalid servers alias model-owned
  /// storage; unstable tenants materialize into `scratch`; squatters point
  /// at an empty chain in `scratch`. For any f < times,
  /// `fetch_chains(addr, times, week)[f]` equals the pointed-to chain.
  [[nodiscard]] const x509::CertificateChain* fetch_chain_view(
      net::Ipv4Addr addr, int fetch_index, int week,
      x509::CertificateChain& scratch) const;

  /// The reseller member AS index (§4.2's reseller case study).
  [[nodiscard]] std::uint32_t reseller_as() const noexcept { return reseller_as_; }

  /// Server indices delivering content for `content_org` (used by the
  /// workload to map a requested site to a serving IP, and by the DNS
  /// sweep to resolve site domains).
  [[nodiscard]] const std::vector<std::uint32_t>& content_servers(
      std::uint32_t content_org) const;

  /// Server indices administratively owned by an organization (ground
  /// truth for the §5.1 clustering validation).
  [[nodiscard]] const std::vector<std::uint32_t>& org_servers(
      std::uint32_t org_index) const;

  /// Resolves a site through a specific resolver, with the CDN-style
  /// topology-aware mapping of §3.3: resolvers inside an AS may be handed
  /// that AS's private-cluster servers; far-region deployments surface
  /// only to same-region resolvers. Non-open resolvers return nothing.
  [[nodiscard]] std::vector<net::Ipv4Addr> resolve_site(
      std::size_t site_rank, const dns::Resolver& resolver, int week) const;

  /// A server IP published by an org that discloses its ranges (EC2's
  /// public ranges, CDN77's server list, the cloud provider's DC map).
  struct PublishedServer {
    net::Ipv4Addr addr;
    std::int16_t data_center = -1;  // index into the org's data_centers
  };
  /// Published IPs of `org_index` (empty unless publishes_server_ips).
  /// For clouds this covers everything inside their ranges, including
  /// tenant and Netflix-style servers hosted there.
  [[nodiscard]] std::vector<PublishedServer> published_servers(
      std::uint32_t org_index) const;

  /// AS index for an ASN, if the ASN exists in the model.
  [[nodiscard]] std::optional<std::uint32_t> as_index_of(net::Asn asn) const;

  /// Total number of *visible* servers (blind ones excluded).
  [[nodiscard]] std::size_t visible_server_count() const noexcept {
    return visible_server_count_;
  }

 private:
  void build_ases_and_prefixes(util::Rng& rng);
  void build_topology(util::Rng& rng);
  void build_orgs_and_servers(util::Rng& rng);
  void build_dns_and_certs(util::Rng& rng);
  void build_sites(util::Rng& rng);
  void build_resolvers(util::Rng& rng);

  /// Picks a host AS for a server of `org_index` (used during build).
  [[nodiscard]] net::Ipv4Addr allocate_server_addr(std::uint32_t as_index,
                                                   util::Rng& rng);

  /// The tenant chain a kUnstable server delivers on fetch `f` of `week` —
  /// shared by fetch_chains and fetch_chain_view so both stay identical.
  [[nodiscard]] x509::CertificateChain make_unstable_chain(net::Ipv4Addr addr,
                                                           int week,
                                                           int f) const;

  ScaleConfig cfg_;
  std::vector<AsRecord> ases_;
  std::vector<PrefixRecord> prefixes_;
  std::vector<OrgRecord> orgs_;
  std::vector<ServerRecord> servers_;
  fabric::Ixp ixp_;
  net::RoutingTable routing_;
  net::AsGraph graph_;
  geo::GeoDatabase geo_;
  dns::ZoneDatabase dns_;
  dns::ResolverPopulation resolvers_;
  x509::RootStore roots_;
  std::vector<Site> sites_;
  std::unordered_map<net::Ipv4Addr, std::uint32_t> server_index_;
  std::unordered_map<std::string, std::uint32_t> org_index_;
  std::unordered_map<std::uint32_t, x509::CertificateChain> cert_chains_;  // server -> chain
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> content_servers_;
  /// (content org << 32 | host AS) -> servers; the CDN-mapping index used
  /// by resolve_site to hand resolvers their in-network servers.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> content_as_servers_;
  std::vector<std::vector<std::uint32_t>> org_servers_;
  std::vector<std::uint64_t> client_capacity_cum_;  // cumulative client slots
  std::vector<std::uint32_t> client_prefix_ids_;
  std::uint32_t reseller_as_ = 0;
  std::size_t visible_server_count_ = 0;
  std::vector<std::uint64_t> as_capacity_;   // usable addresses per AS
  std::vector<std::uint64_t> as_allocated_;  // servers placed per AS
  std::unordered_map<net::Asn, std::uint32_t> asn_index_;
  std::unordered_set<std::uint32_t> used_asns_;
  std::size_t member_end_ = 0;  // ases_[0, member_end_) hold the members
  std::size_t near_end_ = 0;    // ases_[member_end_, near_end_) are distance 1
  std::optional<std::uint32_t> sandy_org_;  // the hurricane case-study cloud

  friend class Workload;
};

}  // namespace ixp::gen
