// Organization, server, DNS/X.509, site, and resolver construction for
// InternetModel (split from internet.cpp for readability).
#include <algorithm>
#include <cmath>

#include "dns/public_suffix.hpp"
#include "gen/internet.hpp"

namespace ixp::gen {

namespace {

/// P(stable) per region, calibrated so the stable pool is ~30% of the
/// weekly server count and DE is ~half of it (Fig. 4a/4b). These are
/// *universe* fractions; a stable server is active every week while
/// recurrent/arrival servers are only partially active, which amplifies
/// the stable share of the weekly pool by ~2.5x.
double stable_universe_probability(geo::Region region) {
  switch (region) {
    case geo::Region::kDE: return 0.290;
    case geo::Region::kUS: return 0.110;
    case geo::Region::kRU: return 0.150;
    case geo::Region::kCN: return 0.014;
    case geo::Region::kRoW: return 0.066;
  }
  return 0.066;
}

/// Among non-stable servers: probability of being a fresh arrival
/// (vs. a member of the recurrent reservoir).
constexpr double kArrivalSplit = 0.52;
constexpr float kArrivalReactivation = 0.20f;

dns::DnsName name_of(const std::string& text) {
  const auto parsed = dns::DnsName::parse(text);
  // All generated names are valid by construction.
  return parsed ? *parsed : dns::DnsName{};
}

}  // namespace

// ---------------------------------------------------------------------------
// Organizations and servers
// ---------------------------------------------------------------------------

void InternetModel::build_orgs_and_servers(util::Rng& rng) {
  const double weekly = static_cast<double>(cfg_.weekly_server_ips);

  // ASN -> as index.
  std::unordered_map<std::uint32_t, std::uint32_t> by_asn;
  for (std::uint32_t i = 0; i < ases_.size(); ++i)
    by_asn.emplace(ases_[i].asn.value(), i);

  // Eyeball-ish ASes that can host CDN deployments, by locality.
  std::vector<std::uint32_t> member_eyeballs;
  std::vector<std::uint32_t> near_eyeballs;
  std::vector<std::uint32_t> global_hosts;
  std::vector<std::uint32_t> hoster_ases;       // synthetic hoster ASes
  std::vector<std::uint32_t> own_as_candidates; // for tail orgs
  std::vector<std::uint32_t> reseller_customers;
  for (std::uint32_t i = 0; i < ases_.size(); ++i) {
    const AsRecord& as = ases_[i];
    if (as.role == AsRole::kEyeball || as.role == AsRole::kTier1) {
      if (as.member)
        member_eyeballs.push_back(i);
      else if (i < near_end_)
        near_eyeballs.push_back(i);
      else
        global_hosts.push_back(i);
    }
    if (as.role == AsRole::kHoster && !as.member) hoster_ases.push_back(i);
    if (!as.member && (as.role == AsRole::kEnterprise ||
                       as.role == AsRole::kContent ||
                       as.role == AsRole::kUniversity ||
                       as.role == AsRole::kEyeball))
      own_as_candidates.push_back(i);
    if (as.role == AsRole::kResellerCustomer) reseller_customers.push_back(i);
  }

  const auto pick = [&rng](const std::vector<std::uint32_t>& pool) {
    return pool[rng.next_below(pool.size())];
  };
  // Picks an AS from `pool` with room for `needed` more servers; after a
  // bounded number of tries, settles for the roomiest candidate seen.
  const auto pick_with_room = [&](const std::vector<std::uint32_t>& pool,
                                  std::uint64_t needed) {
    std::uint32_t best = pool[rng.next_below(pool.size())];
    std::uint64_t best_free = as_capacity_[best] - as_allocated_[best];
    for (int attempt = 0; attempt < 24 && best_free < needed; ++attempt) {
      const std::uint32_t candidate = pool[rng.next_below(pool.size())];
      const std::uint64_t free =
          as_capacity_[candidate] - as_allocated_[candidate];
      if (free > best_free) {
        best = candidate;
        best_free = free;
      }
    }
    return best;
  };

  // --- activity assignment helpers -----------------------------------------
  const auto assign_activity = [&](ServerRecord& server, double stable_p) {
    if (rng.next_bool(stable_p)) {
      server.activity = Activity{ActivityKind::kStable, 1.0f, 0};
      return;
    }
    if (rng.next_bool(kArrivalSplit)) {
      const auto first = static_cast<std::int16_t>(
          rng.next_in(static_cast<std::uint64_t>(cfg_.first_week + 1),
                      static_cast<std::uint64_t>(cfg_.last_week)));
      server.activity = Activity{ActivityKind::kArrival, kArrivalReactivation, first};
      return;
    }
    const float p = static_cast<float>(0.25 + 0.5 * rng.next_double());
    server.activity = Activity{ActivityKind::kRecurrent, p, 0};
  };

  const auto region_stable_p = [&](std::uint32_t as_index) {
    return stable_universe_probability(
        geo::region_of(ases_[as_index].country));
  };

  // --- role / TLS / metadata helpers ----------------------------------------
  const auto assign_roles = [&](ServerRecord& server, const OrgSpec* spec,
                                double https_f, double rtmp_f, double dual_f) {
    server.roles = kRoleHttp;
    if (rng.next_bool(https_f)) {
      server.roles |= kRoleHttps;
      if (rng.next_bool(0.15)) server.roles &= ~kRoleHttp;  // HTTPS-only
      // §4.2 HTTPS growth: a slice of HTTPS servers switch it on during
      // the measurement period.
      if (rng.next_bool(0.20)) {
        server.https_since = static_cast<std::int16_t>(
            rng.next_in(static_cast<std::uint64_t>(cfg_.first_week + 1),
                        static_cast<std::uint64_t>(cfg_.last_week)));
      }
    }
    if (rng.next_bool(rtmp_f)) server.roles |= kRoleRtmp;
    server.dual_role = rng.next_bool(dual_f);
    if ((server.roles & kRoleHttps) != 0) {
      const double r = rng.next_double();
      const bool head_cdn = spec != nullptr && spec->kind == OrgKind::kCdn;
      const double valid_p = head_cdn ? 0.75 : 0.50;
      if (r < valid_p)
        server.tls = TlsBehavior::kValidStable;
      else if (r < valid_p + 0.30)
        server.tls = TlsBehavior::kInvalidCert;
      else if (r < valid_p + 0.42)
        server.tls = TlsBehavior::kUnstable;
      else
        server.tls = TlsBehavior::kSquatter;
    }
  };

  const auto assign_metadata = [&](ServerRecord& server, NamingScheme naming,
                                   OrgKind kind) {
    switch (naming) {
      case NamingScheme::kOwnSoa: server.has_ptr = rng.next_bool(0.64); break;
      case NamingScheme::kOutsourcedSoa: server.has_ptr = rng.next_bool(0.56); break;
      case NamingScheme::kPartial: server.has_ptr = rng.next_bool(0.08); break;
    }
    if (!server.has_ptr) server.has_reverse_soa = rng.next_bool(0.30);
    double uri_p = 0.22;
    switch (kind) {
      case OrgKind::kContent: uri_p = 0.80; break;
      case OrgKind::kCdn: uri_p = 0.60; break;
      case OrgKind::kSite: uri_p = 0.48; break;
      case OrgKind::kStreamer: uri_p = 0.08; break;  // §2.4: streamers
      case OrgKind::kOneClick: uri_p = 0.62; break;
      default: uri_p = 0.25; break;
    }
    server.serves_uris = rng.next_bool(uri_p);
  };

  const auto add_server = [&](std::uint32_t org_index, std::uint32_t as_index,
                              BlindReason blind) -> ServerRecord& {
    ServerRecord server;
    server.addr = allocate_server_addr(as_index, rng);
    server.org = org_index;
    server.content_org = org_index;
    server.host_as = as_index;
    server.blind = blind;
    server.traffic_weight = static_cast<float>(rng.next_pareto(1.0, 1.3));
    as_allocated_[as_index] += 1;
    const auto id = static_cast<std::uint32_t>(servers_.size());
    server_index_.emplace(server.addr, id);
    servers_.push_back(server);
    ++orgs_[org_index].server_count;
    org_servers_[org_index].push_back(id);
    return servers_.back();
  };

  const auto new_org = [&](std::string name, std::string domain, OrgKind kind,
                           NamingScheme naming,
                           std::optional<std::uint32_t> home_as) {
    OrgRecord org;
    org.name = std::move(name);
    org.domain = name_of(domain);
    org.kind = kind;
    org.naming = naming;
    org.home_as = home_as;
    const auto index = static_cast<std::uint32_t>(orgs_.size());
    org_index_.emplace(org.name, index);
    orgs_.push_back(std::move(org));
    org_servers_.emplace_back();
    return index;
  };

  // ---------------------------------------------------------------------
  // 1. Named head organizations.
  // ---------------------------------------------------------------------
  double head_weekly_expected = 0.0;
  for (const OrgSpec& spec : named_org_specs()) {
    std::optional<std::uint32_t> home;
    if (spec.home_as) {
      const auto it = by_asn.find(spec.home_as->value());
      if (it != by_asn.end()) home = it->second;
    }
    const std::uint32_t org_index =
        new_org(spec.name, spec.name + "." + spec.tld, spec.kind, spec.naming, home);
    OrgRecord& org = orgs_[org_index];
    org.named_head = true;
    org.traffic_share = spec.traffic_share;
    org.indirect_link_fraction = spec.indirect_link_fraction;
    org.publishes_server_ips = spec.publishes_server_ips;
    org.data_centers = spec.data_centers;
    if (spec.name == "nimbus") sandy_org_ = org_index;

    const auto visible_count = static_cast<std::size_t>(
        std::max(1.0, spec.visible_server_share * weekly));
    const auto blind_count = static_cast<std::size_t>(
        spec.blind_server_share * weekly);

    // Deployment ASes: home first, then eyeballs near the IXP for the
    // visible spread, far/global hosts for the blind spread.
    std::vector<std::uint32_t> visible_ases;
    if (home) visible_ases.push_back(*home);
    while (visible_ases.size() < std::max<std::size_t>(1, spec.visible_as_spread)) {
      const bool member_side = rng.next_bool(0.5);
      visible_ases.push_back(member_side ? pick(member_eyeballs)
                                         : pick(near_eyeballs));
    }
    std::vector<std::uint32_t> blind_ases;
    for (std::size_t i = 0; i < spec.blind_as_spread; ++i)
      blind_ases.push_back(rng.next_bool(0.6) ? pick(global_hosts)
                                              : pick(near_eyeballs));

    for (std::size_t s = 0; s < visible_count; ++s) {
      // Home AS keeps ~35% of a spread deployment, 100% of a single-AS one.
      std::uint32_t as_index;
      if (visible_ases.size() == 1 || rng.next_bool(0.35)) {
        as_index = visible_ases.front();
      } else {
        as_index = visible_ases[1 + rng.next_below(visible_ases.size() - 1)];
      }
      ServerRecord& server = add_server(org_index, as_index, BlindReason::kNone);
      assign_roles(server, &spec, spec.https_fraction, spec.rtmp_fraction,
                   spec.dual_role_fraction);
      assign_metadata(server, spec.naming, spec.kind);
      // Head infrastructure is largely stable.
      double stable_p = 0.78;
      if (geo::region_of(ases_[as_index].country) == geo::Region::kCN)
        stable_p = 0.05;
      assign_activity(server, stable_p);
      if (!org.data_centers.empty()) {
        // Weighted DC assignment.
        double total = 0.0;
        for (const auto& dc : org.data_centers) total += dc.weight;
        double draw = rng.next_double() * total;
        for (std::size_t d = 0; d < org.data_centers.size(); ++d) {
          draw -= org.data_centers[d].weight;
          if (draw <= 0.0) {
            server.data_center = static_cast<std::int16_t>(d);
            break;
          }
        }
      }
      head_weekly_expected += server.activity.kind == ActivityKind::kStable
                                  ? 1.0
                                  : static_cast<double>(server.activity.p);
    }
    for (std::size_t s = 0; s < blind_count; ++s) {
      const std::uint32_t as_index =
          blind_ases.empty() ? pick(global_hosts) : pick(blind_ases);
      ServerRecord& server = add_server(
          org_index, as_index,
          rng.next_bool(0.6) ? BlindReason::kPrivateCluster
                             : BlindReason::kFarRegion);
      assign_roles(server, &spec, spec.https_fraction, spec.rtmp_fraction, 0.0);
      assign_metadata(server, spec.naming, spec.kind);
      assign_activity(server, 0.6);
    }
  }

  // EC2 expansion / Netflix launch (§4.2): late-arrival servers in the
  // eu-ireland data center during weeks 49-51.
  if (const auto ec2 = org_by_name("ec2")) {
    const OrgRecord& org = orgs_[*ec2];
    std::int16_t ireland = -1;
    for (std::size_t d = 0; d < org.data_centers.size(); ++d)
      if (org.data_centers[d].name == "eu-ireland")
        ireland = static_cast<std::int16_t>(d);
    for (const std::uint32_t s : org_servers_[*ec2]) {
      if (servers_[s].data_center != ireland) continue;
      if (!rng.next_bool(0.70)) continue;
      servers_[s].activity =
          Activity{ActivityKind::kArrival, 0.9f,
                   static_cast<std::int16_t>(49 + rng.next_below(3))};
    }
  }
  if (const auto netflix = org_by_name("netflix")) {
    std::int16_t ec2_ireland = -1;
    if (const auto ec2 = org_by_name("ec2")) {
      const auto& dcs = orgs_[*ec2].data_centers;
      for (std::size_t d = 0; d < dcs.size(); ++d)
        if (dcs[d].name == "eu-ireland") ec2_ireland = static_cast<std::int16_t>(d);
    }
    for (const std::uint32_t s : org_servers_[*netflix]) {
      if (!rng.next_bool(0.70)) continue;
      servers_[s].activity =
          Activity{ActivityKind::kArrival, 0.95f,
                   static_cast<std::int16_t>(49 + rng.next_below(3))};
      // The expansion runs on EC2's Ireland data center (§4.2).
      servers_[s].data_center = ec2_ireland;
    }
  }

  // ---------------------------------------------------------------------
  // 2. Reseller customers (§4.2): server count doubles over the period.
  // ---------------------------------------------------------------------
  {
    const auto total = static_cast<std::size_t>(0.067 * weekly);
    const std::size_t org_count = std::max<std::size_t>(2, total / 400);
    for (std::size_t o = 0; o < org_count; ++o) {
      const std::uint32_t as_index = pick(reseller_customers);
      const std::uint32_t org_index = new_org(
          "rsl-customer-" + std::to_string(o),
          "rslcust" + std::to_string(o) + ".net", OrgKind::kHoster,
          NamingScheme::kOwnSoa, as_index);
      orgs_[org_index].traffic_share = 0.0022;
      const std::size_t servers_here = total / org_count;
      for (std::size_t s = 0; s < servers_here; ++s) {
        ServerRecord& server = add_server(org_index, as_index, BlindReason::kNone);
        assign_roles(server, nullptr, 0.12, 0.0, 0.05);
        assign_metadata(server, NamingScheme::kOwnSoa, OrgKind::kHoster);
        // Half present from the start; half arrive uniformly -> doubling.
        if (rng.next_bool(0.5)) {
          server.activity = Activity{ActivityKind::kStable, 1.0f, 0};
        } else {
          server.activity =
              Activity{ActivityKind::kArrival, 0.95f,
                       static_cast<std::int16_t>(rng.next_in(
                           static_cast<std::uint64_t>(cfg_.first_week + 1),
                           static_cast<std::uint64_t>(cfg_.last_week)))};
        }
      }
    }
  }

  // ---------------------------------------------------------------------
  // 3. Error-handler servers (§3.3 category 3): a few per ~2% of ASes.
  // ---------------------------------------------------------------------
  {
    const std::uint32_t org_index =
        new_org("invalid-uri-handlers", "errorpages.net", OrgKind::kSite,
                NamingScheme::kPartial, std::nullopt);
    const std::size_t as_samples = std::max<std::size_t>(2, ases_.size() / 50);
    for (std::size_t i = 0; i < as_samples; ++i) {
      const auto as_index =
          static_cast<std::uint32_t>(rng.next_below(ases_.size()));
      ServerRecord& server =
          add_server(org_index, as_index, BlindReason::kErrorHandler);
      assign_metadata(server, NamingScheme::kPartial, OrgKind::kSite);
      assign_activity(server, 0.5);
    }
  }

  // ---------------------------------------------------------------------
  // 4. Tail organizations: hosting tenants and own-AS orgs.
  // ---------------------------------------------------------------------
  // Hosting pool: named hoster/cloud orgs by tenant capacity + synthetic
  // hoster ASes.
  struct HostSlot {
    std::uint32_t as_index;
    std::optional<std::uint32_t> hoster_org;
  };
  std::vector<HostSlot> host_slots;
  std::vector<double> host_weights;
  for (std::uint32_t o = 0; o < orgs_.size(); ++o) {
    const OrgRecord& org = orgs_[o];
    if (!org.named_head || !org.home_as) continue;
    for (const OrgSpec& spec : named_org_specs()) {
      if (spec.name == org.name && spec.tenant_capacity > 0.0) {
        host_slots.push_back(HostSlot{*org.home_as, o});
        host_weights.push_back(spec.tenant_capacity);
      }
    }
  }
  for (const std::uint32_t as_index : hoster_ases) {
    host_slots.push_back(HostSlot{as_index, std::nullopt});
    host_weights.push_back(25.0 * rng.next_pareto(1.0, 1.4));
  }
  const util::WeightedSampler host_sampler{host_weights};

  const std::size_t head_orgs = orgs_.size();
  const std::size_t tail_orgs =
      cfg_.org_count > head_orgs ? cfg_.org_count - head_orgs : 16;

  // Expected weekly contribution so far (head ~= expected above; reseller
  // and error handlers are small); size the tail universe to make the
  // weekly total land on target. Universe-to-weekly ratio ~= 2.46.
  const double reseller_weekly = 0.05 * weekly;
  const double tail_weekly =
      std::max(0.10 * weekly, weekly - head_weekly_expected - reseller_weekly);
  const double tail_universe = tail_weekly * 2.46;

    // Flat-ish Zipf: the paper's organization-size distribution has a broad
  // mid-range (>6K of 21K orgs above 10 servers) and its head is the big
  // hosters/CDNs, not an anonymous tail org — cap tail org sizes below
  // the named head and redistribute the excess over the mid-range.
  auto tail_sizes = util::zipf_weights(tail_orgs, 1.05, /*normalize=*/true);
  // The cap must stay clear of the tail average, or small-scale configs
  // would clamp every org and collapse the universe.
  const double tail_cap =
      std::max({8.0, 0.008 * weekly,
                2.5 * tail_universe / static_cast<double>(tail_orgs)});
  {
    std::vector<double> planned(tail_orgs);
    for (std::size_t o = 0; o < tail_orgs; ++o)
      planned[o] = std::max(1.0, tail_sizes[o] * tail_universe);
    for (int round = 0; round < 4; ++round) {
      double excess = 0.0;
      double uncapped_total = 0.0;
      for (const double size : planned) {
        if (size > tail_cap)
          excess += size - tail_cap;
        else
          uncapped_total += size;
      }
      if (excess < 1.0 || uncapped_total <= 0.0) break;
      for (double& size : planned) {
        if (size > tail_cap)
          size = tail_cap;
        else
          size *= 1.0 + excess / uncapped_total;
      }
    }
    for (std::size_t o = 0; o < tail_orgs; ++o)
      tail_sizes[o] = std::min(planned[o], tail_cap) / tail_universe;
  }
  for (std::size_t o = 0; o < tail_orgs; ++o) {
    const auto servers_here = static_cast<std::size_t>(
        std::min(tail_cap, std::max(1.0, tail_sizes[o] * tail_universe)));
    // Sizable tail orgs overwhelmingly rent hosting capacity; running a
    // large own-AS farm is the exception.
    const bool hosted = rng.next_bool(servers_here > 40 ? 0.80 : 0.55);
    const std::string name = "org-" + std::to_string(o);
    static constexpr const char* kTlds[] = {"com", "net",   "org",  "de",
                                            "co.uk", "fr",  "nl",   "ru",
                                            "com.br", "pl", "it",   "cz"};
    const std::string domain =
        "site" + std::to_string(o) + "." + kTlds[rng.next_below(std::size(kTlds))];

    if (hosted) {
      const HostSlot slot = host_slots[host_sampler.sample(rng)];
      // Naming decides the administrative owner: tenants that keep their
      // own SOA cluster as themselves (step 1); hoster-managed tenants
      // cluster under the hoster (step 2).
      const double r = rng.next_double();
      const NamingScheme naming = r < 0.55 ? NamingScheme::kOwnSoa
                                 : r < 0.95 ? NamingScheme::kOutsourcedSoa
                                            : NamingScheme::kPartial;
      const std::uint32_t tenant =
          new_org(name, domain, OrgKind::kSite, naming, slot.as_index);
      orgs_[tenant].hosted_by = slot.hoster_org;
      const bool hoster_admin =
          naming != NamingScheme::kOwnSoa && slot.hoster_org.has_value();
      const std::uint32_t admin_org = hoster_admin ? *slot.hoster_org : tenant;
      for (std::size_t s = 0; s < servers_here; ++s) {
        ServerRecord& server = add_server(admin_org, slot.as_index, BlindReason::kNone);
        server.content_org = tenant;
        assign_roles(server, nullptr, 0.40, 0.11, 0.055);
        assign_metadata(server, naming, OrgKind::kSite);
        assign_activity(server, region_stable_p(slot.as_index));
      }
    } else {
      const std::uint32_t as_index =
          pick_with_room(own_as_candidates, servers_here + 4);
      const double r = rng.next_double();
      const NamingScheme naming = r < 0.94 ? NamingScheme::kOwnSoa
                                 : r < 0.98 ? NamingScheme::kOutsourcedSoa
                                            : NamingScheme::kPartial;
      const std::uint32_t org_index =
          new_org(name, domain, OrgKind::kSite, naming, as_index);
      // §3.3 category 4: small orgs far from the IXP are invisible.
      const bool far =
          ases_[as_index].locality == net::Locality::kGlobal &&
          geo::region_of(ases_[as_index].country) != geo::Region::kDE;
      // Satellite deployments: modest heterogenization in the tail
      // (Fig. 6b's cloud of small multi-AS orgs).
      std::vector<std::uint32_t> deployment{as_index};
      if (rng.next_bool(0.35)) {
        const std::size_t extra = 1 + rng.next_below(2);
        for (std::size_t e = 0; e < extra; ++e)
          deployment.push_back(
              pick_with_room(own_as_candidates, servers_here / 2 + 2));
      }
      for (std::size_t s = 0; s < servers_here; ++s) {
        std::uint32_t host = deployment[s % deployment.size()];
        if (as_allocated_[host] >= as_capacity_[host])
          host = pick_with_room(own_as_candidates, 8);
        const BlindReason blind = far && rng.next_bool(0.35)
                                      ? BlindReason::kSmallFarOrg
                                      : BlindReason::kNone;
        ServerRecord& server = add_server(org_index, host, blind);
        assign_roles(server, nullptr, 0.40, 0.11, 0.065);
        assign_metadata(server, naming, OrgKind::kSite);
        assign_activity(server, region_stable_p(host));
      }
    }
  }

  // ---------------------------------------------------------------------
  // Cloud tenants inherit a data center of their hosting cloud: their IPs
  // fall inside the cloud's published per-DC ranges (§4.2's analyses match
  // on exactly those ranges).
  // ---------------------------------------------------------------------
  for (std::uint32_t o = 0; o < orgs_.size(); ++o) {
    const OrgRecord& cloud = orgs_[o];
    if (cloud.kind != OrgKind::kCloud || cloud.data_centers.empty() ||
        !cloud.home_as)
      continue;
    double total_dc_weight = 0.0;
    for (const auto& dc : cloud.data_centers) total_dc_weight += dc.weight;
    for (ServerRecord& server : servers_) {
      if (server.host_as != *cloud.home_as || server.data_center >= 0) continue;
      double draw = rng.next_double() * total_dc_weight;
      for (std::size_t d = 0; d < cloud.data_centers.size(); ++d) {
        draw -= cloud.data_centers[d].weight;
        if (draw <= 0.0) {
          server.data_center = static_cast<std::int16_t>(d);
          break;
        }
      }
    }
  }

  // ---------------------------------------------------------------------
  // Finalize: traffic shares, front-end gateways, content-server lists.
  // ---------------------------------------------------------------------
  double assigned_share = 0.0;
  double tail_weight_total = 0.0;
  for (const OrgRecord& org : orgs_) {
    if (org.traffic_share > 0.0)
      assigned_share += org.traffic_share;
    else
      tail_weight_total += std::pow(static_cast<double>(org.server_count), 0.9);
  }
  const double tail_share_budget = std::max(0.0, 1.0 - assigned_share);
  for (OrgRecord& org : orgs_) {
    if (org.traffic_share == 0.0 && tail_weight_total > 0.0) {
      org.traffic_share = tail_share_budget *
                          std::pow(static_cast<double>(org.server_count), 0.9) /
                          tail_weight_total;
    }
  }

  // Front-end gateway IPs (Fig. 2): the head orgs' heaviest server IPs
  // represent racks / data-center front doors with outsized traffic.
  for (std::uint32_t o = 0; o < orgs_.size(); ++o) {
    const OrgRecord& org = orgs_[o];
    if (!org.named_head || org.server_count == 0) continue;
    const std::vector<std::uint32_t>& ids = org_servers_[o];
    const std::size_t gateways = org.server_count > 8 ? 2 : 1;
    for (std::size_t g = 0; g < gateways; ++g) {
      ServerRecord& server = servers_[ids[rng.next_below(ids.size())]];
      server.traffic_weight *= 90.0f;
      server.activity = Activity{ActivityKind::kStable, 1.0f, 0};
    }
  }

  // Stable servers carry most of the traffic (Fig. 5).
  for (ServerRecord& server : servers_) {
    if (server.activity.kind == ActivityKind::kStable) {
      server.traffic_weight *= 2.1f;
      const geo::Region region = geo::region_of(ases_[server.host_as].country);
      if (region == geo::Region::kUS || region == geo::Region::kRU)
        server.traffic_weight *= 2.0f;
    }
  }

  for (std::uint32_t s = 0; s < servers_.size(); ++s) {
    content_servers_[servers_[s].content_org].push_back(s);
    content_as_servers_[(std::uint64_t{servers_[s].content_org} << 32) |
                        servers_[s].host_as]
        .push_back(s);
  }

  visible_server_count_ = static_cast<std::size_t>(
      std::count_if(servers_.begin(), servers_.end(),
                    [](const ServerRecord& s) { return s.visible(); }));
}

const std::vector<std::uint32_t>& InternetModel::content_servers(
    std::uint32_t content_org) const {
  static const std::vector<std::uint32_t> kEmpty;
  const auto it = content_servers_.find(content_org);
  return it == content_servers_.end() ? kEmpty : it->second;
}

const std::vector<std::uint32_t>& InternetModel::org_servers(
    std::uint32_t org_index) const {
  static const std::vector<std::uint32_t> kEmpty;
  return org_index < org_servers_.size() ? org_servers_[org_index] : kEmpty;
}

// ---------------------------------------------------------------------------
// DNS zones and certificates
// ---------------------------------------------------------------------------

void InternetModel::build_dns_and_certs(util::Rng& rng) {
  for (int r = 0; r < 3; ++r) roots_.trust("root-ca-" + std::to_string(r));

  // Zone SOAs: own-SOA orgs are their own authority; outsourced zones
  // point at the hosting/DNS organization's domain.
  for (std::uint32_t o = 0; o < orgs_.size(); ++o) {
    const OrgRecord& org = orgs_[o];
    if (org.domain.empty()) continue;
    switch (org.naming) {
      case NamingScheme::kOwnSoa:
        dns_.add_soa(org.domain, org.domain);
        break;
      case NamingScheme::kOutsourcedSoa: {
        // Third-party DNS providers each run the zones of many customer
        // organizations (the provider population scales with the org
        // count so per-provider customer counts stay realistic).
        const std::size_t providers =
            std::max<std::size_t>(2, cfg_.org_count / 150);
        const dns::DnsName authority =
            org.hosted_by ? orgs_[*org.hosted_by].domain
                          : name_of("dns-" + std::to_string(o % providers) + ".net");
        dns_.add_soa(org.domain, authority);
        break;
      }
      case NamingScheme::kPartial:
        // No forward SOA; only per-IP reverse SOA entries below.
        break;
    }
  }

  for (std::uint32_t s = 0; s < servers_.size(); ++s) {
    ServerRecord& server = servers_[s];
    const OrgRecord& admin = orgs_[server.org];
    const OrgRecord& content = orgs_[server.content_org];

    if (server.has_ptr && !admin.domain.empty()) {
      const dns::DnsName hostname =
          name_of("s" + std::to_string(s) + "." + admin.domain.text());
      dns_.add_ptr(server.addr, hostname);
      dns_.add_a(hostname, server.addr);
    }
    if (server.has_reverse_soa && !admin.domain.empty()) {
      // A few reverse zones are still delegated to the RIRs — §2.4's
      // cleaning removes such authorities as carrying no signal.
      const dns::DnsName authority =
          rng.next_bool(0.06) ? name_of("ripe.net") : admin.domain;
      dns_.add_reverse_soa(server.addr, authority);
    }

    // Certificates for the HTTPS population.
    if ((server.roles & kRoleHttps) == 0) continue;
    if (server.tls != TlsBehavior::kValidStable &&
        server.tls != TlsBehavior::kInvalidCert)
      continue;

    x509::Certificate leaf;
    leaf.subject = name_of("www." + content.domain.text());
    leaf.alt_names.push_back(content.domain);
    // Hoster-administered certs cover several tenant names (§2.4).
    if (server.org != server.content_org && !admin.domain.empty())
      leaf.alt_names.push_back(admin.domain);
    leaf.key_usages = {x509::KeyUsage::kServerAuth};
    leaf.subject_key = "srv-key-" + std::to_string(s);
    const int ca = static_cast<int>(s % 8);
    leaf.issuer_key = "ca-int-" + std::to_string(ca);
    leaf.not_before = 0;
    leaf.not_after = 1'000'000;

    x509::Certificate intermediate;
    intermediate.subject = name_of("ca" + std::to_string(ca) + ".trust-services.net");
    intermediate.key_usages = {x509::KeyUsage::kServerAuth};
    intermediate.subject_key = "ca-int-" + std::to_string(ca);
    intermediate.issuer_key = "root-ca-" + std::to_string(ca % 3);
    intermediate.not_before = 0;
    intermediate.not_after = 1'000'000;

    if (server.tls == TlsBehavior::kInvalidCert) {
      // Break the chain in one of the paper's failure modes.
      switch (rng.next_below(4)) {
        case 0: leaf.not_after = 1; break;                        // expired
        case 1: intermediate.issuer_key = "rogue-root"; break;    // untrusted
        case 2: leaf.subject = name_of("srv.internalzone"); break; // bad domain
        default: leaf.key_usages = {x509::KeyUsage::kClientAuth}; break;
      }
    }
    cert_chains_.emplace(
        s, x509::CertificateChain{{std::move(leaf), std::move(intermediate)}});
  }
}

std::vector<x509::CertificateChain> InternetModel::fetch_chains(
    net::Ipv4Addr addr, int times, int week) const {
  const auto index = server_by_addr(addr);
  if (!index || times <= 0) return {};
  const ServerRecord& server = servers_[*index];
  switch (server.tls) {
    case TlsBehavior::kNoResponse:
      return {};
    case TlsBehavior::kValidStable:
    case TlsBehavior::kInvalidCert: {
      const auto it = cert_chains_.find(*index);
      if (it == cert_chains_.end()) return {};
      return std::vector<x509::CertificateChain>(
          static_cast<std::size_t>(times), it->second);
    }
    case TlsBehavior::kUnstable: {
      // Cloud churn: a different tenant answers every fetch.
      std::vector<x509::CertificateChain> fetches;
      for (int f = 0; f < times; ++f)
        fetches.push_back(make_unstable_chain(addr, week, f));
      return fetches;
    }
    case TlsBehavior::kSquatter:
      // Answers on 443 (SSH/VPN), but delivers no X.509 material.
      return std::vector<x509::CertificateChain>(
          static_cast<std::size_t>(times), x509::CertificateChain{});
  }
  return {};
}

x509::CertificateChain InternetModel::make_unstable_chain(net::Ipv4Addr addr,
                                                          int week,
                                                          int f) const {
  x509::Certificate leaf;
  const std::uint64_t tenant =
      util::mix64(cfg_.seed ^ addr.value() ^
                  (static_cast<std::uint64_t>(week) << 8) ^
                  static_cast<std::uint64_t>(f)) % 100000;
  leaf.subject = name_of("vm" + std::to_string(tenant) + ".cloudsites.com");
  leaf.alt_names.push_back(*leaf.subject.parent());
  leaf.key_usages = {x509::KeyUsage::kServerAuth};
  leaf.subject_key = "vm-key-" + std::to_string(tenant);
  leaf.issuer_key = "ca-int-0";
  leaf.not_before = 0;
  leaf.not_after = 1'000'000;
  x509::Certificate intermediate;
  intermediate.subject = name_of("ca0.trust-services.net");
  intermediate.key_usages = {x509::KeyUsage::kServerAuth};
  intermediate.subject_key = "ca-int-0";
  intermediate.issuer_key = "root-ca-0";
  intermediate.not_before = 0;
  intermediate.not_after = 1'000'000;
  return x509::CertificateChain{{std::move(leaf), std::move(intermediate)}};
}

const x509::CertificateChain* InternetModel::fetch_chain_view(
    net::Ipv4Addr addr, int fetch_index, int week,
    x509::CertificateChain& scratch) const {
  const auto index = server_by_addr(addr);
  if (!index || fetch_index < 0) return nullptr;
  const ServerRecord& server = servers_[*index];
  switch (server.tls) {
    case TlsBehavior::kNoResponse:
      return nullptr;
    case TlsBehavior::kValidStable:
    case TlsBehavior::kInvalidCert: {
      // Aliases model-owned storage: no copy per fetch.
      const auto it = cert_chains_.find(*index);
      return it == cert_chains_.end() ? nullptr : &it->second;
    }
    case TlsBehavior::kUnstable:
      scratch = make_unstable_chain(addr, week, fetch_index);
      return &scratch;
    case TlsBehavior::kSquatter:
      // Answers without X.509 material: a non-null pointer to an empty
      // chain, exactly like fetch_chains' empty-chain entries.
      scratch = x509::CertificateChain{};
      return &scratch;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Sites (the Alexa-style ranked list)
// ---------------------------------------------------------------------------

void InternetModel::build_sites(util::Rng& rng) {
  sites_.reserve(cfg_.site_count);

  // Head ranks: flagship domains of the named content players.
  const auto push_site = [&](const dns::DnsName& domain, std::uint32_t org) {
    sites_.push_back(Site{domain, org, std::nullopt});
  };
  // CDN delivery pool for outsourced sites (weights: Akamai dominates).
  std::vector<std::uint32_t> cdn_pool;
  std::vector<double> cdn_weights;
  for (const auto& [name, weight] :
       {std::pair<const char*, double>{"akamai", 6.0}, {"cdn77", 1.5},
        {"limelight", 1.0}, {"edgecast", 1.0}, {"cloudflare", 1.5}}) {
    if (const auto org = org_by_name(name)) {
      cdn_pool.push_back(*org);
      cdn_weights.push_back(weight);
    }
  }
  static constexpr const char* kFlagships[] = {
      "google", "vkontakte", "netflix", "rapidshare", "kartina", "eweka"};
  for (const char* name : kFlagships) {
    if (const auto org = org_by_name(name)) push_site(orgs_[*org].domain, *org);
  }
  if (const auto google = org_by_name("google")) {
    const dns::DnsName youtube = *dns::DnsName::parse("youtube.com");
    // youtube.com's SOA leads to google.com (§2.4's worked example).
    dns_.add_soa(youtube, orgs_[*google].domain);
    push_site(youtube, *google);
  }

  // Remaining ranks: tail orgs in slightly shuffled popularity order, then
  // long-tail vhost sites on hosting tenants.
  std::vector<std::uint32_t> tail;
  for (std::uint32_t o = 0; o < orgs_.size(); ++o) {
    if (!orgs_[o].named_head && orgs_[o].kind == OrgKind::kSite &&
        !orgs_[o].domain.empty() && orgs_[o].name.rfind("org-", 0) == 0)
      tail.push_back(o);
  }
  rng.shuffle(std::span<std::uint32_t>{tail});
  const util::WeightedSampler cdn_sampler{cdn_weights.empty()
                                              ? std::vector<double>{1.0}
                                              : cdn_weights};
  const auto maybe_cdn = [&]() -> std::optional<std::uint32_t> {
    // ~18% of sites outsource delivery to a CDN.
    if (cdn_pool.empty() || !rng.next_bool(0.12)) return std::nullopt;
    return cdn_pool[cdn_sampler.sample(rng)];
  };
  for (const std::uint32_t org : tail) {
    if (sites_.size() >= cfg_.site_count) break;
    sites_.push_back(Site{orgs_[org].domain, org, maybe_cdn()});
  }
  std::size_t vhost = 0;
  while (sites_.size() < cfg_.site_count && !tail.empty()) {
    const std::uint32_t org = tail[rng.next_below(tail.size())];
    // Distinct registrable domains whose zones the owning org runs.
    const dns::DnsName domain =
        name_of("v" + std::to_string(vhost++) + "-" + orgs_[org].domain.text());
    dns_.add_soa(domain, orgs_[org].naming == NamingScheme::kOwnSoa
                             ? orgs_[org].domain
                             : dns_.soa_of(orgs_[org].domain)
                                   .value_or(dns::SoaRecord{orgs_[org].domain,
                                                            orgs_[org].domain})
                                   .authority);
    sites_.push_back(Site{domain, org, maybe_cdn()});
  }

  // A records: each site resolves to up to 3 of its delivering org's
  // servers (what a generic, AS-agnostic resolver would return).
  // CDN-delivered sites resolve through a CNAME into the CDN's edge
  // namespace — the real-world tell that delivery is outsourced.
  for (std::size_t rank = 0; rank < sites_.size(); ++rank) {
    const auto& site = sites_[rank];
    const auto& servers = content_servers(site.cdn.value_or(site.org));
    if (servers.empty()) continue;
    dns::DnsName target = site.domain;
    if (site.cdn) {
      const OrgRecord& cdn = orgs_[*site.cdn];
      target = name_of("r" + std::to_string(rank) + ".edge." +
                       cdn.domain.text());
      dns_.add_cname(site.domain, target);
    }
    const std::size_t n = std::min<std::size_t>(3, servers.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t s = servers[rng.next_below(servers.size())];
      dns_.add_a(target, servers_[s].addr);
    }
  }
}

std::vector<net::Ipv4Addr> InternetModel::resolve_site(
    std::size_t site_rank, const dns::Resolver& resolver, int week) const {
  std::vector<net::Ipv4Addr> result;
  if (site_rank >= sites_.size()) return result;
  if (resolver.behavior != dns::ResolverBehavior::kOpen) return result;

  const std::uint32_t org =
      sites_[site_rank].cdn.value_or(sites_[site_rank].org);
  const auto& servers = content_servers(org);
  if (servers.empty()) return result;

  const auto resolver_as = as_index_of(resolver.asn);
  const geo::Region resolver_region =
      resolver_as ? geo::region_of(ases_[*resolver_as].country)
                  : geo::Region::kRoW;

  // CDN mapping: a resolver is first handed servers inside its own
  // network when the delivering organization has any there (this is how
  // the paper's sweep surfaces "private clusters", §3.3).
  if (resolver_as) {
    const auto it = content_as_servers_.find(
        (std::uint64_t{org} << 32) | *resolver_as);
    if (it != content_as_servers_.end()) {
      for (const std::uint32_t s : it->second) {
        if (result.size() >= 3) break;
        if (server_active(s, week)) result.push_back(servers_[s].addr);
      }
      if (!result.empty()) return result;
    }
  }

  // Deterministic scan order per (site, resolver).
  const std::uint64_t salt =
      util::mix64(cfg_.seed ^ (static_cast<std::uint64_t>(site_rank) << 20) ^
                  resolver.address.value());
  const std::size_t scan = std::min<std::size_t>(servers.size(), 48);
  for (std::size_t i = 0; i < scan && result.size() < 3; ++i) {
    const std::uint32_t s = servers[(salt + i * 0x9e37) % servers.size()];
    const ServerRecord& server = servers_[s];
    // DNS hands out operational servers: inactive ones are not in the
    // answer set that week.
    if (!server_active(s, week)) continue;
    const bool in_resolver_as =
        resolver_as && server.host_as == *resolver_as;
    switch (server.blind) {
      case BlindReason::kNone:
      case BlindReason::kSmallFarOrg:
        result.push_back(server.addr);
        break;
      case BlindReason::kPrivateCluster:
        // Private clusters answer only resolvers of their host AS.
        if (in_resolver_as) result.push_back(server.addr);
        break;
      case BlindReason::kFarRegion:
        // Region-aware delivery: surfaced to same-region resolvers only.
        if (geo::region_of(ases_[server.host_as].country) == resolver_region)
          result.push_back(server.addr);
        break;
      case BlindReason::kErrorHandler:
        break;  // never in a site's legitimate answer set
    }
  }
  return result;
}

std::vector<InternetModel::PublishedServer> InternetModel::published_servers(
    std::uint32_t org_index) const {
  std::vector<PublishedServer> out;
  if (org_index >= orgs_.size()) return out;
  const OrgRecord& org = orgs_[org_index];
  if (!org.publishes_server_ips) return out;
  if (org.home_as && !org.data_centers.empty()) {
    // Clouds publish per-DC address ranges: everything hosted inside the
    // cloud's AS is covered, tenants included.
    for (const ServerRecord& server : servers_) {
      if (server.host_as != *org.home_as) continue;
      out.push_back(PublishedServer{server.addr, server.data_center});
    }
    return out;
  }
  // CDN77-style: the org publishes its own server list.
  for (const std::uint32_t s : org_servers_[org_index])
    out.push_back(PublishedServer{servers_[s].addr, servers_[s].data_center});
  return out;
}

// ---------------------------------------------------------------------------
// Open resolvers (§2.3)
// ---------------------------------------------------------------------------

void InternetModel::build_resolvers(util::Rng& rng) {
  // Candidate mix tuned to the paper's 280K -> 25K usable filtering.
  for (std::size_t i = 0; i < cfg_.resolver_candidates; ++i) {
    dns::Resolver resolver;
    const auto as_index = static_cast<std::uint32_t>(rng.next_below(ases_.size()));
    const AsRecord& as = ases_[as_index];
    const PrefixRecord& prefix = prefixes_[as.first_prefix];
    resolver.address = prefix.prefix.address_at(
        prefix.prefix.size() - 2 - rng.next_below(prefix.prefix.size() / 8 + 1));
    resolver.asn = as.asn;
    const double r = rng.next_double();
    if (r < 0.09)
      resolver.behavior = dns::ResolverBehavior::kOpen;
    else if (r < 0.64)
      resolver.behavior = dns::ResolverBehavior::kClosed;
    else if (r < 0.84)
      resolver.behavior = dns::ResolverBehavior::kDelegating;
    else
      resolver.behavior = dns::ResolverBehavior::kLying;
    resolvers_.add(resolver);
  }
}

}  // namespace ixp::gen
