#include "gen/scale.hpp"

#include <algorithm>
#include <cmath>

#include "util/fnv.hpp"

namespace ixp::gen {

namespace {

std::size_t scaled(std::size_t paper_value, double factor,
                   std::size_t minimum = 1) {
  const double v = static_cast<double>(paper_value) * factor;
  return std::max<std::size_t>(minimum, static_cast<std::size_t>(std::llround(v)));
}

}  // namespace

ScaleConfig ScaleConfig::bench(double volume) {
  ScaleConfig cfg;
  // Populations and traffic shrink with `volume`; organizations shrink with
  // the server count so the servers-per-org distribution keeps its shape
  // (fractions like "orgs with >10 servers" are then scale-comparable).
  // Servers shrink less aggressively (sqrt-ish) than raw traffic because
  // the §5 analyses need a rich server population; at volume 1 the server
  // population is exactly the paper's.
  const double server_volume =
      std::min(1.0, std::max(volume, std::sqrt(volume) / 4.0));
  cfg.weekly_server_ips = scaled(cfg.weekly_server_ips, server_volume, 2'000);
  // Orgs shrink half as fast as servers: preserving the servers-per-org
  // head exactly would leave too few organizations (and too few
  // server-hosting ASes) to exercise the §5 analyses at small scale.
  cfg.org_count = scaled(cfg.org_count, std::min(1.0, 2.0 * server_volume), 300);
  cfg.client_pool = scaled(cfg.client_pool, volume, 10'000);
  cfg.background_ip_pool = scaled(cfg.background_ip_pool, volume, 20'000);
  cfg.site_count = scaled(cfg.site_count, server_volume, 2'000);
  // Resolver candidates are measurement infrastructure, not traffic:
  // keeping them at paper scale preserves the AS coverage that the §3.3
  // sweep's private-cluster discovery depends on.
  cfg.weekly_background_samples =
      scaled(cfg.weekly_background_samples, volume, 50'000);
  cfg.weekly_server_flows = scaled(cfg.weekly_server_flows, volume, 20'000);
  return cfg;
}

std::uint64_t ScaleConfig::fingerprint() const noexcept {
  util::Fnv1a h;
  h.mix(seed);
  h.mix(std::uint64_t{as_count});
  h.mix(std::uint64_t{prefix_count});
  h.mix(std::uint64_t{member_count});
  h.mix(std::uint64_t{member_joins});
  h.mix(std::uint64_t{org_count});
  h.mix(std::uint64_t{site_count});
  h.mix(std::uint64_t{resolver_candidates});
  h.mix(std::uint64_t{weekly_server_ips});
  h.mix(std::uint64_t{client_pool});
  h.mix(std::uint64_t{background_ip_pool});
  h.mix(weekly_background_samples);
  h.mix(weekly_server_flows);
  h.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(first_week)));
  h.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(last_week)));
  return h.value();
}

ScaleConfig ScaleConfig::test() {
  ScaleConfig cfg;
  cfg.as_count = 800;
  cfg.prefix_count = 4'000;
  cfg.member_count = 60;
  cfg.member_joins = 6;
  cfg.org_count = 120;
  cfg.site_count = 800;
  cfg.resolver_candidates = 400;
  cfg.weekly_server_ips = 2'500;
  cfg.client_pool = 8'000;
  cfg.background_ip_pool = 25'000;
  cfg.weekly_background_samples = 42'000;
  cfg.weekly_server_flows = 33'000;
  return cfg;
}

}  // namespace ixp::gen
