#include "gen/internet.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ixp::gen {

namespace {

/// Reserved /8s we never allocate from.
bool reserved_slash8(std::uint32_t top_octet) {
  return top_octet == 0 || top_octet == 10 || top_octet == 127 ||
         top_octet == 169 || top_octet == 172 || top_octet == 192 ||
         top_octet >= 224;
}

geo::CountryCode cc(const char* code) { return *geo::CountryCode::parse(code); }

}  // namespace

InternetModel::InternetModel(const ScaleConfig& cfg) : cfg_(cfg) {
  if (cfg_.as_count < cfg_.member_count + 10)
    throw std::invalid_argument{"InternetModel: as_count too small for members"};
  if (cfg_.prefix_count < cfg_.as_count)
    throw std::invalid_argument{"InternetModel: need >= 1 prefix per AS"};
  util::Rng rng{cfg_.seed};
  build_ases_and_prefixes(rng);
  build_topology(rng);
  build_orgs_and_servers(rng);
  build_dns_and_certs(rng);
  build_sites(rng);
  build_resolvers(rng);
}

// ---------------------------------------------------------------------------
// ASes, prefixes, geolocation, routing
// ---------------------------------------------------------------------------

void InternetModel::build_ases_and_prefixes(util::Rng& rng) {
  const auto& registry = geo::CountryRegistry::instance();
  std::vector<double> country_weights;
  country_weights.reserve(registry.size());
  for (const auto& entry : registry.entries())
    country_weights.push_back(entry.weight);
  const util::WeightedSampler world_countries{country_weights};

  // European-biased sampler for member ASes: the IXP's locale.
  std::vector<double> euro_weights = country_weights;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const auto code = registry.entries()[i].code;
    const auto region = geo::region_of(code);
    const bool europe =
        region == geo::Region::kDE ||
        code == cc("NL") || code == cc("FR") || code == cc("GB") ||
        code == cc("AT") || code == cc("CH") || code == cc("CZ") ||
        code == cc("PL") || code == cc("IT") || code == cc("ES") ||
        code == cc("SE") || code == cc("DK") || code == cc("BE");
    euro_weights[i] *= europe ? 8.0 : (region == geo::Region::kUS ? 1.0 : 0.4);
  }
  const util::WeightedSampler euro_countries{euro_weights};

  const auto pick_country = [&](bool european_bias) {
    const std::size_t index = european_bias ? euro_countries.sample(rng)
                                            : world_countries.sample(rng);
    return registry.entries()[index].code;
  };

  std::uint32_t next_asn = 100;
  const auto fresh_asn = [&] {
    // Skip ASNs reserved for catalog entities.
    while (used_asns_.count(next_asn) > 0) ++next_asn;
    used_asns_.insert(next_asn);
    return net::Asn{next_asn++};
  };

  // --- members -------------------------------------------------------------
  const auto add_as = [&](net::Asn asn, AsRole role, geo::CountryCode country,
                          bool member, int join_week) {
    AsRecord rec;
    rec.asn = asn;
    rec.role = role;
    rec.country = country;
    rec.member = member;
    rec.join_week = join_week;
    rec.entry_member = static_cast<std::uint32_t>(ases_.size());
    ases_.push_back(std::move(rec));
    used_asns_.insert(asn.value());
    asn_index_.emplace(asn, static_cast<std::uint32_t>(ases_.size() - 1));
    return static_cast<std::uint32_t>(ases_.size() - 1);
  };

  // Named org home ASes (members of the IXP).
  for (const OrgSpec& spec : named_org_specs()) {
    if (!spec.home_as || used_asns_.count(spec.home_as->value())) continue;
    AsRole role = AsRole::kContent;
    switch (spec.kind) {
      case OrgKind::kCdn: role = AsRole::kCdn; break;
      case OrgKind::kHoster: role = AsRole::kHoster; break;
      case OrgKind::kCloud: role = AsRole::kCloud; break;
      case OrgKind::kEyeballOps: role = AsRole::kEyeball; break;
      default: role = AsRole::kContent; break;
    }
    add_as(*spec.home_as, role, spec.home_country, spec.home_as_is_member, 0);
  }
  // Named eyeballs.
  for (const EyeballSpec& spec : named_eyeball_specs()) {
    if (used_asns_.count(spec.asn.value())) continue;
    add_as(spec.asn, AsRole::kEyeball, spec.country, spec.member, 0);
  }
  // The reseller member (§4.2).
  reseller_as_ = add_as(net::Asn{51088}, AsRole::kReseller, cc("DE"), true, 0);

  // Synthetic members up to member_count + the weekly joiners.
  const std::size_t named_members = std::count_if(
      ases_.begin(), ases_.end(), [](const AsRecord& a) { return a.member; });
  const std::size_t total_members = cfg_.member_count + cfg_.member_joins;
  std::size_t tier1_budget = 12;
  for (std::size_t i = named_members; i < total_members; ++i) {
    AsRole role;
    const double r = rng.next_double();
    if (tier1_budget > 0 && r < 0.03) {
      role = AsRole::kTier1;
      --tier1_budget;
    } else if (r < 0.18) {
      role = AsRole::kTransit;
    } else if (r < 0.62) {
      role = AsRole::kEyeball;
    } else if (r < 0.76) {
      role = AsRole::kHoster;
    } else if (r < 0.88) {
      role = AsRole::kContent;
    } else {
      role = AsRole::kEnterprise;
    }
    // Joiners (the last member_joins) are regional/far players joining
    // weeks 36..51, 1-2 per week.
    const bool joiner = i >= total_members - cfg_.member_joins;
    const int join_week =
        joiner ? cfg_.first_week + 1 +
                     static_cast<int>((i - (total_members - cfg_.member_joins)) *
                                      (cfg_.week_count() - 1) /
                                      std::max<std::size_t>(1, cfg_.member_joins))
               : 0;
    add_as(fresh_asn(), role, pick_country(!joiner), true, join_week);
  }

  // --- non-member ASes -------------------------------------------------------
  const std::size_t member_as_count = ases_.size();
  const std::size_t remaining = cfg_.as_count - member_as_count;
  const std::size_t reseller_customers =
      std::max<std::size_t>(4, remaining / 280);  // ~150 at paper scale
  const std::size_t near_count =
      static_cast<std::size_t>(0.489 * static_cast<double>(cfg_.as_count));
  const std::size_t global_count = remaining - near_count - reseller_customers;

  const auto pick_role = [&](bool near) {
    const double r = rng.next_double();
    if (near) {
      if (r < 0.45) return AsRole::kEyeball;
      if (r < 0.70) return AsRole::kEnterprise;
      if (r < 0.78) return AsRole::kHoster;
      if (r < 0.85) return AsRole::kContent;
      if (r < 0.93) return AsRole::kUniversity;
      if (r < 0.98) return AsRole::kTransit;
      return AsRole::kCdn;
    }
    if (r < 0.40) return AsRole::kEyeball;
    if (r < 0.72) return AsRole::kEnterprise;
    if (r < 0.80) return AsRole::kHoster;
    if (r < 0.86) return AsRole::kContent;
    if (r < 0.96) return AsRole::kUniversity;
    return AsRole::kTransit;
  };

  for (std::size_t i = 0; i < near_count; ++i)
    add_as(fresh_asn(), pick_role(true), pick_country(rng.next_bool(0.55)),
           false, 0);
  near_end_ = ases_.size();
  for (std::size_t i = 0; i < global_count; ++i)
    add_as(fresh_asn(), pick_role(false), pick_country(rng.next_bool(0.15)),
           false, 0);
  // Reseller customers: far-away networks with server infrastructure.
  static constexpr const char* kFarCodes[] = {"RU", "UA", "TR", "KZ", "GE",
                                              "RS", "BY", "AZ", "MD", "AM"};
  for (std::size_t i = 0; i < reseller_customers; ++i) {
    const auto country = cc(kFarCodes[rng.next_below(std::size(kFarCodes))]);
    add_as(fresh_asn(), AsRole::kResellerCustomer, country, false, 0);
  }
  member_end_ = member_as_count;

  // --- prefixes --------------------------------------------------------------
  // Shares by locality class (Table 3, prefixes row): members 10.1%,
  // distance-1 34.1%, distance>=2 55.8%.
  const std::size_t member_prefixes =
      static_cast<std::size_t>(0.101 * static_cast<double>(cfg_.prefix_count));
  const std::size_t near_prefixes =
      static_cast<std::size_t>(0.341 * static_cast<double>(cfg_.prefix_count));
  const std::size_t global_prefixes =
      cfg_.prefix_count - member_prefixes - near_prefixes;

  // Distribute a class budget across its ASes: Zipf-ish with 1 minimum.
  const auto distribute = [&](std::size_t begin, std::size_t end,
                              std::size_t budget) {
    const std::size_t n = end - begin;
    if (n == 0) return;
    std::vector<double> weights(n);
    for (std::size_t i = 0; i < n; ++i) {
      const AsRole role = ases_[begin + i].role;
      double base = 1.0;
      switch (role) {
        case AsRole::kTier1: base = 40.0; break;
        case AsRole::kTransit: base = 10.0; break;
        case AsRole::kEyeball: base = 8.0; break;
        case AsRole::kCloud: base = 6.0; break;
        case AsRole::kHoster: base = 5.0; break;
        case AsRole::kCdn: base = 4.0; break;
        case AsRole::kContent: base = 2.0; break;
        default: base = 1.0; break;
      }
      weights[i] = base * rng.next_pareto(1.0, 1.6);
    }
    double total = 0.0;
    for (const double w : weights) total += w;
    const std::size_t spare = budget > n ? budget - n : 0;
    for (std::size_t i = 0; i < n; ++i) {
      ases_[begin + i].prefix_count = static_cast<std::uint32_t>(
          1 + std::llround(static_cast<double>(spare) * weights[i] / total));
    }
  };
  distribute(0, member_end_, member_prefixes);
  distribute(member_end_, near_end_, near_prefixes);
  distribute(near_end_, ases_.size(), global_prefixes);

  // Allocate address space sequentially, skipping reserved /8s.
  std::uint32_t cursor = 0x01000000;  // 1.0.0.0
  const auto allocate = [&](std::uint8_t length) {
    const std::uint32_t size = 1u << (32 - length);
    // Align the cursor to the prefix size.
    cursor = (cursor + size - 1) & ~(size - 1);
    while (reserved_slash8(cursor >> 24)) {
      cursor = ((cursor >> 24) + 1) << 24;
    }
    const net::Ipv4Prefix prefix{net::Ipv4Addr{cursor}, length};
    cursor += size;
    return prefix;
  };

  const auto prefix_length_for = [&](AsRole role) -> std::uint8_t {
    const auto jitter = static_cast<std::uint8_t>(rng.next_below(3));
    switch (role) {
      case AsRole::kTier1: return static_cast<std::uint8_t>(17 + jitter);
      case AsRole::kEyeball: return static_cast<std::uint8_t>(18 + jitter);
      case AsRole::kCloud: return static_cast<std::uint8_t>(17 + jitter);
      case AsRole::kHoster: return static_cast<std::uint8_t>(19 + jitter);
      case AsRole::kCdn: return static_cast<std::uint8_t>(20 + jitter);
      case AsRole::kTransit: return static_cast<std::uint8_t>(19 + jitter);
      case AsRole::kContent: return static_cast<std::uint8_t>(21 + jitter);
      case AsRole::kReseller: return static_cast<std::uint8_t>(21 + jitter);
      case AsRole::kResellerCustomer: return static_cast<std::uint8_t>(21 + jitter);
      case AsRole::kUniversity: return static_cast<std::uint8_t>(21 + jitter);
      case AsRole::kEnterprise: return static_cast<std::uint8_t>(22 + jitter);
    }
    return 22;
  };

  prefixes_.reserve(cfg_.prefix_count + 16);
  as_capacity_.assign(ases_.size(), 0);
  as_allocated_.assign(ases_.size(), 0);
  for (std::uint32_t as_index = 0; as_index < ases_.size(); ++as_index) {
    AsRecord& as = ases_[as_index];
    as.first_prefix = static_cast<std::uint32_t>(prefixes_.size());
    for (std::uint32_t p = 0; p < as.prefix_count; ++p) {
      const net::Ipv4Prefix prefix = allocate(prefix_length_for(as.role));
      prefixes_.push_back(PrefixRecord{prefix, as_index});
      routing_.announce(prefix, as.asn);
      geo_.assign(prefix, as.country);
      as_capacity_[as_index] += prefix.size() - 2;
    }
  }

  // --- IXP fabric ------------------------------------------------------------
  for (std::uint32_t i = 0; i < member_end_; ++i) {
    const AsRecord& as = ases_[i];
    if (!as.member) continue;
    fabric::Member member;
    member.asn = as.asn;
    member.name = "member-" + as.asn.to_string();
    member.join_week = as.join_week;
    switch (as.role) {
      case AsRole::kTier1: member.kind = fabric::MemberKind::kTier1; break;
      case AsRole::kTransit: member.kind = fabric::MemberKind::kTransit; break;
      case AsRole::kEyeball: member.kind = fabric::MemberKind::kEyeball; break;
      case AsRole::kContent: member.kind = fabric::MemberKind::kContent; break;
      case AsRole::kCdn: member.kind = fabric::MemberKind::kCdn; break;
      case AsRole::kHoster: member.kind = fabric::MemberKind::kHoster; break;
      case AsRole::kCloud: member.kind = fabric::MemberKind::kCloud; break;
      case AsRole::kReseller: member.kind = fabric::MemberKind::kReseller; break;
      default: member.kind = fabric::MemberKind::kEnterprise; break;
    }
    member.port_speed_gbps = as.role == AsRole::kTier1 ? 100 : 10;
    ixp_.add_member(std::move(member));
  }

  // --- background / client activity weights ----------------------------------
  // Table 3, IPs row: A(L) 42.3%, A(M) 45.0%, A(G) 12.7%. Named eyeballs
  // take their catalog share; the remainder of each class budget spreads
  // Pareto-heavy across the class.
  double named_member_share = 0.0;
  double named_near_share = 0.0;
  for (const EyeballSpec& spec : named_eyeball_specs()) {
    for (auto& as : ases_) {
      if (as.asn != spec.asn) continue;
      as.background_weight = spec.ip_share;
      (spec.member ? named_member_share : named_near_share) += spec.ip_share;
      break;
    }
  }
  const auto spread_background = [&](std::size_t begin, std::size_t end,
                                     double budget) {
    std::vector<double> weights(end - begin, 0.0);
    double total = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      if (ases_[i].background_weight > 0.0) continue;  // named, already set
      double base = ases_[i].role == AsRole::kEyeball ? 6.0 : 1.0;
      if (ases_[i].role == AsRole::kUniversity) base = 2.0;
      // Country factor: the giant non-European host populations (Table 2's
      // "all IPs" head is US, then DE, then CN) concentrate in fewer,
      // larger ASes than the European member fabric.
      switch (geo::region_of(ases_[i].country)) {
        case geo::Region::kUS: base *= 2.6; break;
        case geo::Region::kCN: base *= 2.2; break;
        case geo::Region::kRU: base *= 1.6; break;
        default: break;
      }
      const double w = base * rng.next_pareto(1.0, 1.5);
      weights[i - begin] = w;
      total += w;
    }
    if (total <= 0.0) return;
    for (std::size_t i = begin; i < end; ++i) {
      if (weights[i - begin] == 0.0) continue;
      ases_[i].background_weight = budget * weights[i - begin] / total;
    }
  };
  spread_background(0, member_end_, 0.423 - named_member_share);
  spread_background(member_end_, near_end_, 0.450 - named_near_share);
  spread_background(near_end_, ases_.size(), 0.127);

  // Clients live in eyeball ASes, proportional to background activity.
  double total_client_weight = 0.0;
  for (auto& as : ases_) {
    if (as.role == AsRole::kEyeball || as.role == AsRole::kTier1) {
      as.client_weight = as.background_weight;
      total_client_weight += as.client_weight;
    }
  }

  // Client address slots: allocated per prefix *proportionally to the
  // AS's client weight* (an even per-address split would park most
  // clients in far-away eyeballs), drawn from the upper 3/4 of the
  // prefix (the lower quarter is reserved for server allocation).
  std::uint64_t cumulative = 0;
  const double slot_budget = 3.0 * static_cast<double>(cfg_.client_pool);
  for (std::uint32_t p = 0; p < prefixes_.size(); ++p) {
    const AsRecord& as = ases_[prefixes_[p].as_index];
    if (as.client_weight <= 0.0 || total_client_weight <= 0.0) continue;
    const double share =
        as.client_weight / total_client_weight / as.prefix_count;
    const std::uint64_t capacity = std::min<std::uint64_t>(
        prefixes_[p].prefix.size() * 3 / 4,
        std::max<std::uint64_t>(2, static_cast<std::uint64_t>(share * slot_budget)));
    client_prefix_ids_.push_back(p);
    cumulative += capacity;
    client_capacity_cum_.push_back(cumulative);
  }
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

void InternetModel::build_topology(util::Rng& rng) {
  // Collect member indices; transit-ish members attract more customers.
  std::vector<std::uint32_t> member_indices;
  std::vector<std::uint32_t> attach_indices;  // members that take customers
  std::vector<double> member_attract;
  for (std::uint32_t i = 0; i < member_end_; ++i) {
    if (!ases_[i].member) continue;
    member_indices.push_back(i);
    // Weekly joiners are fresh regional members: nobody routes through
    // them yet, so they must not become anyone's entry point.
    if (ases_[i].join_week > cfg_.first_week) continue;
    attach_indices.push_back(i);
    double w = 1.0;
    switch (ases_[i].role) {
      case AsRole::kTier1: w = 60.0; break;
      case AsRole::kTransit: w = 18.0; break;
      case AsRole::kEyeball: w = 3.0; break;
      default: w = 1.0; break;
    }
    member_attract.push_back(w);
  }
  const util::WeightedSampler member_sampler{member_attract};

  // Tier-1 mesh (cosmetic but keeps the graph realistic).
  std::vector<std::uint32_t> tier1s;
  for (const std::uint32_t m : member_indices)
    if (ases_[m].role == AsRole::kTier1) tier1s.push_back(m);
  for (std::size_t i = 0; i < tier1s.size(); ++i)
    for (std::size_t j = i + 1; j < tier1s.size(); ++j)
      graph_.add_link(ases_[tier1s[i]].asn, ases_[tier1s[j]].asn);
  for (const std::uint32_t m : member_indices) graph_.add_as(ases_[m].asn);

  // Non-member ASes created in the named head block (e.g. Chinanet, which
  // exchanges traffic with members without being one) attach like near
  // ASes and need a proper entry member.
  for (std::uint32_t i = 0; i < member_end_; ++i) {
    if (ases_[i].member) continue;
    const std::uint32_t m = attach_indices[member_sampler.sample(rng)];
    graph_.add_link(ases_[i].asn, ases_[m].asn);
    ases_[i].entry_member = m;
  }

  // Near ASes attach to 1-3 members.
  std::vector<std::uint32_t> near_indices;
  for (std::uint32_t i = static_cast<std::uint32_t>(member_end_);
       i < near_end_; ++i) {
    const std::uint32_t upstreams = 1 + static_cast<std::uint32_t>(rng.next_below(3));
    std::uint32_t entry = 0;
    for (std::uint32_t u = 0; u < upstreams; ++u) {
      const std::uint32_t m = attach_indices[member_sampler.sample(rng)];
      graph_.add_link(ases_[i].asn, ases_[m].asn);
      if (u == 0) entry = m;
    }
    ases_[i].entry_member = entry;
    near_indices.push_back(i);
  }

  // Global ASes attach to 1-2 near ASes (never directly to members).
  for (std::uint32_t i = static_cast<std::uint32_t>(near_end_);
       i < ases_.size(); ++i) {
    if (ases_[i].role == AsRole::kResellerCustomer) {
      // Customers reach the fabric through the reseller's port but are
      // NOT members and NOT adjacent to any member in the BGP graph:
      // they attach to an intermediate (the reseller's backhaul).
      const std::uint32_t via =
          near_indices[rng.next_below(near_indices.size())];
      graph_.add_link(ases_[i].asn, ases_[via].asn);
      ases_[i].entry_member = reseller_as_;
      continue;
    }
    const std::uint32_t parents = 1 + static_cast<std::uint32_t>(rng.next_below(2));
    std::uint32_t entry = 0;
    for (std::uint32_t u = 0; u < parents; ++u) {
      const std::uint32_t parent =
          near_indices[rng.next_below(near_indices.size())];
      graph_.add_link(ases_[i].asn, ases_[parent].asn);
      if (u == 0) entry = ases_[parent].entry_member;
    }
    ases_[i].entry_member = entry;
  }

  // Locality classification from the graph.
  std::vector<net::Asn> member_asns;
  for (const std::uint32_t m : member_indices) member_asns.push_back(ases_[m].asn);
  const auto locality = graph_.classify(member_asns);
  for (auto& as : ases_) {
    const auto it = locality.find(as.asn);
    as.locality = it == locality.end() ? net::Locality::kGlobal : it->second;
  }
}

// ---------------------------------------------------------------------------
// Server address allocation
// ---------------------------------------------------------------------------

net::Ipv4Addr InternetModel::allocate_server_addr(std::uint32_t as_index,
                                                  util::Rng& rng) {
  AsRecord& as = ases_[as_index];
  // Walk the AS's prefixes round-robin, taking offsets from the low
  // quarter (clients use the upper 3/4). Collisions are resolved by
  // probing forward.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::uint32_t p =
        as.first_prefix + static_cast<std::uint32_t>(rng.next_below(as.prefix_count));
    const net::Ipv4Prefix prefix = prefixes_[p].prefix;
    const std::uint64_t quarter = std::max<std::uint64_t>(4, prefix.size() / 4);
    const std::uint64_t offset = 1 + rng.next_below(quarter - 2);
    const net::Ipv4Addr addr = prefix.address_at(offset);
    if (server_index_.count(addr) == 0) return addr;
  }
  // Dense AS: exhaustive scan of all prefixes' low quarters, then spill
  // into the client range (a server farm can fill a small AS entirely).
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint32_t p = as.first_prefix;
         p < as.first_prefix + as.prefix_count; ++p) {
      const net::Ipv4Prefix prefix = prefixes_[p].prefix;
      const std::uint64_t quarter = std::max<std::uint64_t>(4, prefix.size() / 4);
      const std::uint64_t begin = pass == 0 ? 1 : quarter;
      const std::uint64_t end = pass == 0 ? quarter : prefix.size() - 1;
      for (std::uint64_t offset = begin; offset < end; ++offset) {
        const net::Ipv4Addr addr = prefix.address_at(offset);
        if (server_index_.count(addr) == 0) return addr;
      }
    }
  }
  throw std::runtime_error{"allocate_server_addr: AS address space exhausted"};
}

geo::CountryCode InternetModel::server_country(const ServerRecord& server) const {
  if (server.data_center >= 0) {
    const auto& dcs = orgs_[server.org].data_centers;
    if (static_cast<std::size_t>(server.data_center) < dcs.size())
      return dcs[static_cast<std::size_t>(server.data_center)].country;
  }
  return ases_[server.host_as].country;
}

bool InternetModel::server_active(std::uint32_t server_index, int week) const {
  const ServerRecord& server = servers_[server_index];
  // Hurricane-Sandy case study: the cloud provider's us-east servers all
  // but vanish in week 44 (§4.2).
  if (week == 44 && server.data_center >= 0 && sandy_org_ &&
      server.org == *sandy_org_) {
    const auto& dc = orgs_[server.org].data_centers
        [static_cast<std::size_t>(server.data_center)];
    if (dc.name == "us-east") {
      const std::uint64_t h = util::mix64(cfg_.seed ^ (0x5a4dull << 40) ^
                                          (std::uint64_t{server_index} << 8));
      return (h & 0xff) < 12;  // ~5% survive
    }
  }
  switch (server.activity.kind) {
    case ActivityKind::kStable:
      return true;
    case ActivityKind::kRecurrent: {
      const std::uint64_t h = util::mix64(
          cfg_.seed ^ (std::uint64_t{server_index} << 16) ^
          static_cast<std::uint64_t>(week));
      double p = server.activity.p;
      if (week == 44) p *= 0.90;  // the global week-44 dip of Fig. 4a
      return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
    }
    case ActivityKind::kArrival: {
      if (week < server.activity.first_week) return false;
      if (week == server.activity.first_week) return true;
      const std::uint64_t h = util::mix64(
          cfg_.seed ^ 0xa11ull ^ (std::uint64_t{server_index} << 16) ^
          static_cast<std::uint64_t>(week));
      return static_cast<double>(h >> 11) * 0x1.0p-53 < server.activity.p;
    }
  }
  return false;
}

net::Ipv4Addr InternetModel::client_addr(std::uint64_t k) const {
  if (client_capacity_cum_.empty()) return net::Ipv4Addr{0};
  const std::uint64_t total = client_capacity_cum_.back();
  const std::uint64_t slot = util::mix64(cfg_.seed ^ 0xc11e47ull ^ k) % total;
  const auto it = std::upper_bound(client_capacity_cum_.begin(),
                                   client_capacity_cum_.end(), slot);
  const std::size_t i =
      static_cast<std::size_t>(it - client_capacity_cum_.begin());
  const std::uint64_t before = i == 0 ? 0 : client_capacity_cum_[i - 1];
  const net::Ipv4Prefix prefix = prefixes_[client_prefix_ids_[i]].prefix;
  const std::uint64_t offset = prefix.size() / 4 + (slot - before);
  return prefix.address_at(std::min(offset, prefix.size() - 2));
}

std::optional<std::uint32_t> InternetModel::server_by_addr(
    net::Ipv4Addr addr) const {
  const auto it = server_index_.find(addr);
  if (it == server_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint32_t> InternetModel::as_index_of(net::Asn asn) const {
  const auto it = asn_index_.find(asn);
  if (it == asn_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint32_t> InternetModel::org_by_name(
    std::string_view name) const {
  const auto it = org_index_.find(std::string{name});
  if (it == org_index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace ixp::gen
