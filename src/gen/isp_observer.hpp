// The orthogonal vantage point of §3.1: a large European Tier-1 ISP whose
// HTTP/DNS logs (Bro-processed in the paper) reveal a different
// cross-section of the same server universe.
//
// The paper uses this dataset for two checks: (a) the ISP sees only ~45K
// server IPs that the IXP does not, and (b) every server IP seen by both
// is confirmed to really be a server. The observer samples the model's
// servers with visibility-dependent probabilities — notably, it can see a
// slice of the servers that are blind at the IXP (private clusters its
// customers talk to internally, far-region deployments reached over its
// transit backbone).
#pragma once

#include <unordered_set>
#include <vector>

#include "gen/internet.hpp"

namespace ixp::gen {

class IspObserver {
 public:
  explicit IspObserver(const InternetModel& model) : model_(&model) {}

  /// Server IPs present in the ISP's logs for `week` (deterministic).
  [[nodiscard]] std::unordered_set<net::Ipv4Addr> observed_servers(
      int week) const;

 private:
  const InternetModel* model_;
};

}  // namespace ixp::gen
