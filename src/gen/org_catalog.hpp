// Organization catalog.
//
// The head of every distribution the paper reports is populated by *named*
// Internet players (Table 2, §4.2, §5): Akamai (AS20940), Google (AS15169),
// VKontakte (AS47541), the big European hosters, CloudFlare, Amazon
// EC2/CloudFront, Netflix-on-EC2, resellers, and CDNs without an ASN such
// as CDN77. The catalog seeds the synthetic Internet with these entities —
// with the paper's ASNs and approximate footprints — so the reproduced
// tables line up row-by-row; the remaining org_count organizations form a
// Zipf tail of hosting tenants, small CDNs, and content sites.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geo/country.hpp"
#include "net/ipv4.hpp"

namespace ixp::gen {

enum class OrgKind : std::uint8_t {
  kCdn,         // distributed caches, often in third-party eyeball ASes
  kContent,     // content provider (search, social, video)
  kHoster,      // web hosting: hosts many tenant orgs in its own AS
  kCloud,       // IaaS with named data-center locations
  kStreamer,    // video streamer (often deployed on a cloud)
  kOneClick,    // one-click hoster
  kEyeballOps,  // network operator running server infrastructure
  kSite,        // ordinary content site (tail)
};

/// How an organization names its servers — determines which clustering
/// step (§5.1) can claim them.
enum class NamingScheme : std::uint8_t {
  kOwnSoa,        // hostname SOA and URI authority -> org domain (step 1)
  kOutsourcedSoa, // SOA points at a third-party DNS provider (step 2)
  kPartial,       // only partial SOA info (step 3; deep-inside-ISP deploys)
};

/// Deployment blueprint for one organization.
struct OrgSpec {
  std::string name;    // "akamai" — also the DNS domain label
  std::string tld = "com";
  OrgKind kind = OrgKind::kSite;
  NamingScheme naming = NamingScheme::kOwnSoa;
  std::optional<net::Asn> home_as;  // nullopt: org without an ASN (CDN77 case)
  bool home_as_is_member = false;
  geo::CountryCode home_country;

  /// Servers visible in IXP traffic, as a fraction of the total server
  /// universe (paper scale: Akamai 28K / 1.8M, etc.).
  double visible_server_share = 0.0;
  /// Additional servers that exist but are invisible at the IXP:
  /// private in-AS clusters and far-away regional deployments (§3.3).
  double blind_server_share = 0.0;
  /// Number of distinct ASes the visible deployment spreads over.
  std::size_t visible_as_spread = 1;
  std::size_t blind_as_spread = 0;

  /// Share of total weekly *server* traffic this org attracts.
  double traffic_share = 0.0;

  double https_fraction = 0.10;     // servers also speaking HTTPS (port 443)
  double rtmp_fraction = 0.0;       // multi-purpose servers (port 1935)
  double dual_role_fraction = 0.0;  // servers that also act as clients

  /// Fraction of this org's traffic that leaves via IXP links other than
  /// its own member link (0 for orgs whose servers all sit in/behind the
  /// home AS). Drives Figure 7.
  double indirect_link_fraction = 0.0;

  /// Relative weight for hosting *tenant* (tail) organizations' servers in
  /// this org's AS — how fig 6(c)'s "one AS, hundreds of orgs" arises.
  double tenant_capacity = 0.0;

  /// Cloud/CDN data-center locations with relative sizes; empty for
  /// single-footprint orgs. Clouds publish these together with their IP
  /// ranges (§4.2 uses exactly that for the EC2 and hurricane analyses).
  struct DataCenter {
    std::string name;  // "us-east", "eu-ireland", ...
    geo::CountryCode country;
    double weight = 1.0;
  };
  std::vector<DataCenter> data_centers;

  /// True for players that publish their server IP lists / ranges
  /// (CDN77, EC2 public ranges) — usable as clustering ground truth.
  bool publishes_server_ips = false;
};

/// The named head entities. `total_orgs`/`total_servers` let the catalog
/// stay consistent at any scale (shares are converted to counts later).
[[nodiscard]] std::vector<OrgSpec> named_org_specs();

/// Named eyeball/operator ASes (Table 2's "All IPs" network column) with
/// the paper's ASNs where known. These are not server organizations but
/// anchor the background-traffic head.
struct EyeballSpec {
  std::string name;
  net::Asn asn;
  geo::CountryCode country;
  double ip_share;       // share of weekly background IPs
  bool member = true;    // all big eyeballs peer at the IXP
};

[[nodiscard]] std::vector<EyeballSpec> named_eyeball_specs();

}  // namespace ixp::gen
