#include "gen/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/zipf.hpp"

namespace ixp::gen {

namespace {

// Stream-category sample fractions (Figure 1's filtering percentages).
constexpr double kNonIpv4Fraction = 0.004;
constexpr double kNonMemberLocalFraction = 0.006;
constexpr double kNonTcpUdpFraction = 0.0045;

// Weekly traffic growth: 11.9 PB/day in week 35 -> 14.5 PB/day in week 51.
double growth_factor(int week) {
  return 1.0 + 0.0137 * static_cast<double>(week - 35);
}

std::span<const std::byte> as_bytes(const char* text, std::size_t len) {
  return {reinterpret_cast<const std::byte*>(text), len};
}

}  // namespace

Workload::Workload(const InternetModel& model) : model_(&model) {
  const auto& prefixes = model.prefixes();
  const auto& ases = model.ases();
  const std::size_t pool = model.config().background_ip_pool;

  // Two weightings per prefix: the *IP share* (how many distinct hosts a
  // prefix exposes; Table 3's IPs row) and the *byte share* (how much
  // traffic those hosts exchange; Table 3's traffic row). Member-AS hosts
  // are individually much busier: 42.3% of the IPs carry 67.3% of the
  // traffic, while distance->=2 hosts are numerous but quiet.
  const auto byte_factor = [](net::Locality locality) {
    switch (locality) {
      case net::Locality::kMember: return 1.85;
      case net::Locality::kNear: return 0.72;
      default: return 0.38;
    }
  };
  std::vector<double> prefix_weights(prefixes.size());
  std::vector<double> byte_weights(prefixes.size());
  double total_weight = 0.0;
  for (std::size_t p = 0; p < prefixes.size(); ++p) {
    const AsRecord& as = ases[prefixes[p].as_index];
    prefix_weights[p] =
        as.prefix_count > 0 ? as.background_weight / as.prefix_count : 0.0;
    byte_weights[p] = prefix_weights[p] * byte_factor(as.locality);
    total_weight += prefix_weights[p];
  }
  prefix_sampler_ = std::make_unique<util::WeightedSampler>(byte_weights);
  prefix_active_hosts_.resize(prefixes.size());
  background_cum_.resize(prefixes.size());
  std::uint64_t cumulative = 0;
  for (std::size_t p = 0; p < prefixes.size(); ++p) {
    const double share =
        total_weight > 0.0 ? prefix_weights[p] / total_weight : 0.0;
    const auto hosts = static_cast<std::uint32_t>(std::max<double>(
        2.0, std::min<double>(static_cast<double>(prefixes[p].prefix.size()) * 0.6,
                              share * static_cast<double>(pool))));
    prefix_active_hosts_[p] = hosts;
    cumulative += hosts;
    background_cum_[p] = cumulative;
  }

  for (std::uint32_t rank = 0; rank < model.sites().size(); ++rank) {
    const auto& site = model.sites()[rank];
    org_sites_[site.cdn.value_or(site.org)].push_back(rank);
  }

  for (const fabric::Member& member : model.ixp().all_members()) {
    if (member.join_week > model.config().first_week) continue;
    if (member.kind == fabric::MemberKind::kTier1 ||
        member.kind == fabric::MemberKind::kTransit)
      transit_macs_.push_back(member.port_mac);
  }

  // Offsite damping per org: choose the factor so that the org's
  // IXP-visible traffic splits home:offsite = (1-f):f where f is the
  // catalog's indirect_link_fraction, given the home/offsite server
  // counts. Orgs without offsite servers keep factor 1 and get their
  // indirection from transit detours instead.
  org_offsite_damping_.assign(model.orgs().size(), 1.0);
  org_has_offsite_.assign(model.orgs().size(), false);
  std::vector<double> home_weight(model.orgs().size(), 0.0);
  std::vector<double> offsite_weight(model.orgs().size(), 0.0);
  for (const ServerRecord& server : model.servers()) {
    if (!server.visible()) continue;
    const OrgRecord& org = model.orgs()[server.org];
    const bool home = org.home_as && server.host_as == *org.home_as;
    (home ? home_weight : offsite_weight)[server.org] += server.traffic_weight;
  }
  for (std::uint32_t o = 0; o < model.orgs().size(); ++o) {
    if (offsite_weight[o] <= 0.0) continue;
    org_has_offsite_[o] = true;
    const double f = model.orgs()[o].indirect_link_fraction;
    if (f <= 0.0 || f >= 1.0 || home_weight[o] <= 0.0) continue;
    org_offsite_damping_[o] =
        (home_weight[o] / offsite_weight[o]) * (f / (1.0 - f));
  }
}

std::pair<net::Ipv4Addr, std::uint32_t> Workload::background_pick(
    util::Rng& rng) const {
  // Prefix by AS activity weight (Table 3's IP shares), then one of the
  // prefix's deterministic active hosts.
  const std::size_t p = prefix_sampler_->sample(rng);
  const std::uint64_t j = rng.next_below(prefix_active_hosts_[p]);
  const net::Ipv4Prefix prefix = model_->prefixes()[p].prefix;
  const std::uint64_t h = util::mix64(
      model_->config().seed ^ (static_cast<std::uint64_t>(p) << 24) ^ j);
  return {prefix.address_at(1 + h % (prefix.size() - 2)),
          model_->prefixes()[p].as_index};
}

std::pair<net::Ipv4Addr, std::uint32_t> Workload::client_pick(
    util::Rng& rng) const {
  const InternetModel& model = *model_;
  const std::uint64_t k = rng.next_below(model.config().client_pool);
  const std::uint64_t total = model.client_capacity_cum_.back();
  const std::uint64_t slot = util::mix64(model.config().seed ^ 0xc11e47ull ^ k) % total;
  const auto it = std::upper_bound(model.client_capacity_cum_.begin(),
                                   model.client_capacity_cum_.end(), slot);
  const auto i = static_cast<std::size_t>(it - model.client_capacity_cum_.begin());
  const std::uint64_t before = i == 0 ? 0 : model.client_capacity_cum_[i - 1];
  const std::uint32_t prefix_id = model.client_prefix_ids_[i];
  const net::Ipv4Prefix prefix = model.prefixes()[prefix_id].prefix;
  const std::uint64_t offset = prefix.size() / 4 + (slot - before);
  return {prefix.address_at(std::min(offset, prefix.size() - 2)),
          model.prefixes()[prefix_id].as_index};
}

const dns::DnsName& Workload::flow_host(const ServerRecord& server,
                                        util::Rng& rng) const {
  const auto it = org_sites_.find(server.content_org);
  if (it == org_sites_.end() || it->second.empty())
    return model_->orgs()[server.content_org].domain;
  // Strong head bias towards the org's most popular sites (rank-driven
  // request popularity; keeps the long tail of sites rarely observable,
  // which the §3.3 Alexa-recovery percentages depend on).
  const double u = rng.next_double();
  const auto pick = static_cast<std::size_t>(
      u * u * u * u * static_cast<double>(it->second.size()));
  return model_->sites()[it->second[std::min(pick, it->second.size() - 1)]].domain;
}

void Workload::apply_routing_indirection(sflow::FrameSpec& spec,
                                         const ServerRecord& server,
                                         bool response_dir,
                                         util::Rng& rng) const {
  if (transit_macs_.empty()) return;
  const OrgRecord& org = model_->orgs()[server.org];
  if (org.indirect_link_fraction <= 0.0) return;
  if (!org.home_as || server.host_as != *org.home_as) return;  // already indirect
  // Orgs with third-party deployments get their indirection from server
  // placement; the transit detour models single-footprint players
  // (CloudFlare's data centers, EC2) whose bytes still arrive over other
  // members' ports at peak times (§5.3).
  if (org_has_offsite_[server.org]) return;
  if (!rng.next_bool(org.indirect_link_fraction)) return;
  const sflow::MacAddr detour =
      transit_macs_[rng.next_below(transit_macs_.size())];
  (response_dir ? spec.src_mac : spec.dst_mac) = detour;
}

net::Ipv4Addr Workload::background_addr(std::uint64_t k) const {
  const std::uint64_t total = background_cum_.back();
  const std::uint64_t slot = k % total;
  const auto it =
      std::upper_bound(background_cum_.begin(), background_cum_.end(), slot);
  const auto p = static_cast<std::size_t>(it - background_cum_.begin());
  const std::uint64_t before = p == 0 ? 0 : background_cum_[p - 1];
  const std::uint64_t j = slot - before;
  const net::Ipv4Prefix prefix = model_->prefixes()[p].prefix;
  // Deterministic "active host" for slot (p, j).
  const std::uint64_t h =
      util::mix64(model_->config().seed ^ (static_cast<std::uint64_t>(p) << 24) ^ j);
  return prefix.address_at(1 + h % (prefix.size() - 2));
}

sflow::MacAddr Workload::entry_mac(std::uint32_t as_index, int week) const {
  const AsRecord& as = model_->ases()[as_index];
  const AsRecord& entry = model_->ases()[as.entry_member];
  if (entry.member && entry.join_week <= week)
    return fabric::Ixp::port_mac_for(entry.asn);
  // Entry member not on the fabric yet (a later joiner): until it joins,
  // its traffic reaches the IXP through a transit member.
  if (!transit_macs_.empty())
    return transit_macs_[entry.asn.value() % transit_macs_.size()];
  return sflow::MacAddr::from_id(0xD00D00000000ULL + entry.asn.value());
}

std::vector<std::uint32_t> Workload::active_visible_servers(int week) const {
  std::vector<std::uint32_t> active;
  const auto& servers = model_->servers();
  active.reserve(servers.size() / 2);
  for (std::uint32_t s = 0; s < servers.size(); ++s) {
    if (!servers[s].visible()) continue;
    if (model_->server_active(s, week)) active.push_back(s);
  }
  return active;
}

struct Workload::ActiveSet {
  std::vector<std::uint32_t> servers;
  std::vector<double> weights;
  std::vector<std::uint32_t> dual_initiators;
};

WeeklyTruth Workload::generate_week(int week, const SampleSink& sink) const {
  const InternetModel& model = *model_;
  const ScaleConfig& cfg = model.config();
  util::Rng rng = util::Rng{cfg.seed}.fork(0x3ee4 + static_cast<std::uint64_t>(week));

  WeeklyTruth truth;
  truth.week = week;

  // --- active servers and their sampling weights ---------------------------
  ActiveSet active;
  active.servers = active_visible_servers(week);
  truth.active_visible_servers = active.servers.size();

  // Per-org total visible weight (constant denominator so that an org's
  // traffic scales with how many of its servers are active — EC2/Netflix
  // growth and the hurricane dip need this).
  std::vector<double> org_total(model.orgs().size(), 0.0);
  for (const ServerRecord& server : model.servers()) {
    if (server.visible()) org_total[server.org] += server.traffic_weight;
  }
  active.weights.reserve(active.servers.size());
  for (const std::uint32_t s : active.servers) {
    const ServerRecord& server = model.servers()[s];
    const OrgRecord& org = model.orgs()[server.org];
    const double denom = org_total[server.org];
    double weight =
        denom > 0.0 ? org.traffic_share * server.traffic_weight / denom : 0.0;
    // In-ISP deployments serve their host network internally; only a
    // damped share of their traffic crosses the IXP.
    if (org.home_as && server.host_as != *org.home_as)
      weight *= org_offsite_damping_[server.org];
    active.weights.push_back(weight);
    if (server.dual_role) active.dual_initiators.push_back(s);
  }
  const util::WeightedSampler server_sampler{active.weights};

  // --- sample emission helpers ----------------------------------------------
  sflow::FlowSample sample;
  sample.sampling_rate = sflow::kPaperSamplingRate;
  std::uint32_t sequence = 0;
  const auto emit = [&](const sflow::SampledFrame& frame,
                        std::uint32_t ingress_port) {
    sample.sequence = sequence++;
    sample.source_port = ingress_port;
    sample.frame = frame;
    sink(sample);
    ++truth.total_samples;
  };

  const auto ingress_port_of = [&](sflow::MacAddr mac) -> std::uint32_t {
    const fabric::Member* member = model.ixp().member_by_mac(mac);
    return member != nullptr ? member->port_id : 0;
  };

  const double growth = growth_factor(week);
  const auto background_n =
      static_cast<std::uint64_t>(growth * static_cast<double>(cfg.weekly_background_samples));
  const auto server_n =
      static_cast<std::uint64_t>(growth * static_cast<double>(cfg.weekly_server_flows));
  const std::uint64_t total_n = background_n + server_n;

  // ---------------------------------------------------------------------
  // 1. Server-related traffic (>70% of peering bytes).
  // ---------------------------------------------------------------------
  char payload[128];
  for (std::uint64_t f = 0; f < server_n && !active.servers.empty(); ++f) {
    const std::size_t pick = server_sampler.sample(rng);
    const std::uint32_t server_id = active.servers[pick];
    const ServerRecord& server = model.servers()[server_id];

    // Client endpoint: mostly pool clients; ~10% of server traffic is
    // machine-to-machine from dual-role servers (§2.2.2).
    net::Ipv4Addr client_ip;
    std::uint32_t client_as;
    if (!active.dual_initiators.empty() && rng.next_bool(0.10)) {
      const ServerRecord& initiator =
          model.servers()[active.dual_initiators[rng.next_below(
              active.dual_initiators.size())]];
      client_ip = initiator.addr;
      client_as = initiator.host_as;
    } else {
      std::tie(client_ip, client_as) = client_pick(rng);
    }

    // Port / protocol choice.
    const bool https_active = (server.roles & kRoleHttps) != 0 &&
                              week >= server.https_since;
    const bool rtmp = (server.roles & kRoleRtmp) != 0 && rng.next_bool(0.35);
    // HTTPS adoption grows through the period (§4.2).
    const double https_p =
        https_active ? ((server.roles & kRoleHttp) == 0
                            ? 1.0
                            : 0.38 + 0.012 * static_cast<double>(week - 35))
                     : 0.0;
    std::uint16_t server_port = 80;
    if (rtmp) {
      server_port = 1935;
    } else if (https_active && rng.next_bool(https_p)) {
      server_port = 443;
    } else if (rng.next_bool(0.10)) {
      server_port = 8080;
    }

    const bool response_dir = rng.next_bool(0.82);
    const auto client_port =
        static_cast<std::uint16_t>(32768 + rng.next_below(28000));

    sflow::FrameSpec spec;
    if (response_dir) {
      spec.src_ip = server.addr;
      spec.dst_ip = client_ip;
      spec.src_port = server_port;
      spec.dst_port = client_port;
      // Indirect link usage (Fig. 7): servers hosted outside the org's
      // home AS enter via that AS's member; servers at home occasionally
      // route via a transit member.
      spec.src_mac = entry_mac(server.host_as, week);
      spec.dst_mac = entry_mac(client_as, week);
    } else {
      spec.src_ip = client_ip;
      spec.dst_ip = server.addr;
      spec.src_port = client_port;
      spec.dst_port = server_port;
      spec.src_mac = entry_mac(client_as, week);
      spec.dst_mac = entry_mac(server.host_as, week);
    }
    apply_routing_indirection(spec, server, response_dir, rng);

    // Frame + payload.
    std::size_t payload_len = 0;
    std::size_t payload_total;
    std::uint16_t wire_len;
    if (response_dir) {
      wire_len = static_cast<std::uint16_t>(1400 + rng.next_below(115));
      payload_total = wire_len - 54;
      if (server_port != 443 && server_port != 1935 && rng.next_bool(0.50)) {
        payload_len = static_cast<std::size_t>(std::snprintf(
            payload, sizeof payload,
            "HTTP/1.1 200 OK\r\nServer: ixpsrv\r\nContent-Type: text/html\r\n"
            "Content-Length: %u\r\n\r\n",
            static_cast<unsigned>(1000 + rng.next_below(900000))));
      }
    } else {
      wire_len = static_cast<std::uint16_t>(80 + rng.next_below(500));
      payload_total = wire_len - 54;
      if (server_port != 443 && server_port != 1935 && rng.next_bool(0.85)) {
        // Only a minority of servers expose usable Host headers in the
        // sampled snippets (§2.4: URIs recovered for 23.8% of servers);
        // the rest see requests whose Host was not captured. A small
        // share carries unusable values (IP literals, bare names) that
        // the cleaning step removes.
        if (!server.serves_uris) {
          payload_len = static_cast<std::size_t>(std::snprintf(
              payload, sizeof payload,
              "GET /c%u HTTP/1.1\r\nAccept: */*\r\nConnection: keep-alive\r\n",
              static_cast<unsigned>(rng.next_below(100000))));
        } else {
          const char* host_text;
          std::string host_buffer;
          if (rng.next_bool(0.02)) {
            host_text = rng.next_bool(0.5) ? "203.0.113.9" : "intranet";
          } else {
            host_buffer = flow_host(server, rng).text();
            host_text = host_buffer.c_str();
          }
          payload_len = static_cast<std::size_t>(std::snprintf(
              payload, sizeof payload,
              "GET /c%u HTTP/1.1\r\nHost: %s\r\nAccept: */*\r\n\r\n",
              static_cast<unsigned>(rng.next_below(100000)), host_text));
        }
      }
    }
    if (payload_len > sizeof payload) payload_len = sizeof payload;
    payload_total = std::max(payload_total, payload_len);
    spec.frame_length = wire_len;

    const sflow::SampledFrame frame =
        sflow::build_tcp_frame(spec, as_bytes(payload, payload_len),
                               payload_total,
                               sflow::TcpHeader::kAck | sflow::TcpHeader::kPsh);
    emit(frame, ingress_port_of(spec.src_mac));

    const double bytes = static_cast<double>(wire_len) * sample.sampling_rate;
    truth.peering_bytes += bytes;
    truth.tcp_bytes += bytes;
    truth.server_bytes += bytes;
    truth.org_bytes[server.org] += bytes;
    ++truth.peering_samples;
  }

  // ---------------------------------------------------------------------
  // 2. Background peering traffic (non-server: P2P, mail, DNS, games...).
  // ---------------------------------------------------------------------
  for (std::uint64_t b = 0; b < background_n; ++b) {
    const auto [src, src_as] = background_pick(rng);
    const auto [dst, dst_as] = background_pick(rng);

    sflow::FrameSpec spec;
    spec.src_ip = src;
    spec.dst_ip = dst;
    spec.src_mac = entry_mac(src_as, week);
    spec.dst_mac = entry_mac(dst_as, week);
    spec.src_port = static_cast<std::uint16_t>(1024 + rng.next_below(60000));
    spec.dst_port = static_cast<std::uint16_t>(1024 + rng.next_below(60000));

    const bool udp = rng.next_bool(0.62);
    // Firewall-evading traffic on TCP 443 (SSH tunnels, VPNs, Skype):
    // these endpoints become HTTPS-prober candidates that never deliver a
    // certificate — the top of §2.2.2's 1.5M -> 500K -> 250K funnel.
    if (!udp && rng.next_bool(0.02)) spec.dst_port = 443;
    const auto wire_len = static_cast<std::uint16_t>(
        udp ? 120 + rng.next_below(600) : 90 + rng.next_below(560));
    spec.frame_length = wire_len;
    const std::size_t l4_header = udp ? 8u : 20u;
    const std::size_t payload_total = wire_len - 34 - l4_header;
    const sflow::SampledFrame frame =
        udp ? sflow::build_udp_frame(spec, {}, payload_total)
            : sflow::build_tcp_frame(spec, {}, payload_total);
    emit(frame, ingress_port_of(spec.src_mac));

    const double bytes = static_cast<double>(wire_len) * sample.sampling_rate;
    truth.peering_bytes += bytes;
    (udp ? truth.udp_bytes : truth.tcp_bytes) += bytes;
    ++truth.peering_samples;
  }

  // ---------------------------------------------------------------------
  // 3. Member-to-member IPv4 that is not TCP/UDP (ICMP etc., <0.5%).
  // ---------------------------------------------------------------------
  const auto icmp_n = static_cast<std::uint64_t>(
      kNonTcpUdpFraction * static_cast<double>(total_n));
  for (std::uint64_t i = 0; i < icmp_n; ++i) {
    const auto [src, src_as] = background_pick(rng);
    const auto [dst, dst_as] = background_pick(rng);
    sflow::FrameSpec spec;
    spec.src_ip = src;
    spec.dst_ip = dst;
    spec.src_mac = entry_mac(src_as, week);
    spec.dst_mac = entry_mac(dst_as, week);
    const sflow::IpProto proto =
        rng.next_bool(0.8) ? sflow::IpProto::kIcmp
                           : (rng.next_bool(0.5) ? sflow::IpProto::kGre
                                                 : sflow::IpProto::kEsp);
    const sflow::SampledFrame frame =
        sflow::build_ipv4_frame(spec, proto, 80 + rng.next_below(1100));
    emit(frame, ingress_port_of(spec.src_mac));
    truth.non_tcp_udp_samples += 1;
  }

  // ---------------------------------------------------------------------
  // 4. Non-IPv4 frames (native IPv6 and a little ARP, ~0.4%).
  // ---------------------------------------------------------------------
  const auto members = model.ixp().members_at(week);
  const auto member_mac = [&]() {
    return members[rng.next_below(members.size())]->port_mac;
  };
  const auto non_ipv4_n = static_cast<std::uint64_t>(
      kNonIpv4Fraction * static_cast<double>(total_n));
  for (std::uint64_t i = 0; i < non_ipv4_n; ++i) {
    const sflow::EtherType type = rng.next_bool(0.93) ? sflow::EtherType::kIpv6
                                                      : sflow::EtherType::kArp;
    const sflow::SampledFrame frame = sflow::build_other_frame(
        member_mac(), member_mac(), type, 80 + rng.next_below(1200));
    emit(frame, 0);
    truth.non_ipv4_samples += 1;
  }

  // ---------------------------------------------------------------------
  // 5. Non-member and local traffic (IXP management, route servers, ~0.6%).
  // ---------------------------------------------------------------------
  const auto local_n = static_cast<std::uint64_t>(
      kNonMemberLocalFraction * static_cast<double>(total_n));
  for (std::uint64_t i = 0; i < local_n; ++i) {
    sflow::FrameSpec spec;
    spec.src_ip = net::Ipv4Addr{198, 18, 0, static_cast<std::uint8_t>(rng.next_below(250))};
    spec.dst_ip = net::Ipv4Addr{198, 18, 1, static_cast<std::uint8_t>(rng.next_below(250))};
    spec.src_port = 179;  // route-server BGP chatter
    spec.dst_port = static_cast<std::uint16_t>(1024 + rng.next_below(60000));
    if (rng.next_bool(0.5)) {
      // Local: one side is the IXP's management MAC.
      spec.src_mac = model.ixp().management_mac();
      spec.dst_mac = member_mac();
    } else {
      // Non-member: an off-fabric MAC.
      spec.src_mac = sflow::MacAddr::from_id(0xBAD0000000ULL + rng.next_below(1000));
      spec.dst_mac = member_mac();
    }
    spec.frame_length = static_cast<std::uint16_t>(100 + rng.next_below(1200));
    const sflow::SampledFrame frame = sflow::build_tcp_frame(spec, {}, 40);
    emit(frame, 0);
    truth.non_member_or_local_samples += 1;
  }

  return truth;
}

}  // namespace ixp::gen
