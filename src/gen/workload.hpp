// Weekly traffic generation.
//
// Workload turns the InternetModel into the stream of sampled Ethernet
// frames the IXP's sFlow collector would deliver for one week. The stream
// composition follows §2.2.1's filtering percentages (non-IPv4 ~0.4%,
// non-member/local ~0.6%, non-TCP/UDP <0.5%, TCP:UDP 82:18 by bytes) and
// §2.2.2's server-traffic share (>70% of peering bytes). Each emitted
// sample stands for `sampling_rate` real packets, exactly as an sFlow
// estimator would treat it.
//
// Generation is deterministic per (model seed, week): re-generating a week
// produces the identical stream.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gen/internet.hpp"
#include "sflow/datagram.hpp"
#include "sflow/sampler.hpp"

namespace ixp::gen {

/// Receives every generated sample. The FlowSample reference is only
/// valid during the call (the workload reuses its buffers).
using SampleSink = std::function<void(const sflow::FlowSample&)>;

/// Ground truth accompanying one generated week, for validating what the
/// measurement pipeline reconstructs.
struct WeeklyTruth {
  int week = 0;
  std::uint64_t total_samples = 0;
  std::uint64_t non_ipv4_samples = 0;
  std::uint64_t non_member_or_local_samples = 0;
  std::uint64_t non_tcp_udp_samples = 0;
  std::uint64_t peering_samples = 0;

  double peering_bytes = 0.0;  // expanded (x sampling rate)
  double tcp_bytes = 0.0;
  double udp_bytes = 0.0;
  double server_bytes = 0.0;  // bytes of flows involving a server IP

  std::size_t active_visible_servers = 0;
  /// Expanded bytes per administrative organization.
  std::unordered_map<std::uint32_t, double> org_bytes;
};

class Workload {
 public:
  explicit Workload(const InternetModel& model);

  /// Generates the full sample stream of `week` into `sink`.
  WeeklyTruth generate_week(int week, const SampleSink& sink) const;

  /// Indices of servers that are visible and active in `week`.
  [[nodiscard]] std::vector<std::uint32_t> active_visible_servers(int week) const;

  /// The deterministic background host address for slot `k` (also used by
  /// the ISP observer to sample the same population).
  [[nodiscard]] net::Ipv4Addr background_addr(std::uint64_t k) const;

  [[nodiscard]] const InternetModel& model() const noexcept { return *model_; }

 private:
  struct ActiveSet;

  /// Entry-port MAC for traffic of AS `as_index` in `week`; falls back to
  /// an off-fabric MAC when the entry member has not joined yet.
  [[nodiscard]] sflow::MacAddr entry_mac(std::uint32_t as_index, int week) const;

  /// Random background host: address + its AS index.
  [[nodiscard]] std::pair<net::Ipv4Addr, std::uint32_t> background_pick(
      util::Rng& rng) const;

  /// Random pool client: address + its AS index.
  [[nodiscard]] std::pair<net::Ipv4Addr, std::uint32_t> client_pick(
      util::Rng& rng) const;

  /// Host header for a flow served by `server` (a site of its content org,
  /// biased towards the org's popular sites).
  [[nodiscard]] const dns::DnsName& flow_host(const ServerRecord& server,
                                              util::Rng& rng) const;

  /// Fig. 7's transit detour: home-AS servers of orgs with a nonzero
  /// indirect fraction occasionally enter via a transit member's port.
  void apply_routing_indirection(sflow::FrameSpec& spec,
                                 const ServerRecord& server, bool response_dir,
                                 util::Rng& rng) const;

  const InternetModel* model_;
  std::vector<sflow::MacAddr> transit_macs_;  // founding transit/tier1 ports
  /// Per-org damping factor for servers deployed outside the org's home
  /// AS: in-ISP CDN deployments serve their host network internally, so
  /// only a sliver of their traffic crosses the IXP (this is what keeps
  /// Akamai's indirect share at the paper's 11.1% even though >half of
  /// its servers sit in third-party ASes). 1.0 = no damping.
  std::vector<double> org_offsite_damping_;
  /// True when the org has at least one visible server outside its home
  /// AS (such orgs get placement-driven indirection; single-footprint
  /// orgs get the routing-detour path instead).
  std::vector<bool> org_has_offsite_;
  // Per-prefix sampling structures for background traffic: prefixes are
  // drawn by AS activity weight; each prefix exposes a bounded set of
  // deterministic "active hosts".
  std::unique_ptr<util::WeightedSampler> prefix_sampler_;
  std::vector<std::uint32_t> prefix_active_hosts_;
  std::vector<std::uint64_t> background_cum_;  // cumulative active hosts (for background_addr)
  // Per-org site ranks for Host headers.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> org_sites_;
};

}  // namespace ixp::gen
