// Longitudinal churn analysis (§4, Figures 4 and 5).
//
// Tracks entities (server IPs, ASes) across the 17 observation weeks and
// classifies each week's active set the way Figure 4 does:
//   stable    — seen in *every* week up to and including this one
//               (the white bar segment),
//   recurrent — seen in at least one earlier week but not all (grey),
//   fresh     — seen for the first time this week (black).
// The same classification splits each week's traffic (Figure 5), overall
// and per region (DE/US/RU/CN/RoW).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/country.hpp"

namespace ixp::analysis {

enum class ChurnClass : std::uint8_t { kStable, kRecurrent, kFresh };

class ChurnTracker {
 public:
  ChurnTracker(int first_week, int last_week);

  /// Records that `key` (an IP, an ASN, ...) was active in `week` with
  /// the given traffic and region. Weeks may be observed in any order but
  /// each (key, week) should be reported once.
  void observe(std::uint64_t key, int week, geo::Region region, double bytes);

  struct WeekBreakdown {
    int week = 0;
    std::size_t active = 0;
    std::size_t stable = 0;
    std::size_t recurrent = 0;
    std::size_t fresh = 0;
    double active_bytes = 0.0;
    double stable_bytes = 0.0;
    double recurrent_bytes = 0.0;
    double fresh_bytes = 0.0;
    /// Per-region splits, indexed by geo::Region.
    std::array<std::size_t, 5> stable_by_region{};
    std::array<std::size_t, 5> recurrent_by_region{};
    std::array<std::size_t, 5> fresh_by_region{};
    std::array<double, 5> active_bytes_by_region{};
    std::array<double, 5> stable_bytes_by_region{};
    std::array<double, 5> recurrent_bytes_by_region{};

    friend bool operator==(const WeekBreakdown&,
                           const WeekBreakdown&) = default;
  };

  /// One breakdown per observed week, in week order. O(keys x weeks).
  [[nodiscard]] std::vector<WeekBreakdown> breakdown() const;

  /// Number of distinct keys ever observed.
  [[nodiscard]] std::size_t universe() const noexcept { return entries_.size(); }

  [[nodiscard]] int first_week() const noexcept { return first_week_; }
  [[nodiscard]] int last_week() const noexcept { return last_week_; }

 private:
  struct Entry {
    std::uint32_t active_mask = 0;  // bit w-first_week
    geo::Region region = geo::Region::kRoW;
    std::vector<float> bytes;       // per week, lazily sized
  };

  int first_week_;
  int last_week_;
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace ixp::analysis
