// Week-over-week comparison of two vantage-point reports.
//
// §4.2's method in a reusable form: "subsequent weekly snapshots that
// differ noticeably may be an indication of some change". The delta
// quantifies what changed between two weeks — server arrivals/departures
// (overall and per country), growth of the visible universe, and the
// biggest per-AS server-count movers — which is exactly how the paper
// spots the EC2 expansion, the hurricane, and the reseller's growth.
#pragma once

#include <cstdint>
#include <vector>

#include "core/vantage_point.hpp"

namespace ixp::analysis {

struct AsDelta {
  net::Asn asn;
  std::int64_t server_delta = 0;  // later minus earlier
};

struct WeeklyDelta {
  int earlier_week = 0;
  int later_week = 0;

  std::size_t servers_gained = 0;  // in later, not in earlier
  std::size_t servers_lost = 0;    // in earlier, not in later
  std::size_t servers_common = 0;

  double ip_growth = 0.0;      // later/earlier - 1
  double traffic_growth = 0.0;

  /// ASes with the largest absolute server-count changes, biggest first.
  std::vector<AsDelta> top_movers;
};

/// Computes the delta between two weekly reports (any two weeks; they do
/// not need to be adjacent). `top_n` bounds the mover list.
[[nodiscard]] WeeklyDelta compare_weeks(const core::WeeklyReport& earlier,
                                        const core::WeeklyReport& later,
                                        std::size_t top_n = 10);

}  // namespace ixp::analysis
