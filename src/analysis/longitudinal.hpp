// Longitudinal persistence metrics over a run of weekly reports (§4).
//
// The weeks driver produces one WeeklyReport per contiguous week; this
// module folds that run into the paper's §4 picture: the server-IP
// churn classification per week (stable / recurrent / fresh, overall and
// per region — Figures 4 and 5), the always-on core (servers present in
// every single week), and the mean weekly churn rate.
//
// The summary is a pure function of the report sequence, so a resumed
// run — some weeks loaded from snapshots, the rest computed — yields a
// summary identical to the uninterrupted run's. The crash-recovery tests
// pin exactly that.
#pragma once

#include <span>
#include <vector>

#include "analysis/churn_tracker.hpp"
#include "core/vantage_point.hpp"

namespace ixp::analysis {

struct LongitudinalSummary {
  int first_week = 0;
  int last_week = 0;
  std::size_t weeks = 0;

  /// Distinct server IPs seen across the whole run.
  std::size_t server_universe = 0;
  /// Servers classified stable in the final week — present every week.
  std::size_t always_on_servers = 0;
  /// Traffic share of the always-on core in the final week (0 when the
  /// final week saw no server traffic).
  double always_on_traffic_share = 0.0;
  /// Mean fresh/active fraction over weeks after the first (the first
  /// week is all fresh by definition and would only dilute the signal).
  double mean_weekly_churn = 0.0;

  /// Per-week server churn classification, in week order (Figures 4/5).
  std::vector<ChurnTracker::WeekBreakdown> servers;

  friend bool operator==(const LongitudinalSummary&,
                         const LongitudinalSummary&) = default;
};

/// Streaming fold of the §4 summary: feed weekly reports one at a time in
/// ascending week order, then finish(). This is what lets a merged or
/// distributed run fold the summary straight off the snapshot store —
/// one decoded report in memory at a time — and is exactly equivalent to
/// summarize_longitudinal over the same sequence (which is implemented on
/// it). The week range is fixed up front because the churn classification
/// needs to know which week is final.
class LongitudinalFolder {
 public:
  LongitudinalFolder(int first_week, int last_week)
      : first_week_(first_week),
        last_week_(last_week),
        servers_(first_week, last_week) {}

  /// Reports must arrive in ascending week order within [first, last].
  void observe(const core::WeeklyReport& report);

  [[nodiscard]] std::size_t weeks_observed() const noexcept { return weeks_; }

  /// Folds what was observed into the summary. May be called once.
  [[nodiscard]] LongitudinalSummary finish();

 private:
  int first_week_;
  int last_week_;
  std::size_t weeks_ = 0;
  ChurnTracker servers_;
};

/// Folds contiguous weekly reports (ascending week order) into the §4
/// summary. Reports must cover consecutive weeks; an empty span yields a
/// default summary.
[[nodiscard]] LongitudinalSummary summarize_longitudinal(
    std::span<const core::WeeklyReport> reports);

}  // namespace ixp::analysis
