// Traffic attribution — the second pass over a week's sample stream.
//
// Once the discovery pass has identified the server IPs (and §5.1 has
// clustered them into organizations), this pass re-reads the stream and
// attributes every peering byte: to servers vs. non-servers (§2.2.2's
// ">70%"), to organizations, and — per IXP member link — to direct vs.
// indirect paths (Figure 7: how much of an org's traffic reaches a member
// over the org's own peering link vs. over other members' links).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "classify/peering_filter.hpp"
#include "net/ipv4.hpp"
#include "util/flat_hash_map.hpp"

namespace ixp::analysis {

/// Per-(org, member) link usage for Figure 7.
struct LinkUsage {
  double direct_bytes = 0.0;    // arrived over the org's own member port
  double indirect_bytes = 0.0;  // arrived over any other member's port

  [[nodiscard]] double total() const noexcept {
    return direct_bytes + indirect_bytes;
  }
  [[nodiscard]] double direct_fraction() const noexcept {
    const double t = total();
    return t > 0.0 ? direct_bytes / t : 0.0;
  }
};

class AttributionPass {
 public:
  /// Per-org link usage keyed by peer member ASN.
  using LinkMap = util::FlatHashMap<net::Asn, LinkUsage>;

  /// `server_org` maps every identified server IP to its organization id
  /// (from clustering); `org_home` maps org ids to their own member ASN
  /// where they have one. The pass re-indexes both into flat tables —
  /// the per-sample observe() path probes them for every peering sample.
  AttributionPass(const fabric::Ixp& ixp, int week,
                  std::unordered_map<net::Ipv4Addr, std::uint32_t> server_org,
                  std::unordered_map<std::uint32_t, net::Asn> org_home);

  /// Ingests one raw sample (applies the peering filter internally).
  void observe(const sflow::FlowSample& sample);

  [[nodiscard]] double peering_bytes() const noexcept { return peering_bytes_; }
  /// Bytes of peering samples touching at least one server IP.
  [[nodiscard]] double server_bytes() const noexcept { return server_bytes_; }
  [[nodiscard]] double server_share() const noexcept {
    return peering_bytes_ > 0.0 ? server_bytes_ / peering_bytes_ : 0.0;
  }

  /// Total bytes attributed to each org.
  [[nodiscard]] const util::FlatHashMap<std::uint32_t, double>& org_bytes()
      const noexcept {
    return org_bytes_;
  }

  /// Link usage of `org` per peer member ASN.
  [[nodiscard]] const LinkMap* links_of(std::uint32_t org) const;

  /// Fraction of `org`'s traffic that did NOT use its own member link
  /// (the paper: 11.1% for Akamai).
  [[nodiscard]] double indirect_share(std::uint32_t org) const;

  /// Server-side bytes that entered through a given member port
  /// (used for the reseller case study).
  [[nodiscard]] const util::FlatHashMap<net::Asn, double>&
  ingress_server_bytes() const noexcept {
    return ingress_server_bytes_;
  }

  /// Distinct server IPs whose traffic entered through each member port.
  [[nodiscard]] std::size_t ingress_server_ips(net::Asn member) const;

 private:
  classify::PeeringFilter filter_;
  classify::FilterCounters counters_;
  util::FlatHashMap<net::Ipv4Addr, std::uint32_t> server_org_;
  util::FlatHashMap<std::uint32_t, net::Asn> org_home_;
  const fabric::Ixp* ixp_;

  double peering_bytes_ = 0.0;
  double server_bytes_ = 0.0;
  util::FlatHashMap<std::uint32_t, double> org_bytes_;
  util::FlatHashMap<std::uint32_t, LinkMap> links_;
  util::FlatHashMap<net::Asn, double> ingress_server_bytes_;
  util::FlatHashMap<net::Asn, std::unordered_set<std::uint32_t>>
      ingress_server_ips_;
};

}  // namespace ixp::analysis
