#include "analysis/blind_spots.hpp"

#include <unordered_map>

#include "dns/public_suffix.hpp"

namespace ixp::analysis {

AlexaRecovery alexa_recovery(
    const gen::InternetModel& model, std::size_t top_n,
    const std::unordered_set<dns::DnsName>& recovered_domains) {
  const auto& psl = dns::PublicSuffixList::builtin();
  AlexaRecovery result;
  const auto& sites = model.sites();
  result.considered = std::min(top_n, sites.size());
  for (std::size_t rank = 0; rank < result.considered; ++rank) {
    const auto registrable = psl.registrable_domain(sites[rank].domain);
    const dns::DnsName& key = registrable ? *registrable : sites[rank].domain;
    if (recovered_domains.count(key) > 0) ++result.recovered;
  }
  return result;
}

SweepResult resolver_sweep(
    const gen::InternetModel& model,
    std::span<const dns::Resolver> usable_resolvers,
    const std::unordered_set<dns::DnsName>& recovered_domains,
    const std::unordered_set<net::Ipv4Addr>& ixp_server_ips,
    std::size_t per_site, int week, util::Rng& rng) {
  const auto& psl = dns::PublicSuffixList::builtin();
  SweepResult result;
  if (usable_resolvers.empty()) return result;

  std::unordered_set<net::Ipv4Addr> discovered;
  const auto& sites = model.sites();
  for (std::size_t rank = 0; rank < sites.size(); ++rank) {
    const auto registrable = psl.registrable_domain(sites[rank].domain);
    const dns::DnsName& key = registrable ? *registrable : sites[rank].domain;
    if (recovered_domains.count(key) > 0) continue;  // already covered
    ++result.queried_sites;
    for (std::size_t q = 0; q < per_site; ++q) {
      const dns::Resolver& resolver =
          usable_resolvers[rng.next_below(usable_resolvers.size())];
      for (const net::Ipv4Addr addr : model.resolve_site(rank, resolver, week))
        discovered.insert(addr);
    }
  }

  result.discovered_ips = discovered.size();
  for (const net::Ipv4Addr addr : discovered) {
    if (ixp_server_ips.count(addr) > 0) {
      ++result.already_seen_at_ixp;
      continue;
    }
    ++result.unseen_at_ixp;
    if (const auto index = model.server_by_addr(addr)) {
      const auto reason =
          static_cast<std::size_t>(model.servers()[*index].blind);
      result.unseen_by_reason[reason] += 1;
    }
  }
  return result;
}

FootprintDiscovery discover_org_footprint(
    const gen::InternetModel& model, std::uint32_t org_index,
    std::span<const dns::Resolver> usable_resolvers, util::Rng& rng) {
  (void)rng;
  FootprintDiscovery result;
  // Resolver coverage: which ASes and regions can the measurement reach
  // "from the inside"?
  std::unordered_set<net::Asn> resolver_ases;
  std::array<bool, 5> resolver_regions{};
  for (const dns::Resolver& resolver : usable_resolvers) {
    resolver_ases.insert(resolver.asn);
    if (const auto as = model.as_index_of(resolver.asn)) {
      resolver_regions[static_cast<std::size_t>(
          geo::region_of(model.ases()[*as].country))] = true;
    }
  }

  std::unordered_set<net::Asn> ases;
  for (const std::uint32_t s : model.org_servers(org_index)) {
    const gen::ServerRecord& server = model.servers()[s];
    bool discovered = false;
    switch (server.blind) {
      case gen::BlindReason::kNone:
      case gen::BlindReason::kSmallFarOrg:
        discovered = true;
        break;
      case gen::BlindReason::kPrivateCluster:
        discovered =
            resolver_ases.count(model.ases()[server.host_as].asn) > 0;
        break;
      case gen::BlindReason::kFarRegion:
        discovered = resolver_regions[static_cast<std::size_t>(
            geo::region_of(model.ases()[server.host_as].country))];
        break;
      case gen::BlindReason::kErrorHandler:
        discovered = false;
        break;
    }
    if (!discovered) continue;
    ++result.servers;
    ases.insert(model.ases()[server.host_as].asn);
  }
  result.ases = ases.size();
  return result;
}

}  // namespace ixp::analysis
