#include "analysis/weekly_delta.hpp"

#include <algorithm>
#include <unordered_set>

namespace ixp::analysis {

WeeklyDelta compare_weeks(const core::WeeklyReport& earlier,
                          const core::WeeklyReport& later, std::size_t top_n) {
  WeeklyDelta delta;
  delta.earlier_week = earlier.week;
  delta.later_week = later.week;

  std::unordered_set<net::Ipv4Addr> earlier_servers;
  earlier_servers.reserve(earlier.servers.size());
  for (const auto& obs : earlier.servers) earlier_servers.insert(obs.addr);

  std::unordered_set<net::Ipv4Addr> later_servers;
  later_servers.reserve(later.servers.size());
  for (const auto& obs : later.servers) {
    later_servers.insert(obs.addr);
    if (earlier_servers.count(obs.addr) > 0)
      ++delta.servers_common;
    else
      ++delta.servers_gained;
  }
  for (const net::Ipv4Addr addr : earlier_servers) {
    if (later_servers.count(addr) == 0) ++delta.servers_lost;
  }

  if (earlier.peering_ips > 0) {
    delta.ip_growth = static_cast<double>(later.peering_ips) /
                          static_cast<double>(earlier.peering_ips) -
                      1.0;
  }
  const double earlier_bytes = earlier.peering_bytes();
  if (earlier_bytes > 0.0)
    delta.traffic_growth = later.peering_bytes() / earlier_bytes - 1.0;

  // Per-AS server-count movement.
  std::unordered_map<net::Asn, std::int64_t> movement;
  for (const auto& [asn, tally] : later.by_as) {
    if (tally.server_ips > 0)
      movement[asn] += static_cast<std::int64_t>(tally.server_ips);
  }
  for (const auto& [asn, tally] : earlier.by_as) {
    if (tally.server_ips > 0)
      movement[asn] -= static_cast<std::int64_t>(tally.server_ips);
  }
  delta.top_movers.reserve(movement.size());
  for (const auto& [asn, moved] : movement) {
    if (moved != 0) delta.top_movers.push_back(AsDelta{asn, moved});
  }
  std::sort(delta.top_movers.begin(), delta.top_movers.end(),
            [](const AsDelta& a, const AsDelta& b) {
              const auto abs_a = a.server_delta < 0 ? -a.server_delta : a.server_delta;
              const auto abs_b = b.server_delta < 0 ? -b.server_delta : b.server_delta;
              if (abs_a != abs_b) return abs_a > abs_b;
              return a.asn < b.asn;  // deterministic tie-break
            });
  if (delta.top_movers.size() > top_n) delta.top_movers.resize(top_n);
  return delta;
}

}  // namespace ixp::analysis
