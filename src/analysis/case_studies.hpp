// Case-study helpers for §4.2: HTTPS adoption, published-range matching
// (the Amazon-EC2/Netflix expansion and the Hurricane-Sandy analyses),
// and reseller growth.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "core/vantage_point.hpp"
#include "gen/internet.hpp"

namespace ixp::analysis {

/// One week of the HTTPS-adoption trend (§4.2: "a small, yet steady
/// increase").
struct HttpsTrendRow {
  int week = 0;
  std::size_t https_servers = 0;
  std::size_t all_servers = 0;
  double https_server_share = 0.0;
  double https_traffic_share = 0.0;  // of peering bytes
};

[[nodiscard]] HttpsTrendRow https_trend_row(const core::WeeklyReport& report);

/// Per-data-center count of published IPs observed as servers this week.
struct DataCenterCount {
  std::string name;
  std::size_t observed_servers = 0;
};

/// Matches a cloud's published per-DC IP list against the week's observed
/// server set (the method of both §4.2 cloud analyses).
[[nodiscard]] std::vector<DataCenterCount> match_published_ranges(
    const gen::InternetModel& model, std::uint32_t org_index,
    const std::unordered_set<net::Ipv4Addr>& observed_servers);

}  // namespace ixp::analysis
