// Blind-spot analyses (§3.3): what the IXP cannot see, and why.
//
// Three instruments:
//   1. Alexa recovery — which share of the top-N popular sites' domains
//      can be recovered from the URIs observed in the sampled payloads
//      (paper: ~20% of the top-1M, 63% of the top-10K, 80% of the top-1K).
//   2. Resolver sweep — active DNS queries through the usable open
//      resolvers for the *uncovered* domains; discovers server IPs, some
//      of which the IXP never saw (paper: 600K discovered, 360K already
//      seen, 240K unseen).
//   3. Unseen classification — the paper's four categories of servers the
//      sweep finds but the IXP misses (private clusters, far-region
//      deployments, invalid-URI handlers, small far orgs).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <unordered_set>
#include <vector>

#include "dns/name.hpp"
#include "dns/resolver.hpp"
#include "gen/internet.hpp"

namespace ixp::analysis {

struct AlexaRecovery {
  std::size_t considered = 0;
  std::size_t recovered = 0;
  [[nodiscard]] double share() const noexcept {
    return considered == 0
               ? 0.0
               : static_cast<double>(recovered) / static_cast<double>(considered);
  }
};

/// Share of the top-`top_n` sites whose registrable domain appears among
/// the domains recovered from IXP payloads.
[[nodiscard]] AlexaRecovery alexa_recovery(
    const gen::InternetModel& model, std::size_t top_n,
    const std::unordered_set<dns::DnsName>& recovered_domains);

struct SweepResult {
  std::size_t queried_sites = 0;
  std::size_t discovered_ips = 0;
  std::size_t already_seen_at_ixp = 0;
  std::size_t unseen_at_ixp = 0;
  /// Unseen IPs by ground-truth reason, indexed by gen::BlindReason
  /// (kNone = visible servers that simply were not active/sampled).
  std::array<std::size_t, 5> unseen_by_reason{};
};

/// Queries every site NOT recovered at the IXP through `per_site` randomly
/// assigned usable resolvers (the paper assigns 100 per URI) and compares
/// the discovered server IPs against the IXP's weekly server set.
[[nodiscard]] SweepResult resolver_sweep(
    const gen::InternetModel& model,
    std::span<const dns::Resolver> usable_resolvers,
    const std::unordered_set<dns::DnsName>& recovered_domains,
    const std::unordered_set<net::Ipv4Addr>& ixp_server_ips,
    std::size_t per_site, int week, util::Rng& rng);

/// Targeted footprint discovery for one organization (the paper's Akamai
/// deep-dive: 28K servers at the IXP vs ~100K through active measurement).
struct FootprintDiscovery {
  std::size_t servers = 0;
  std::size_t ases = 0;
};

[[nodiscard]] FootprintDiscovery discover_org_footprint(
    const gen::InternetModel& model, std::uint32_t org_index,
    std::span<const dns::Resolver> usable_resolvers, util::Rng& rng);

}  // namespace ixp::analysis
