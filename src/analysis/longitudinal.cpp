#include "analysis/longitudinal.hpp"

namespace ixp::analysis {

LongitudinalSummary summarize_longitudinal(
    std::span<const core::WeeklyReport> reports) {
  LongitudinalSummary summary;
  if (reports.empty()) return summary;

  summary.first_week = reports.front().week;
  summary.last_week = reports.back().week;
  summary.weeks = reports.size();

  ChurnTracker servers{summary.first_week, summary.last_week};
  for (const core::WeeklyReport& report : reports) {
    for (const core::ServerObservation& server : report.servers) {
      servers.observe(server.addr.value(), report.week,
                      geo::region_of(server.country), server.bytes);
    }
  }

  summary.server_universe = servers.universe();
  summary.servers = servers.breakdown();

  if (!summary.servers.empty()) {
    const auto& final_week = summary.servers.back();
    summary.always_on_servers = final_week.stable;
    if (final_week.active_bytes > 0.0)
      summary.always_on_traffic_share =
          final_week.stable_bytes / final_week.active_bytes;
  }

  double churn_sum = 0.0;
  std::size_t churn_weeks = 0;
  for (std::size_t i = 1; i < summary.servers.size(); ++i) {
    const auto& week = summary.servers[i];
    if (week.active == 0) continue;
    churn_sum += static_cast<double>(week.fresh) /
                 static_cast<double>(week.active);
    ++churn_weeks;
  }
  if (churn_weeks > 0)
    summary.mean_weekly_churn = churn_sum / static_cast<double>(churn_weeks);

  return summary;
}

}  // namespace ixp::analysis
