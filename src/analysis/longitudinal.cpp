#include "analysis/longitudinal.hpp"

namespace ixp::analysis {

void LongitudinalFolder::observe(const core::WeeklyReport& report) {
  ++weeks_;
  for (const core::ServerObservation& server : report.servers) {
    servers_.observe(server.addr.value(), report.week,
                     geo::region_of(server.country), server.bytes);
  }
}

LongitudinalSummary LongitudinalFolder::finish() {
  LongitudinalSummary summary;
  if (weeks_ == 0) return summary;

  summary.first_week = first_week_;
  summary.last_week = last_week_;
  summary.weeks = weeks_;

  summary.server_universe = servers_.universe();
  summary.servers = servers_.breakdown();

  if (!summary.servers.empty()) {
    const auto& final_week = summary.servers.back();
    summary.always_on_servers = final_week.stable;
    if (final_week.active_bytes > 0.0)
      summary.always_on_traffic_share =
          final_week.stable_bytes / final_week.active_bytes;
  }

  double churn_sum = 0.0;
  std::size_t churn_weeks = 0;
  for (std::size_t i = 1; i < summary.servers.size(); ++i) {
    const auto& week = summary.servers[i];
    if (week.active == 0) continue;
    churn_sum += static_cast<double>(week.fresh) /
                 static_cast<double>(week.active);
    ++churn_weeks;
  }
  if (churn_weeks > 0)
    summary.mean_weekly_churn = churn_sum / static_cast<double>(churn_weeks);

  return summary;
}

LongitudinalSummary summarize_longitudinal(
    std::span<const core::WeeklyReport> reports) {
  if (reports.empty()) return {};
  LongitudinalFolder folder{reports.front().week, reports.back().week};
  for (const core::WeeklyReport& report : reports) folder.observe(report);
  return folder.finish();
}

}  // namespace ixp::analysis
