// Network heterogenization metrics (§5.2, Figure 6).
//
// Two complementary views of the same clustering output:
//   per organization — how many ASes host its servers (Fig. 6b: Akamai's
//   28K servers sit in 278 ASes; thousands of smaller orgs span several);
//   per AS — how many organizations' servers it hosts (Fig. 6c: >500 ASes
//   host servers of >5 orgs, one hoster AS holds 40K+ servers of 350+).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/org_clusterer.hpp"
#include "net/routing_table.hpp"

namespace ixp::analysis {

struct OrgFootprint {
  dns::DnsName authority;
  std::size_t server_ips = 0;
  std::size_t ases = 0;
};

struct AsHosting {
  net::Asn asn;
  std::size_t server_ips = 0;
  std::size_t orgs = 0;
};

struct HeterogeneityView {
  std::vector<OrgFootprint> orgs;  // sorted by server_ips descending
  std::vector<AsHosting> ases;     // sorted by server_ips descending

  /// Orgs with more than `threshold` server IPs.
  [[nodiscard]] std::size_t orgs_with_more_than(std::size_t threshold) const;
  /// ASes hosting servers of more than `threshold` distinct orgs.
  [[nodiscard]] std::size_t ases_hosting_more_than(std::size_t threshold) const;
};

/// Builds both views from a clustering result, resolving each server IP's
/// AS through the (public) routing table.
[[nodiscard]] HeterogeneityView build_heterogeneity(
    const core::ClusteringResult& clustering, const net::RoutingTable& routing);

}  // namespace ixp::analysis
