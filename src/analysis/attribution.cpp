#include "analysis/attribution.hpp"

namespace ixp::analysis {

AttributionPass::AttributionPass(
    const fabric::Ixp& ixp, int week,
    std::unordered_map<net::Ipv4Addr, std::uint32_t> server_org,
    std::unordered_map<std::uint32_t, net::Asn> org_home)
    : filter_(ixp, week), ixp_(&ixp) {
  server_org_.reserve(server_org.size());
  for (const auto& [addr, org] : server_org) server_org_.try_emplace(addr, org);
  org_home_.reserve(org_home.size());
  for (const auto& [org, home] : org_home) org_home_.try_emplace(org, home);
}

void AttributionPass::observe(const sflow::FlowSample& sample) {
  const auto peering = filter_.filter(sample, counters_);
  if (!peering) return;
  peering_bytes_ += peering->expanded_bytes;

  const sflow::ParsedFrame& frame = peering->frame;
  const auto src_it = server_org_.find(frame.ip->src);
  const auto dst_it = server_org_.find(frame.ip->dst);
  const bool src_server = src_it != server_org_.end();
  const bool dst_server = dst_it != server_org_.end();
  if (!src_server && !dst_server) return;
  server_bytes_ += peering->expanded_bytes;

  // Attribute to the server side(s). When both endpoints are servers
  // (machine-to-machine), the source — the responding side — wins.
  const std::uint32_t org = src_server ? src_it->second : dst_it->second;
  org_bytes_[org] += peering->expanded_bytes;

  const sflow::MacAddr server_mac = src_server ? frame.eth.src : frame.eth.dst;
  const sflow::MacAddr other_mac = src_server ? frame.eth.dst : frame.eth.src;
  const fabric::Member* server_member = ixp_->member_by_mac(server_mac);
  const fabric::Member* other_member = ixp_->member_by_mac(other_mac);
  if (server_member == nullptr || other_member == nullptr) return;

  // Ingress accounting (reseller case study).
  ingress_server_bytes_[server_member->asn] += peering->expanded_bytes;
  const net::Ipv4Addr server_addr = src_server ? frame.ip->src : frame.ip->dst;
  ingress_server_ips_[server_member->asn].insert(server_addr.value());

  const auto home_it = org_home_.find(org);
  const bool direct =
      home_it != org_home_.end() && server_member->asn == home_it->second;
  LinkUsage& usage = links_[org][other_member->asn];
  (direct ? usage.direct_bytes : usage.indirect_bytes) +=
      peering->expanded_bytes;
}

const AttributionPass::LinkMap* AttributionPass::links_of(
    std::uint32_t org) const {
  const auto it = links_.find(org);
  return it == links_.end() ? nullptr : &it->second;
}

double AttributionPass::indirect_share(std::uint32_t org) const {
  const auto* links = links_of(org);
  if (links == nullptr) return 0.0;
  double direct = 0.0;
  double indirect = 0.0;
  for (const auto& [member, usage] : *links) {
    direct += usage.direct_bytes;
    indirect += usage.indirect_bytes;
  }
  const double total = direct + indirect;
  return total > 0.0 ? indirect / total : 0.0;
}

std::size_t AttributionPass::ingress_server_ips(net::Asn member) const {
  const auto it = ingress_server_ips_.find(member);
  return it == ingress_server_ips_.end() ? 0 : it->second.size();
}

}  // namespace ixp::analysis
