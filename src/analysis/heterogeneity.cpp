#include "analysis/heterogeneity.hpp"

#include <algorithm>

namespace ixp::analysis {

std::size_t HeterogeneityView::orgs_with_more_than(std::size_t threshold) const {
  return static_cast<std::size_t>(
      std::count_if(orgs.begin(), orgs.end(), [threshold](const OrgFootprint& o) {
        return o.server_ips > threshold;
      }));
}

std::size_t HeterogeneityView::ases_hosting_more_than(
    std::size_t threshold) const {
  return static_cast<std::size_t>(
      std::count_if(ases.begin(), ases.end(), [threshold](const AsHosting& a) {
        return a.orgs > threshold;
      }));
}

HeterogeneityView build_heterogeneity(const core::ClusteringResult& clustering,
                                      const net::RoutingTable& routing) {
  HeterogeneityView view;

  struct AsAccumulator {
    std::size_t servers = 0;
    std::unordered_set<std::string> orgs;
  };
  std::unordered_map<net::Asn, AsAccumulator> per_as;

  view.orgs.reserve(clustering.clusters.size());
  for (const auto& [authority, servers] : clustering.clusters) {
    OrgFootprint footprint;
    footprint.authority = authority;
    footprint.server_ips = servers.size();
    std::unordered_set<net::Asn> ases;
    for (const net::Ipv4Addr addr : servers) {
      const net::Asn* origin = routing.origin_ptr(addr);
      if (!origin) continue;
      ases.insert(*origin);
      AsAccumulator& acc = per_as[*origin];
      acc.servers += 1;
      acc.orgs.insert(authority.text());
    }
    footprint.ases = ases.size();
    view.orgs.push_back(std::move(footprint));
  }

  view.ases.reserve(per_as.size());
  for (const auto& [asn, acc] : per_as)
    view.ases.push_back(AsHosting{asn, acc.servers, acc.orgs.size()});

  const auto by_servers_desc = [](const auto& a, const auto& b) {
    return a.server_ips > b.server_ips;
  };
  std::sort(view.orgs.begin(), view.orgs.end(), by_servers_desc);
  std::sort(view.ases.begin(), view.ases.end(), by_servers_desc);
  return view;
}

}  // namespace ixp::analysis
