#include "analysis/case_studies.hpp"

namespace ixp::analysis {

HttpsTrendRow https_trend_row(const core::WeeklyReport& report) {
  HttpsTrendRow row;
  row.week = report.week;
  row.https_servers = report.dissection.https_server_ips;
  row.all_servers = report.dissection.web_server_ips;
  row.https_server_share =
      row.all_servers == 0
          ? 0.0
          : static_cast<double>(row.https_servers) /
                static_cast<double>(row.all_servers);
  double https_bytes = 0.0;
  for (const core::ServerObservation& server : report.servers) {
    if (server.https) https_bytes += server.bytes;
  }
  const double peering = report.peering_bytes();
  // Per-IP byte sums count each sample on both endpoints; halve for a
  // share of sample bytes.
  row.https_traffic_share = peering > 0.0 ? https_bytes / (2.0 * peering) : 0.0;
  return row;
}

std::vector<DataCenterCount> match_published_ranges(
    const gen::InternetModel& model, std::uint32_t org_index,
    const std::unordered_set<net::Ipv4Addr>& observed_servers) {
  const auto& org = model.orgs()[org_index];
  std::vector<DataCenterCount> counts;
  counts.reserve(org.data_centers.size() + 1);
  for (const auto& dc : org.data_centers)
    counts.push_back(DataCenterCount{dc.name, 0});
  counts.push_back(DataCenterCount{"(unmapped)", 0});

  for (const auto& published : model.published_servers(org_index)) {
    if (observed_servers.count(published.addr) == 0) continue;
    const std::size_t slot =
        published.data_center >= 0 &&
                static_cast<std::size_t>(published.data_center) <
                    org.data_centers.size()
            ? static_cast<std::size_t>(published.data_center)
            : counts.size() - 1;
    counts[slot].observed_servers += 1;
  }
  return counts;
}

}  // namespace ixp::analysis
