#include "analysis/churn_tracker.hpp"

#include <stdexcept>

namespace ixp::analysis {

ChurnTracker::ChurnTracker(int first_week, int last_week)
    : first_week_(first_week), last_week_(last_week) {
  if (last_week < first_week || last_week - first_week >= 32)
    throw std::invalid_argument{"ChurnTracker: bad week range"};
}

void ChurnTracker::observe(std::uint64_t key, int week, geo::Region region,
                           double bytes) {
  if (week < first_week_ || week > last_week_) return;
  Entry& entry = entries_[key];
  const int index = week - first_week_;
  entry.active_mask |= 1u << index;
  entry.region = region;
  if (entry.bytes.size() <= static_cast<std::size_t>(index))
    entry.bytes.resize(static_cast<std::size_t>(index) + 1, 0.0f);
  entry.bytes[static_cast<std::size_t>(index)] += static_cast<float>(bytes);
}

std::vector<ChurnTracker::WeekBreakdown> ChurnTracker::breakdown() const {
  const int weeks = last_week_ - first_week_ + 1;
  std::vector<WeekBreakdown> out(static_cast<std::size_t>(weeks));
  for (int w = 0; w < weeks; ++w) out[static_cast<std::size_t>(w)].week = first_week_ + w;

  for (const auto& [key, entry] : entries_) {
    const auto region = static_cast<std::size_t>(entry.region);
    for (int w = 0; w < weeks; ++w) {
      if ((entry.active_mask & (1u << w)) == 0) continue;
      WeekBreakdown& week = out[static_cast<std::size_t>(w)];
      const double bytes =
          static_cast<std::size_t>(w) < entry.bytes.size()
              ? static_cast<double>(entry.bytes[static_cast<std::size_t>(w)])
              : 0.0;
      week.active += 1;
      week.active_bytes += bytes;
      week.active_bytes_by_region[region] += bytes;

      // History up to (excluding) this week.
      const std::uint32_t earlier = entry.active_mask & ((1u << w) - 1);
      const std::uint32_t all_earlier = w == 0 ? 0 : (1u << w) - 1;
      ChurnClass cls;
      if (earlier == 0 && w > 0) {
        cls = ChurnClass::kFresh;
      } else if (earlier == all_earlier) {
        // Seen in every earlier week (vacuously true in the first week).
        cls = ChurnClass::kStable;
      } else {
        cls = ChurnClass::kRecurrent;
      }
      switch (cls) {
        case ChurnClass::kStable:
          week.stable += 1;
          week.stable_bytes += bytes;
          week.stable_by_region[region] += 1;
          week.stable_bytes_by_region[region] += bytes;
          break;
        case ChurnClass::kRecurrent:
          week.recurrent += 1;
          week.recurrent_bytes += bytes;
          week.recurrent_by_region[region] += 1;
          week.recurrent_bytes_by_region[region] += bytes;
          break;
        case ChurnClass::kFresh:
          week.fresh += 1;
          week.fresh_bytes += bytes;
          week.fresh_by_region[region] += 1;
          break;
      }
    }
  }
  return out;
}

}  // namespace ixp::analysis
