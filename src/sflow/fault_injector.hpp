// Deterministic trace corruption for robustness testing.
//
// A live collector's stream suffers datagram loss, reordering, and the
// occasional corrupt payload; recorded traces additionally pick up bit
// rot and truncation. FaultInjector reproduces that damage on demand:
// it parses an intact trace, then — driven entirely by a seeded Rng, so
// the same (input, seed, mix) always yields the same corrupted bytes —
// applies a configurable mix of
//   - bit flips inside a record's payload,
//   - datagram truncation (the length prefix promises more than follows),
//   - bogus length prefixes (the payload is intact but unreachable),
//   - duplicated records,
//   - reordered (swapped) adjacent records,
//   - a mid-file EOF that cuts the trace inside a record.
//
// This is the adversary the TraceReader resynchronization path (DESIGN.md
// §8) is tested against, and what `ixpscope corrupt` exposes on the CLI.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace ixp::sflow {

/// Per-record fault probabilities; all independent except that a record
/// hit by mid-file EOF ends the output. default_mix() spreads a few
/// percent across every kind — enough damage to exercise resync without
/// drowning the trace.
struct FaultMix {
  double bit_flip = 0.0;
  double truncate = 0.0;
  double bogus_length = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double mid_file_eof = 0.0;

  [[nodiscard]] static FaultMix default_mix() noexcept {
    return {0.02, 0.01, 0.01, 0.01, 0.02, 0.0};
  }
  [[nodiscard]] static FaultMix none() noexcept { return {}; }
};

/// What one corruption pass actually did.
struct FaultReport {
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;  ///< records written (duplicates add, EOF cuts)
  std::uint64_t bit_flips = 0;
  std::uint64_t truncations = 0;
  std::uint64_t bogus_lengths = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  bool cut_short = false;  ///< mid-file EOF fired
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;

  [[nodiscard]] std::uint64_t faults() const noexcept {
    return bit_flips + truncations + bogus_lengths + duplicates + reorders +
           (cut_short ? 1 : 0);
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed,
                         FaultMix mix = FaultMix::default_mix())
      : seed_(seed), mix_(mix) {}

  /// Corrupts the trace in `bytes` into `out` (cleared first). Returns
  /// nullopt when the input is not a valid ixpscope trace — the injector
  /// only damages traces it can parse, so every fault is intentional.
  std::optional<FaultReport> corrupt(std::span<const std::byte> bytes,
                                     std::vector<std::byte>& out) const;

  /// Stream form: reads the whole trace from `in`, writes to `out`.
  std::optional<FaultReport> corrupt(std::istream& in, std::ostream& out) const;

  // ---- storage blob primitives (the snapshot store's fault profile) ----
  //
  // Unlike corrupt(), these treat the input as an opaque blob: nothing is
  // parsed, so any on-disk artifact — snapshot files included — can be
  // damaged the way real storage damages it (a torn write, a lost tail,
  // a flipped bit, a doubled sector). store::StoreFaultInjector composes
  // them into the per-fault-class snapshot matrix.

  /// Cuts the blob to a random strictly-shorter length in [0, size).
  static void torn_tail(std::vector<std::byte>& blob, util::Rng& rng);

  /// Cuts the blob to exactly `keep` bytes (no-op when keep >= size).
  static void truncate_blob(std::vector<std::byte>& blob, std::size_t keep);

  /// Flips one random bit inside blob[offset, offset + length).
  static void flip_bit_in(std::vector<std::byte>& blob, std::size_t offset,
                          std::size_t length, util::Rng& rng);

  /// Appends a copy of the blob's final `tail_bytes` bytes (a duplicated
  /// footer/sector); no-op when the blob is shorter than that.
  static void duplicate_tail(std::vector<std::byte>& blob,
                             std::size_t tail_bytes);

 private:
  std::uint64_t seed_;
  FaultMix mix_;
};

}  // namespace ixp::sflow
