#include "sflow/mapped_trace.hpp"

#include <cstring>
#include <fstream>
#include <utility>

#include "sflow/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define IXPSCOPE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define IXPSCOPE_HAVE_MMAP 0
#endif

namespace ixp::sflow {

MappedTrace::~MappedTrace() { release(); }

MappedTrace::MappedTrace(MappedTrace&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      owned_(std::move(other.owned_)),
      error_(other.error_) {
  if (!mapped_ && !owned_.empty()) data_ = owned_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  other.error_ = Error::kOpenFailed;
}

MappedTrace& MappedTrace::operator=(MappedTrace&& other) noexcept {
  if (this != &other) {
    release();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    owned_ = std::move(other.owned_);
    error_ = other.error_;
    if (!mapped_ && !owned_.empty()) data_ = owned_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
    other.error_ = Error::kOpenFailed;
  }
  return *this;
}

void MappedTrace::release() noexcept {
#if IXPSCOPE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  owned_.clear();
  owned_.shrink_to_fit();
}

void MappedTrace::validate_header() noexcept {
  if (size_ < kTraceHeaderBytes) {
    error_ = Error::kTooShort;
    return;
  }
  if (std::memcmp(data_, kTraceMagic, sizeof kTraceMagic) != 0 ||
      load_be32(data_ + sizeof kTraceMagic) != kTraceVersion) {
    error_ = Error::kBadHeader;
    return;
  }
  error_ = Error::kNone;
}

MappedTrace MappedTrace::open(const std::string& path) {
  MappedTrace trace;
#if IXPSCOPE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    trace.error_ = Error::kOpenFailed;
    return trace;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    trace.error_ = Error::kOpenFailed;
    return trace;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kTraceHeaderBytes) {
    ::close(fd);
    trace.size_ = size;
    trace.error_ = Error::kTooShort;
    return trace;
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the pages alive
  if (map != MAP_FAILED) {
    trace.data_ = static_cast<const std::byte*>(map);
    trace.size_ = size;
    trace.mapped_ = true;
    trace.validate_header();
    if (!trace.ok()) {
      const Error error = trace.error_;
      trace.release();
      trace.error_ = error;
    }
    return trace;
  }
  // mmap refused (e.g. special file, resource limit): fall through to the
  // portable read path below.
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    trace.error_ = Error::kOpenFailed;
    return trace;
  }
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  if (end < 0) {
    trace.error_ = Error::kOpenFailed;
    return trace;
  }
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(end));
  if (!bytes.empty() &&
      !in.read(reinterpret_cast<char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()))) {
    trace.error_ = Error::kOpenFailed;
    return trace;
  }
  return adopt(std::move(bytes));
}

MappedTrace MappedTrace::adopt(std::vector<std::byte> bytes) {
  MappedTrace trace;
  trace.owned_ = std::move(bytes);
  trace.data_ = trace.owned_.data();
  trace.size_ = trace.owned_.size();
  trace.mapped_ = false;
  trace.validate_header();
  if (!trace.ok()) {
    const Error error = trace.error_;
    trace.release();
    trace.error_ = error;
  }
  return trace;
}

const char* MappedTrace::error_name(Error error) noexcept {
  switch (error) {
    case Error::kNone: return "ok";
    case Error::kOpenFailed: return "cannot open trace file";
    case Error::kTooShort: return "trace shorter than the 12-byte header";
    case Error::kBadHeader: return "not an ixpscope trace (bad magic/version)";
  }
  return "unknown error";
}

}  // namespace ixp::sflow
