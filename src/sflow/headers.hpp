// Wire-format headers: Ethernet, IPv4, TCP, UDP.
//
// sFlow samples are raw Ethernet frames, so the generator must *serialize*
// real headers and the classifier must *parse* them back from the 128-byte
// captures. Serialization is explicit big-endian byte writing — no struct
// punning, no host-endian dependence (Core Guidelines: avoid reinterpret
// casts for I/O).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "net/ipv4.hpp"

namespace ixp::sflow {

/// A 48-bit IEEE MAC address.
class MacAddr {
 public:
  constexpr MacAddr() = default;
  explicit constexpr MacAddr(std::array<std::uint8_t, 6> octets) noexcept
      : octets_(octets) {}

  /// Deterministically derives a locally-administered unicast MAC from an
  /// integer id (used for IXP member ports).
  [[nodiscard]] static MacAddr from_id(std::uint64_t id) noexcept;

  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& octets()
      const noexcept {
    return octets_;
  }
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const MacAddr&, const MacAddr&) noexcept =
      default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kIpv6 = 0x86dd,
};

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kIgmp = 2,
  kTcp = 6,
  kUdp = 17,
  kGre = 47,
  kEsp = 50,
  kSctp = 132,
};

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddr dst;
  MacAddr src;
  std::uint16_t ether_type = 0;

  /// Writes exactly kSize bytes; requires out.size() >= kSize.
  void serialize(std::span<std::byte> out) const noexcept;
  [[nodiscard]] static std::optional<EthernetHeader> parse(
      std::span<const std::byte> in) noexcept;
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // no options

  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  net::Ipv4Addr src;
  net::Ipv4Addr dst;

  /// Writes exactly kSize bytes with a correct header checksum.
  void serialize(std::span<std::byte> out) const noexcept;

  /// Parses and *verifies the checksum*; returns nullopt on any
  /// malformation (short buffer, version != 4, bad checksum).
  [[nodiscard]] static std::optional<Ipv4Header> parse(
      std::span<const std::byte> in) noexcept;

  /// RFC 1071 ones-complement checksum of a 20-byte header image whose
  /// checksum field is zero.
  [[nodiscard]] static std::uint16_t checksum(
      std::span<const std::byte> header) noexcept;
};

struct TcpHeader {
  static constexpr std::size_t kSize = 20;  // no options

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;  // CWR|ECE|URG|ACK|PSH|RST|SYN|FIN
  std::uint16_t window = 65535;

  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;

  void serialize(std::span<std::byte> out) const noexcept;
  [[nodiscard]] static std::optional<TcpHeader> parse(
      std::span<const std::byte> in) noexcept;
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload

  void serialize(std::span<std::byte> out) const noexcept;
  [[nodiscard]] static std::optional<UdpHeader> parse(
      std::span<const std::byte> in) noexcept;
};

}  // namespace ixp::sflow
