// Trace recording and replay.
//
// The paper's measurement setup stores the collector's sFlow stream and
// replays it through analysis pipelines. TraceWriter batches FlowSamples
// into length-prefixed sFlow datagrams on any std::ostream; TraceReader
// streams them back. This is what makes the pipeline usable on recorded
// data: generate once, analyze many times — or ingest a real collector
// dump converted to this framing.
//
// File layout: magic "IXPSCOPE" + u32 version, then repeated
// [u32 datagram length][datagram bytes] until EOF.
//
// Real traces get damaged: bits flip on disk, transfers truncate, a
// crashed collector leaves a half-written record. TraceReader therefore
// carries a failure model (DESIGN.md §8): every corrupt record is
// classified into an error taxonomy (ReaderStats), and — budget
// permitting (ReadPolicy) — the reader resynchronizes by scanning
// forward for the next plausible length-prefixed datagram instead of
// halting. Every byte of the input is accounted for: it is either the
// 12-byte header, part of a delivered record, or counted in
// `bytes_skipped`.
#pragma once

#include <cstdint>
#include <functional>
#include <istream>
#include <limits>
#include <optional>
#include <ostream>

#include "sflow/datagram.hpp"

namespace ixp::sflow {

inline constexpr char kTraceMagic[8] = {'I', 'X', 'P', 'S', 'C', 'O', 'P', 'E'};
inline constexpr std::uint32_t kTraceVersion = 1;

/// Smallest encodable datagram: five header u32s plus the counter count.
inline constexpr std::uint32_t kMinDatagramBytes = 24;
/// Upper bound on a plausible record; anything larger is a bad length.
/// (The writer's 128-sample batches are ~20 KiB; 1 MiB leaves headroom.)
inline constexpr std::uint32_t kMaxDatagramBytes = 1u << 20;
/// Bytes of trace header: the magic plus the u32 version.
inline constexpr std::uint64_t kTraceHeaderBytes = sizeof kTraceMagic + 4;

/// Stream-position key of sample `index` inside the record whose length
/// prefix starts at byte `offset`. Strictly increasing along the stream
/// (records are ≥ 28 bytes apart and a ≤1 MiB payload holds < 2^16
/// samples), so it totally orders samples the same way a running sample
/// counter would — which is all the analysis pipeline's order statistics
/// consume. Unlike a counter, it is computable for any record in
/// isolation: the property that lets mapped-trace segments be decoded and
/// analyzed in parallel with no sequence handoff between workers.
/// (Offsets stay below 2^48 — 256 TiB per trace file — by construction.)
[[nodiscard]] constexpr std::uint64_t stream_seq_key(std::uint64_t offset,
                                                     std::size_t index) noexcept {
  return (offset << 16) | static_cast<std::uint64_t>(index);
}

/// Buffers samples and writes them as datagrams of up to `batch` samples.
/// Flushes on destruction; call flush() to force a partial batch out.
class TraceWriter {
 public:
  /// Writes the trace header immediately. `agent` identifies the
  /// exporting switch in every datagram.
  TraceWriter(std::ostream& out, net::Ipv4Addr agent, std::size_t batch = 64);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const FlowSample& sample);
  void flush();

  [[nodiscard]] std::uint64_t samples_written() const noexcept {
    return samples_written_;
  }
  [[nodiscard]] std::uint32_t datagrams_written() const noexcept {
    return sequence_;
  }

 private:
  std::ostream* out_;
  net::Ipv4Addr agent_;
  std::size_t batch_;
  Datagram pending_;
  std::uint32_t sequence_ = 0;
  std::uint64_t samples_written_ = 0;
};

/// How a TraceReader responds to corruption. `max_errors` is the number
/// of corrupt records tolerated (each one resynchronized past) before the
/// reader gives up and clears ok(). strict() tolerates none — the first
/// corrupt record halts the read, which is the historical behavior and
/// the default.
struct ReadPolicy {
  std::uint64_t max_errors = 0;

  [[nodiscard]] static constexpr ReadPolicy strict() noexcept { return {0}; }
  [[nodiscard]] static constexpr ReadPolicy lenient(
      std::uint64_t budget =
          std::numeric_limits<std::uint64_t>::max()) noexcept {
    return {budget};
  }
};

/// Error taxonomy and byte accounting for one TraceReader. The invariant
/// (tested by the corruption matrix) is exact accounting once the reader
/// reaches end-of-input:
///   input_size == 12 (header) + bytes_delivered + bytes_skipped
struct ReaderStats {
  // Delivery side.
  std::uint64_t datagrams = 0;        ///< records decoded and delivered
  std::uint64_t samples = 0;          ///< flow samples delivered
  std::uint64_t bytes_delivered = 0;  ///< length prefix + payload of each

  // Error taxonomy.
  std::uint64_t bad_magic = 0;     ///< header magic/version rejected
  std::uint64_t bad_length = 0;    ///< length prefix of 0 or > kMaxDatagramBytes
  std::uint64_t truncated = 0;     ///< EOF inside a length prefix or payload
  std::uint64_t decode_errors = 0; ///< payload failed Datagram decode

  // Recovery.
  std::uint64_t resyncs = 0;        ///< successful scans to a later record
  std::uint64_t bytes_skipped = 0;  ///< every byte not header / delivered

  [[nodiscard]] std::uint64_t errors() const noexcept {
    return bad_magic + bad_length + truncated + decode_errors;
  }
  [[nodiscard]] bool degraded() const noexcept { return errors() > 0; }

  /// Field-wise sum — what rolls per-segment cursor stats up into the
  /// whole-file taxonomy (segments partition the byte accounting).
  ReaderStats& operator+=(const ReaderStats& other) noexcept {
    datagrams += other.datagrams;
    samples += other.samples;
    bytes_delivered += other.bytes_delivered;
    bad_magic += other.bad_magic;
    bad_length += other.bad_length;
    truncated += other.truncated;
    decode_errors += other.decode_errors;
    resyncs += other.resyncs;
    bytes_skipped += other.bytes_skipped;
    return *this;
  }

  friend bool operator==(const ReaderStats&, const ReaderStats&) = default;
};

/// Streams samples back out of a recorded trace.
///
/// read_batch() is the primitive: it pulls samples in stream order across
/// datagram boundaries, which is what the parallel analysis engine feeds
/// its worker threads with. next() and for_each() are conveniences built
/// on top of it; the three can be interleaved freely.
///
/// Corruption handling is governed by the ReadPolicy: under the default
/// strict policy the first corrupt record clears ok() and ends the read;
/// under a lenient policy the reader seeks past the damage to the next
/// plausible record (the stream must be seekable — files and
/// stringstreams are) and keeps going until the error budget is spent.
/// stats() tells you exactly what was lost either way.
class TraceReader {
 public:
  /// Batch size used by for_each()'s internal pulls.
  static constexpr std::size_t kDefaultBatch = 256;

  /// Validates the header; `ok()` is false on a bad magic/version.
  explicit TraceReader(std::istream& in,
                       ReadPolicy policy = ReadPolicy::strict());

  /// Re-targets the reader at `in` (which the caller has positioned at the
  /// start of a trace), clearing stats and position but keeping every
  /// internal buffer's capacity. A replay loop that seeks one stream back
  /// to 0 and reset()s runs allocation-free after the first pass.
  void reset(std::istream& in, ReadPolicy policy = ReadPolicy::strict());

  /// True until the header is rejected or the error budget is exceeded.
  /// A lenient reader that resynchronized past damage stays ok(); check
  /// stats().degraded() to see whether anything was lost.
  [[nodiscard]] bool ok() const noexcept { return ok_; }

  [[nodiscard]] const ReaderStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ReadPolicy& policy() const noexcept { return policy_; }

  /// Clears `out` and refills it with up to `max` samples in stream
  /// order; returns the number delivered (0 at end-of-trace or once the
  /// error budget clears ok()).
  std::size_t read_batch(std::vector<FlowSample>& out, std::size_t max);

  /// Clears `out` and refills it with the (remaining) samples of exactly
  /// one delivered record, setting `seq_base` to the stream_seq_key of the
  /// first sample delivered. Returns the number delivered, 0 at
  /// end-of-trace. Record-granular batches carry position-derived keys,
  /// which is what keeps a streamed analysis byte-identical to a
  /// mapped-parallel one over the same trace.
  std::size_t read_record(std::vector<FlowSample>& out, std::uint64_t& seq_base);

  /// Invokes `sink` for every sample in order; returns the number of
  /// samples delivered.
  std::uint64_t for_each(const std::function<void(const FlowSample&)>& sink);

  /// Pulls the next sample, or nullopt at end-of-trace / on failure.
  [[nodiscard]] std::optional<FlowSample> next();

 private:
  bool refill();
  bool resync(std::uint64_t bad_record_start);
  [[nodiscard]] bool spend_error();

  std::istream* in_;
  ReadPolicy policy_;
  ReaderStats stats_;
  bool ok_ = false;
  std::uint64_t pos_ = 0;  ///< absolute offset of the next unread byte
  Datagram current_;       ///< decoded datagram being drained
  std::size_t cursor_ = 0; ///< next undelivered sample in current_
  std::uint64_t current_offset_ = 0;  ///< record start of current_
  std::vector<std::byte> scratch_;    ///< payload bytes, reused per record
  Datagram probe_;                    ///< resync decode probe, reused
};

}  // namespace ixp::sflow
