// Trace recording and replay.
//
// The paper's measurement setup stores the collector's sFlow stream and
// replays it through analysis pipelines. TraceWriter batches FlowSamples
// into length-prefixed sFlow datagrams on any std::ostream; TraceReader
// streams them back. This is what makes the pipeline usable on recorded
// data: generate once, analyze many times — or ingest a real collector
// dump converted to this framing.
//
// File layout: magic "IXPSCOPE" + u32 version, then repeated
// [u32 datagram length][datagram bytes] until EOF.
#pragma once

#include <cstdint>
#include <functional>
#include <istream>
#include <optional>
#include <ostream>

#include "sflow/datagram.hpp"

namespace ixp::sflow {

inline constexpr char kTraceMagic[8] = {'I', 'X', 'P', 'S', 'C', 'O', 'P', 'E'};
inline constexpr std::uint32_t kTraceVersion = 1;

/// Buffers samples and writes them as datagrams of up to `batch` samples.
/// Flushes on destruction; call flush() to force a partial batch out.
class TraceWriter {
 public:
  /// Writes the trace header immediately. `agent` identifies the
  /// exporting switch in every datagram.
  TraceWriter(std::ostream& out, net::Ipv4Addr agent, std::size_t batch = 64);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const FlowSample& sample);
  void flush();

  [[nodiscard]] std::uint64_t samples_written() const noexcept {
    return samples_written_;
  }
  [[nodiscard]] std::uint32_t datagrams_written() const noexcept {
    return sequence_;
  }

 private:
  std::ostream* out_;
  net::Ipv4Addr agent_;
  std::size_t batch_;
  Datagram pending_;
  std::uint32_t sequence_ = 0;
  std::uint64_t samples_written_ = 0;
};

/// Streams samples back out of a recorded trace.
///
/// read_batch() is the primitive: it pulls samples in stream order across
/// datagram boundaries, which is what the parallel analysis engine feeds
/// its worker threads with. next() and for_each() are conveniences built
/// on top of it; the three can be interleaved freely.
class TraceReader {
 public:
  /// Batch size used by for_each()'s internal pulls.
  static constexpr std::size_t kDefaultBatch = 256;

  /// Validates the header; `ok()` is false on a bad magic/version.
  explicit TraceReader(std::istream& in);

  [[nodiscard]] bool ok() const noexcept { return ok_; }

  /// Clears `out` and refills it with up to `max` samples in stream
  /// order; returns the number delivered (0 at end-of-trace). Stops
  /// early (and clears ok()) at the first corrupt datagram.
  std::size_t read_batch(std::vector<FlowSample>& out, std::size_t max);

  /// Invokes `sink` for every sample in order; returns the number of
  /// samples delivered. Stops (and clears ok()) at the first corrupt
  /// datagram.
  std::uint64_t for_each(const std::function<void(const FlowSample&)>& sink);

  /// Pulls the next sample, or nullopt at end-of-trace / on corruption.
  [[nodiscard]] std::optional<FlowSample> next();

 private:
  bool refill();

  std::istream* in_;
  bool ok_ = false;
  Datagram current_;
  std::size_t cursor_ = 0;
  std::vector<FlowSample> one_;  // next()'s single-sample batch
};

}  // namespace ixp::sflow
