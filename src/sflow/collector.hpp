// sFlow collector front-end.
//
// A real deployment receives datagrams over UDP from many switch agents;
// datagrams get lost, reordered, and occasionally corrupted. The
// Collector ingests raw datagram payloads, dispatches flow and counter
// samples to sinks, and keeps the bookkeeping an operator actually
// watches: per-agent sequence-gap estimates (lost datagrams), decode
// failures, and sample totals.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>

#include "sflow/datagram.hpp"

namespace ixp::sflow {

struct CollectorStats {
  std::uint64_t datagrams = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t flow_samples = 0;
  std::uint64_t counter_samples = 0;
  /// Datagrams inferred lost from per-agent sequence gaps.
  std::uint64_t lost_datagrams = 0;
  std::uint64_t agents = 0;
};

class Collector {
 public:
  using FlowSink = std::function<void(const FlowSample&)>;
  using CounterSink = std::function<void(net::Ipv4Addr agent, const CounterSample&)>;

  explicit Collector(FlowSink flow_sink, CounterSink counter_sink = {})
      : flow_sink_(std::move(flow_sink)),
        counter_sink_(std::move(counter_sink)) {}

  /// Ingests one raw datagram payload (as read off the wire or a file).
  /// Returns false when the payload failed to decode.
  bool ingest(std::span<const std::byte> payload);

  /// Ingests an already-decoded datagram.
  void ingest(const Datagram& datagram);

  [[nodiscard]] CollectorStats stats() const;

 private:
  FlowSink flow_sink_;
  CounterSink counter_sink_;
  CollectorStats stats_;
  /// Last sequence number seen per agent, for gap accounting.
  std::unordered_map<net::Ipv4Addr, std::uint32_t> last_sequence_;
};

}  // namespace ixp::sflow
