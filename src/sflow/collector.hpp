// sFlow collector front-end.
//
// A real deployment receives datagrams over UDP from many switch agents;
// datagrams get lost, reordered, and occasionally corrupted. The
// Collector ingests raw datagram payloads, dispatches flow and counter
// samples to sinks, and keeps the bookkeeping an operator actually
// watches: per-agent sequence-gap estimates (lost datagrams), decode
// failures, and sample totals.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>

#include "sflow/datagram.hpp"
#include "util/flat_hash_map.hpp"

namespace ixp::sflow {

struct CollectorStats {
  std::uint64_t datagrams = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t flow_samples = 0;
  std::uint64_t counter_samples = 0;
  /// Datagrams inferred lost from per-agent sequence gaps.
  std::uint64_t lost_datagrams = 0;
  std::uint64_t agents = 0;
  /// Agents whose sequence tracking was evicted to honor the agent cap.
  /// A re-appearing evicted agent restarts gap accounting from scratch.
  std::uint64_t evicted_agents = 0;
};

class Collector {
 public:
  using FlowSink = std::function<void(const FlowSample&)>;
  using CounterSink = std::function<void(net::Ipv4Addr agent, const CounterSample&)>;

  /// Per-agent sequence state tracked before oldest-first eviction kicks
  /// in. A real fabric has hundreds of agents; the cap only matters when
  /// forged agent addresses flood the collector, which must not be able
  /// to grow memory without bound.
  static constexpr std::size_t kDefaultMaxAgents = 4096;

  explicit Collector(FlowSink flow_sink, CounterSink counter_sink = {},
                     std::size_t max_agents = kDefaultMaxAgents)
      : flow_sink_(std::move(flow_sink)),
        counter_sink_(std::move(counter_sink)),
        max_agents_(max_agents == 0 ? 1 : max_agents) {}

  /// Ingests one raw datagram payload (as read off the wire or a file).
  /// Returns false when the payload failed to decode.
  bool ingest(std::span<const std::byte> payload);

  /// Ingests an already-decoded datagram.
  void ingest(const Datagram& datagram);

  /// Called whenever an agent's sequence tracking is evicted to honor the
  /// agent cap, with the agent and the last sequence number it had
  /// reached. The collector service logs and counts these; a hook must
  /// not re-enter the collector.
  using EvictionHook =
      std::function<void(net::Ipv4Addr agent, std::uint32_t last_sequence)>;
  void set_eviction_hook(EvictionHook hook) { eviction_hook_ = std::move(hook); }

  [[nodiscard]] CollectorStats stats() const;

 private:
  FlowSink flow_sink_;
  CounterSink counter_sink_;
  EvictionHook eviction_hook_;
  std::size_t max_agents_;
  CollectorStats stats_;
  /// Last sequence number seen per agent, for gap accounting. Bounded by
  /// max_agents_: when full, the longest-tracked agent is evicted
  /// (arrival_order_ is the FIFO of first appearances).
  util::FlatHashMap<net::Ipv4Addr, std::uint32_t> last_sequence_;
  std::deque<net::Ipv4Addr> arrival_order_;
};

}  // namespace ixp::sflow
