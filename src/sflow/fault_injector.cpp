#include "sflow/fault_injector.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>

#include "sflow/trace.hpp"

namespace ixp::sflow {

namespace {

constexpr std::size_t kHeaderBytes = sizeof kTraceMagic + 4;

std::uint32_t read_be32(const std::byte* p) {
  return (std::to_integer<std::uint32_t>(p[0]) << 24) |
         (std::to_integer<std::uint32_t>(p[1]) << 16) |
         (std::to_integer<std::uint32_t>(p[2]) << 8) |
         std::to_integer<std::uint32_t>(p[3]);
}

void append_be32(std::vector<std::byte>& out, std::uint32_t v) {
  out.push_back(static_cast<std::byte>(v >> 24));
  out.push_back(static_cast<std::byte>((v >> 16) & 0xff));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xff));
  out.push_back(static_cast<std::byte>(v & 0xff));
}

/// Splits an intact trace into its record payloads; nullopt on any
/// framing damage (the injector refuses inputs it cannot fully parse).
std::optional<std::vector<std::vector<std::byte>>> parse_records(
    std::span<const std::byte> bytes) {
  if (bytes.size() < kHeaderBytes) return std::nullopt;
  if (std::memcmp(bytes.data(), kTraceMagic, sizeof kTraceMagic) != 0)
    return std::nullopt;
  if (read_be32(bytes.data() + sizeof kTraceMagic) != kTraceVersion)
    return std::nullopt;

  std::vector<std::vector<std::byte>> records;
  std::size_t at = kHeaderBytes;
  while (at < bytes.size()) {
    if (at + 4 > bytes.size()) return std::nullopt;
    const std::uint32_t length = read_be32(bytes.data() + at);
    at += 4;
    if (length == 0 || at + length > bytes.size()) return std::nullopt;
    records.emplace_back(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                         bytes.begin() + static_cast<std::ptrdiff_t>(at + length));
    at += length;
  }
  return records;
}

}  // namespace

std::optional<FaultReport> FaultInjector::corrupt(
    std::span<const std::byte> bytes, std::vector<std::byte>& out) const {
  auto records = parse_records(bytes);
  if (!records) return std::nullopt;

  FaultReport report;
  report.records_in = records->size();
  report.bytes_in = bytes.size();

  util::Rng root{seed_};
  util::Rng order_rng = root.fork(1);
  util::Rng emit_rng = root.fork(2);
  util::Rng payload_rng = root.fork(3);

  // Phase 1: swap adjacent records (collector-style reordering).
  for (std::size_t i = 0; i + 1 < records->size(); ++i) {
    if (order_rng.next_bool(mix_.reorder)) {
      std::swap((*records)[i], (*records)[i + 1]);
      ++report.reorders;
      ++i;  // a swapped pair is settled; don't swap its tail again
    }
  }

  // Phase 2: emit, with per-record payload damage.
  out.clear();
  out.reserve(bytes.size() + bytes.size() / 8);
  out.insert(out.end(), bytes.begin(),
             bytes.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes));

  const auto emit = [&](const std::vector<std::byte>& payload) {
    const auto length = static_cast<std::uint32_t>(payload.size());
    // At most one framing fault per emission; a record that keeps its
    // framing may still take bit flips.
    if (payload_rng.next_bool(mix_.bogus_length)) {
      std::uint32_t bogus;
      switch (payload_rng.next_below(3)) {
        case 0:
          bogus = 0;
          break;
        case 1:
          bogus = kMaxDatagramBytes + 1 +
                  static_cast<std::uint32_t>(payload_rng.next_below(1u << 16));
          break;
        default: {
          const auto delta =
              static_cast<std::uint32_t>(1 + payload_rng.next_below(32));
          bogus = payload_rng.next_bool(0.5) ? length + delta
                  : length > delta          ? length - delta
                                            : length + delta;
          break;
        }
      }
      append_be32(out, bogus);
      out.insert(out.end(), payload.begin(), payload.end());
      ++report.bogus_lengths;
      ++report.records_out;
      return;
    }
    if (payload_rng.next_bool(mix_.truncate) && payload.size() > 1) {
      // The prefix promises `length` bytes but delivers fewer: the reader
      // consumes into the next record and must resynchronize.
      const auto keep =
          static_cast<std::size_t>(payload_rng.next_below(payload.size()));
      append_be32(out, length);
      out.insert(out.end(), payload.begin(),
                 payload.begin() + static_cast<std::ptrdiff_t>(keep));
      ++report.truncations;
      ++report.records_out;
      return;
    }
    std::vector<std::byte> body = payload;
    if (payload_rng.next_bool(mix_.bit_flip)) {
      const auto flips = 1 + payload_rng.next_below(8);
      for (std::uint64_t f = 0; f < flips; ++f) {
        const auto bit = payload_rng.next_below(body.size() * 8);
        body[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
      }
      ++report.bit_flips;
    }
    append_be32(out, length);
    out.insert(out.end(), body.begin(), body.end());
    ++report.records_out;
  };

  for (const auto& payload : *records) {
    if (emit_rng.next_bool(mix_.mid_file_eof)) {
      // Cut the file inside this record: full length prefix, partial body.
      const auto keep =
          static_cast<std::size_t>(emit_rng.next_below(payload.size()));
      append_be32(out, static_cast<std::uint32_t>(payload.size()));
      out.insert(out.end(), payload.begin(),
                 payload.begin() + static_cast<std::ptrdiff_t>(keep));
      report.cut_short = true;
      ++report.records_out;
      break;
    }
    const bool duplicate = emit_rng.next_bool(mix_.duplicate);
    emit(payload);
    if (duplicate) {
      emit(payload);
      ++report.duplicates;
    }
  }

  report.bytes_out = out.size();
  return report;
}

void FaultInjector::torn_tail(std::vector<std::byte>& blob, util::Rng& rng) {
  if (blob.empty()) return;
  blob.resize(static_cast<std::size_t>(rng.next_below(blob.size())));
}

void FaultInjector::truncate_blob(std::vector<std::byte>& blob,
                                  std::size_t keep) {
  if (keep < blob.size()) blob.resize(keep);
}

void FaultInjector::flip_bit_in(std::vector<std::byte>& blob,
                                std::size_t offset, std::size_t length,
                                util::Rng& rng) {
  if (offset >= blob.size()) return;
  length = std::min(length, blob.size() - offset);
  if (length == 0) return;
  const auto bit = static_cast<std::size_t>(rng.next_below(length * 8));
  blob[offset + bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
}

void FaultInjector::duplicate_tail(std::vector<std::byte>& blob,
                                   std::size_t tail_bytes) {
  if (tail_bytes == 0 || blob.size() < tail_bytes) return;
  const std::size_t start = blob.size() - tail_bytes;
  // Append via index loop: push_back may reallocate, invalidating any
  // iterator into the tail being copied.
  for (std::size_t i = 0; i < tail_bytes; ++i)
    blob.push_back(blob[start + i]);
}

std::optional<FaultReport> FaultInjector::corrupt(std::istream& in,
                                                  std::ostream& out) const {
  std::vector<char> raw{std::istreambuf_iterator<char>{in},
                        std::istreambuf_iterator<char>{}};
  std::vector<std::byte> corrupted;
  const auto report =
      corrupt(std::as_bytes(std::span<const char>{raw}), corrupted);
  if (!report) return std::nullopt;
  out.write(reinterpret_cast<const char*>(corrupted.data()),
            static_cast<std::streamsize>(corrupted.size()));
  return report;
}

}  // namespace ixp::sflow
