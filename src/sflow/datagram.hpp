// sFlow v5-style datagram encoding.
//
// The collector at the IXP receives UDP datagrams, each bundling a batch
// of flow samples (sequence numbers, sampling rate, original frame length,
// and the truncated header bytes). This codec implements the subset of
// the sFlow v5 layout our pipeline uses — enough to serialize a capture
// stream to bytes and recover it intact, with strict bounds checking on
// decode (malformed datagrams are rejected, never over-read).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "sflow/frame.hpp"

namespace ixp::sflow {

/// Big-endian integer loads shared by the codec, the trace reader, and
/// the mapped-trace segmenter. Written as byte composition so they are
/// correct on any host endianness and alignment; compilers fold the
/// pattern into a single byte-swapped load.
[[nodiscard]] inline std::uint16_t load_be16(const std::byte* p) noexcept {
  return static_cast<std::uint16_t>((std::to_integer<std::uint16_t>(p[0]) << 8) |
                                    std::to_integer<std::uint16_t>(p[1]));
}

[[nodiscard]] inline std::uint32_t load_be32(const std::byte* p) noexcept {
  return (std::to_integer<std::uint32_t>(p[0]) << 24) |
         (std::to_integer<std::uint32_t>(p[1]) << 16) |
         (std::to_integer<std::uint32_t>(p[2]) << 8) |
         std::to_integer<std::uint32_t>(p[3]);
}

/// One flow sample inside a datagram.
struct FlowSample {
  std::uint32_t sequence = 0;
  std::uint32_t source_port = 0;    // ingress port index on the switch
  std::uint32_t sampling_rate = 0;  // 1-in-N
  SampledFrame frame;
};

/// Interface counters, exported alongside flow samples (sFlow's counter
/// records). These are exact, not sampled: the estimation-accuracy
/// analyses compare sampled estimates against them.
struct CounterSample {
  std::uint32_t port = 0;
  std::uint64_t in_frames = 0;
  std::uint64_t in_bytes = 0;
  std::uint64_t out_frames = 0;
  std::uint64_t out_bytes = 0;

  friend bool operator==(const CounterSample&, const CounterSample&) = default;
};

struct Datagram {
  static constexpr std::uint32_t kVersion = 5;

  net::Ipv4Addr agent;       // exporting switch
  std::uint32_t sequence = 0;  // datagram sequence number
  std::uint32_t uptime_ms = 0;
  std::vector<FlowSample> samples;
  std::vector<CounterSample> counters;
};

/// Serializes a datagram; layout (all integers big-endian):
///   u32 version | u32 agent | u32 seq | u32 uptime | u32 nsamples
///   per flow sample:    u32 seq | u32 port | u32 rate | u16 frame_len |
///                       u16 captured | captured bytes
///   then u32 ncounters; per counter sample: u32 port | 4 x u64
[[nodiscard]] std::vector<std::byte> encode(const Datagram& datagram);

/// Decodes; nullopt on any truncation, bad version, captured > 128, or
/// trailing garbage.
[[nodiscard]] std::optional<Datagram> decode(std::span<const std::byte> bytes);

/// Allocation-free form of decode(): refills `out`'s sample and counter
/// vectors in place, reusing their capacity across calls — the primitive
/// the trace-replay hot path is built on (one datagram scratch per
/// reader/cursor, zero steady-state heap traffic). Returns false and
/// clears `out`'s vectors on any malformation decode() would reject.
[[nodiscard]] bool decode_into(std::span<const std::byte> bytes, Datagram& out);

}  // namespace ixp::sflow
