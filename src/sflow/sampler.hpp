// Packet sampling (the "1 out of 16K" of §2.1).
//
// The IXP's switches export sFlow with a random 1:16384 packet sampling.
// Simulating every packet of a 14 PB/day fabric is infeasible, so the
// workload is flow-level: for a flow of N packets the number of sampled
// packets is Binomial(N, 1/rate) — statistically identical to per-packet
// Bernoulli sampling (the two paths are compared in micro_sflow and in
// the sampler tests; DESIGN.md ablation #1).
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace ixp::sflow {

/// The production sampling rate at the IXP.
inline constexpr std::uint32_t kPaperSamplingRate = 16384;

class Sampler {
 public:
  /// `rate` is the "1 out of `rate`" denominator; must be >= 1.
  explicit Sampler(std::uint32_t rate = kPaperSamplingRate) noexcept
      : rate_(rate == 0 ? 1 : rate) {}

  [[nodiscard]] std::uint32_t rate() const noexcept { return rate_; }
  [[nodiscard]] double probability() const noexcept { return 1.0 / rate_; }

  /// Number of sampled packets for a flow of `packet_count` packets
  /// (binomial thinning; the fast path).
  [[nodiscard]] std::uint64_t sample_flow(util::Rng& rng,
                                          std::uint64_t packet_count) const {
    return rng.next_binomial(packet_count, probability());
  }

  /// Per-packet Bernoulli decision (the exact path, for the ablation and
  /// for tests that need per-packet behaviour).
  [[nodiscard]] bool sample_packet(util::Rng& rng) const {
    return rng.next_bool(probability());
  }

  /// Expansion factor: each sampled packet/byte stands for `rate` real
  /// ones when estimating totals from samples.
  [[nodiscard]] double expansion() const noexcept {
    return static_cast<double>(rate_);
  }

 private:
  std::uint32_t rate_;
};

}  // namespace ixp::sflow
