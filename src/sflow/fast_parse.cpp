#include "sflow/fast_parse.hpp"

#include <cstring>

namespace ixp::sflow {

namespace {

constexpr std::size_t kIpAt = EthernetHeader::kSize;          // 14
constexpr std::size_t kL4At = kIpAt + Ipv4Header::kSize;      // 34

std::uint16_t load_be16(const std::byte* p) noexcept {
  return static_cast<std::uint16_t>((std::to_integer<std::uint16_t>(p[0]) << 8) |
                                    std::to_integer<std::uint16_t>(p[1]));
}

std::uint32_t load_be32(const std::byte* p) noexcept {
  return (std::to_integer<std::uint32_t>(p[0]) << 24) |
         (std::to_integer<std::uint32_t>(p[1]) << 16) |
         (std::to_integer<std::uint32_t>(p[2]) << 8) |
         std::to_integer<std::uint32_t>(p[3]);
}

/// RFC 1071 validity check over the fixed 20-byte header, summed as five
/// 32-bit lanes in native byte order. The ones-complement sum commutes
/// with byte swapping (end-around carry makes the sum rotation
/// invariant), so "folds to 0xFFFF" holds in either byte order exactly
/// when the big-endian word sum does — the wide loads need no bswap.
bool ipv4_checksum_ok(const std::byte* p) noexcept {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < Ipv4Header::kSize; i += 4) {
    std::uint32_t lane;
    std::memcpy(&lane, p + i, sizeof lane);
    sum += lane;
  }
  sum = (sum & 0xffffffffu) + (sum >> 32);
  sum = (sum & 0xffffu) + (sum >> 16);
  sum = (sum & 0xffffu) + (sum >> 16);
  return sum == 0xffffu;
}

}  // namespace

std::optional<ParsedFrame> parse_frame_fast(const SampledFrame& frame) {
  const std::size_t captured = frame.captured;
  const std::byte* p = frame.data.data();

  // Fast shape: full Ethernet + options-free IPv4 in the capture, valid
  // checksum. Everything else — including IHL > 5 and checksum failures,
  // which the scalar parser classifies rather than rejects — takes the
  // layer-by-layer path.
  if (captured < kL4At ||
      load_be16(p + 12) != static_cast<std::uint16_t>(EtherType::kIpv4) ||
      std::to_integer<std::uint8_t>(p[kIpAt]) != 0x45 ||
      !ipv4_checksum_ok(p + kIpAt))
    return parse_frame(frame);

  ParsedFrame parsed;
  std::array<std::uint8_t, 6> dst_mac;
  std::array<std::uint8_t, 6> src_mac;
  std::memcpy(dst_mac.data(), p, 6);
  std::memcpy(src_mac.data(), p + 6, 6);
  parsed.eth.dst = MacAddr{dst_mac};
  parsed.eth.src = MacAddr{src_mac};
  parsed.eth.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);

  Ipv4Header ip;
  ip.dscp = std::to_integer<std::uint8_t>(p[kIpAt + 1]);
  ip.total_length = load_be16(p + kIpAt + 2);
  ip.identification = load_be16(p + kIpAt + 4);
  ip.ttl = std::to_integer<std::uint8_t>(p[kIpAt + 8]);
  ip.protocol = std::to_integer<std::uint8_t>(p[kIpAt + 9]);
  ip.src = net::Ipv4Addr{load_be32(p + kIpAt + 12)};
  ip.dst = net::Ipv4Addr{load_be32(p + kIpAt + 16)};
  parsed.ip = ip;

  const std::size_t l4 = captured - kL4At;
  if (ip.protocol == static_cast<std::uint8_t>(IpProto::kTcp)) {
    if (l4 >= TcpHeader::kSize &&
        (std::to_integer<std::uint8_t>(p[kL4At + 12]) >> 4) >= 5) {
      TcpHeader tcp;
      tcp.src_port = load_be16(p + kL4At);
      tcp.dst_port = load_be16(p + kL4At + 2);
      tcp.seq = load_be32(p + kL4At + 4);
      tcp.ack = load_be32(p + kL4At + 8);
      tcp.flags = std::to_integer<std::uint8_t>(p[kL4At + 13]);
      tcp.window = load_be16(p + kL4At + 14);
      parsed.tcp = tcp;
      parsed.payload = frame.bytes().subspan(kL4At + TcpHeader::kSize);
    }
  } else if (ip.protocol == static_cast<std::uint8_t>(IpProto::kUdp)) {
    if (l4 >= UdpHeader::kSize) {
      UdpHeader udp;
      udp.src_port = load_be16(p + kL4At);
      udp.dst_port = load_be16(p + kL4At + 2);
      udp.length = load_be16(p + kL4At + 4);
      if (udp.length >= UdpHeader::kSize) {
        parsed.udp = udp;
        parsed.payload = frame.bytes().subspan(kL4At + UdpHeader::kSize);
      }
    }
  }
  return parsed;
}

}  // namespace ixp::sflow
