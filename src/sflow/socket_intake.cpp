#include "sflow/socket_intake.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ixp::sflow {

namespace {

void store_be32(std::byte* p, std::uint32_t v) {
  p[0] = static_cast<std::byte>(v >> 24);
  p[1] = static_cast<std::byte>(v >> 16);
  p[2] = static_cast<std::byte>(v >> 8);
  p[3] = static_cast<std::byte>(v);
}

void store_be64(std::byte* p, std::uint64_t v) {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

std::uint64_t load_be64(const std::byte* p) {
  return (std::uint64_t{load_be32(p)} << 32) | load_be32(p + 4);
}

/// The agent address sits at payload bytes 4..8 (after the version word).
net::Ipv4Addr peek_agent(std::span<const std::byte> payload) {
  if (payload.size() < 8) return net::Ipv4Addr{};
  return net::Ipv4Addr{load_be32(payload.data() + 4)};
}

void set_error(std::string* error, const char* what) {
  if (error != nullptr) *error = std::string{what} + ": " + std::strerror(errno);
}

}  // namespace

std::vector<std::byte> encode_replay_frame(std::uint64_t offset,
                                           std::span<const std::byte> payload) {
  std::vector<std::byte> frame(kReplayFrameHeaderBytes + payload.size());
  store_be32(frame.data(), kReplayMagic);
  store_be64(frame.data() + 4, offset);
  std::memcpy(frame.data() + kReplayFrameHeaderBytes, payload.data(),
              payload.size());
  return frame;
}

DatagramEnvelope parse_frame(std::span<const std::byte> bytes) {
  DatagramEnvelope envelope;
  std::span<const std::byte> payload = bytes;
  if (bytes.size() >= kReplayFrameHeaderBytes &&
      load_be32(bytes.data()) == kReplayMagic) {
    envelope.offset = load_be64(bytes.data() + 4);
    payload = bytes.subspan(kReplayFrameHeaderBytes);
  }
  envelope.agent = peek_agent(payload);
  envelope.payload.assign(payload.begin(), payload.end());
  return envelope;
}

// ---- AgentQueues ----------------------------------------------------------

AgentQueues::Row& AgentQueues::row_for(net::Ipv4Addr agent) {
  const auto [it, first_time] = rows_.try_emplace(agent, Row{});
  if (first_time) {
    arrival_order_.push_back(agent);
    if (rows_.size() > max_agents_) {
      const net::Ipv4Addr victim = arrival_order_.front();
      arrival_order_.pop_front();
      if (const auto found = rows_.find(victim); found != rows_.end()) {
        // Fold the counters so totals stay exact; in-flight envelopes of
        // the victim keep flowing (take() tolerates a missing row).
        evicted_ += found->second.counters;
        rows_.erase(victim);
      }
      ++evicted_agents_;
    }
  }
  // try_emplace's iterator can be stale after the erase-triggered shift;
  // re-find to be safe.
  return rows_.find(agent)->second;
}

bool AgentQueues::offer(DatagramEnvelope&& envelope) {
  {
    std::lock_guard lock{mutex_};
    Row& row = row_for(envelope.agent);
    ++row.counters.received;
    if (closed_ || row.queued >= capacity_) {
      ++row.counters.dropped;
      return false;
    }
    ++row.queued;
    fifo_.push_back(std::move(envelope));
  }
  not_empty_.notify_one();
  return true;
}

bool AgentQueues::take(DatagramEnvelope& out) {
  std::unique_lock lock{mutex_};
  not_empty_.wait(lock, [&] { return !fifo_.empty() || closed_; });
  if (fifo_.empty()) return false;
  out = std::move(fifo_.front());
  fifo_.pop_front();
  if (const auto found = rows_.find(out.agent); found != rows_.end()) {
    ++found->second.counters.taken;
    if (found->second.queued > 0) --found->second.queued;
  } else {
    ++evicted_.taken;  // sender's row was evicted while this sat queued
  }
  return true;
}

bool AgentQueues::try_take(DatagramEnvelope& out) {
  std::lock_guard lock{mutex_};
  if (fifo_.empty()) return false;
  out = std::move(fifo_.front());
  fifo_.pop_front();
  if (const auto found = rows_.find(out.agent); found != rows_.end()) {
    ++found->second.counters.taken;
    if (found->second.queued > 0) --found->second.queued;
  } else {
    ++evicted_.taken;
  }
  return true;
}

void AgentQueues::close() {
  {
    std::lock_guard lock{mutex_};
    closed_ = true;
  }
  not_empty_.notify_all();
}

bool AgentQueues::closed() const {
  std::lock_guard lock{mutex_};
  return closed_;
}

std::size_t AgentQueues::queued() const {
  std::lock_guard lock{mutex_};
  return fifo_.size();
}

AgentQueuesStats AgentQueues::stats() const {
  std::lock_guard lock{mutex_};
  AgentQueuesStats out;
  out.rows.reserve(arrival_order_.size());
  for (const net::Ipv4Addr agent : arrival_order_) {
    if (const auto found = rows_.find(agent); found != rows_.end()) {
      out.rows.push_back({agent, found->second.counters});
    }
  }
  out.evicted_agents = evicted_agents_;
  out.evicted = evicted_;
  return out;
}

// ---- SocketIntake ---------------------------------------------------------

SocketIntake::~SocketIntake() { shutdown(); }

void SocketIntake::shutdown() {
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
    if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
  }
  if (udp_fd_ >= 0) {
    ::close(udp_fd_);
    udp_fd_ = -1;
  }
}

bool SocketIntake::listen_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "unix socket path too long: " + path;
    return false;
  }
  const int fd = ::socket(AF_UNIX, SOCK_DGRAM, 0);
  if (fd < 0) {
    set_error(error, "socket(AF_UNIX)");
    return false;
  }
  ::unlink(path.c_str());  // stale socket file from a previous run
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    set_error(error, "bind(unix)");
    ::close(fd);
    return false;
  }
  unix_fd_ = fd;
  unix_path_ = path;
  return true;
}

bool SocketIntake::listen_udp(std::uint16_t port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    set_error(error, "socket(AF_INET)");
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    set_error(error, "bind(udp)");
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    set_error(error, "getsockname");
    ::close(fd);
    return false;
  }
  udp_fd_ = fd;
  udp_port_ = ntohs(addr.sin_port);
  return true;
}

std::size_t SocketIntake::poll_once(
    int timeout_ms, const std::function<void(DatagramEnvelope&&)>& sink) {
  pollfd fds[2];
  nfds_t nfds = 0;
  if (unix_fd_ >= 0) fds[nfds++] = {unix_fd_, POLLIN, 0};
  if (udp_fd_ >= 0) fds[nfds++] = {udp_fd_, POLLIN, 0};
  if (nfds == 0) return 0;

  const int ready = ::poll(fds, nfds, timeout_ms);
  if (ready <= 0) return 0;

  if (recv_buffer_.size() < kMaxDatagramBytes)
    recv_buffer_.resize(kMaxDatagramBytes);

  std::size_t delivered = 0;
  for (nfds_t i = 0; i < nfds; ++i) {
    if ((fds[i].revents & POLLIN) == 0) continue;
    // Drain everything currently readable without blocking again.
    while (true) {
      const ssize_t n = ::recv(fds[i].fd, recv_buffer_.data(),
                               recv_buffer_.size(), MSG_DONTWAIT);
      if (n <= 0) break;
      sink(parse_frame({recv_buffer_.data(), static_cast<std::size_t>(n)}));
      ++delivered;
    }
  }
  return delivered;
}

// ---- DatagramSender -------------------------------------------------------

DatagramSender::~DatagramSender() {
  if (fd_ >= 0) ::close(fd_);
}

DatagramSender::DatagramSender(DatagramSender&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      frame_buffer_(std::move(other.frame_buffer_)) {}

DatagramSender& DatagramSender::operator=(DatagramSender&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    frame_buffer_ = std::move(other.frame_buffer_);
  }
  return *this;
}

DatagramSender DatagramSender::connect_unix(const std::string& path,
                                            std::string* error) {
  DatagramSender sender;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "unix socket path too long: " + path;
    return sender;
  }
  const int fd = ::socket(AF_UNIX, SOCK_DGRAM, 0);
  if (fd < 0) {
    set_error(error, "socket(AF_UNIX)");
    return sender;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    set_error(error, "connect(unix)");
    ::close(fd);
    return sender;
  }
  sender.fd_ = fd;
  return sender;
}

DatagramSender DatagramSender::connect_udp(std::uint16_t port,
                                           std::string* error) {
  DatagramSender sender;
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    set_error(error, "socket(AF_INET)");
    return sender;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    set_error(error, "connect(udp)");
    ::close(fd);
    return sender;
  }
  sender.fd_ = fd;
  return sender;
}

bool DatagramSender::send(std::span<const std::byte> payload) {
  if (fd_ < 0) return false;
  const ssize_t n = ::send(fd_, payload.data(), payload.size(), 0);
  return n == static_cast<ssize_t>(payload.size());
}

bool DatagramSender::send_framed(std::uint64_t offset,
                                 std::span<const std::byte> payload) {
  frame_buffer_.resize(kReplayFrameHeaderBytes + payload.size());
  store_be32(frame_buffer_.data(), kReplayMagic);
  store_be64(frame_buffer_.data() + 4, offset);
  std::memcpy(frame_buffer_.data() + kReplayFrameHeaderBytes, payload.data(),
              payload.size());
  return send(frame_buffer_);
}

}  // namespace ixp::sflow
