#include "sflow/headers.hpp"

#include <cstdio>

#include "util/rng.hpp"

namespace ixp::sflow {

namespace {

void put_u16(std::span<std::byte> out, std::size_t at, std::uint16_t v) noexcept {
  out[at] = static_cast<std::byte>(v >> 8);
  out[at + 1] = static_cast<std::byte>(v & 0xff);
}

void put_u32(std::span<std::byte> out, std::size_t at, std::uint32_t v) noexcept {
  out[at] = static_cast<std::byte>(v >> 24);
  out[at + 1] = static_cast<std::byte>((v >> 16) & 0xff);
  out[at + 2] = static_cast<std::byte>((v >> 8) & 0xff);
  out[at + 3] = static_cast<std::byte>(v & 0xff);
}

std::uint16_t get_u16(std::span<const std::byte> in, std::size_t at) noexcept {
  return static_cast<std::uint16_t>((std::to_integer<std::uint16_t>(in[at]) << 8) |
                                    std::to_integer<std::uint16_t>(in[at + 1]));
}

std::uint32_t get_u32(std::span<const std::byte> in, std::size_t at) noexcept {
  return (std::to_integer<std::uint32_t>(in[at]) << 24) |
         (std::to_integer<std::uint32_t>(in[at + 1]) << 16) |
         (std::to_integer<std::uint32_t>(in[at + 2]) << 8) |
         std::to_integer<std::uint32_t>(in[at + 3]);
}

}  // namespace

MacAddr MacAddr::from_id(std::uint64_t id) noexcept {
  const std::uint64_t mixed = util::mix64(id);
  std::array<std::uint8_t, 6> octets{};
  for (int i = 0; i < 6; ++i)
    octets[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(mixed >> (8 * i));
  octets[0] = static_cast<std::uint8_t>((octets[0] | 0x02) & ~0x01);  // local, unicast
  return MacAddr{octets};
}

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return std::string{buf};
}

void EthernetHeader::serialize(std::span<std::byte> out) const noexcept {
  for (std::size_t i = 0; i < 6; ++i) {
    out[i] = static_cast<std::byte>(dst.octets()[i]);
    out[6 + i] = static_cast<std::byte>(src.octets()[i]);
  }
  put_u16(out, 12, ether_type);
}

std::optional<EthernetHeader> EthernetHeader::parse(
    std::span<const std::byte> in) noexcept {
  if (in.size() < kSize) return std::nullopt;
  EthernetHeader h;
  std::array<std::uint8_t, 6> dst{};
  std::array<std::uint8_t, 6> src{};
  for (std::size_t i = 0; i < 6; ++i) {
    dst[i] = std::to_integer<std::uint8_t>(in[i]);
    src[i] = std::to_integer<std::uint8_t>(in[6 + i]);
  }
  h.dst = MacAddr{dst};
  h.src = MacAddr{src};
  h.ether_type = get_u16(in, 12);
  return h;
}

std::uint16_t Ipv4Header::checksum(std::span<const std::byte> header) noexcept {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < header.size(); i += 2)
    sum += get_u16(header, i);
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

void Ipv4Header::serialize(std::span<std::byte> out) const noexcept {
  out[0] = static_cast<std::byte>(0x45);  // version 4, IHL 5
  out[1] = static_cast<std::byte>(dscp);
  put_u16(out, 2, total_length);
  put_u16(out, 4, identification);
  put_u16(out, 6, 0x4000);  // DF, no fragmentation
  out[8] = static_cast<std::byte>(ttl);
  out[9] = static_cast<std::byte>(protocol);
  put_u16(out, 10, 0);  // checksum placeholder
  put_u32(out, 12, src.value());
  put_u32(out, 16, dst.value());
  put_u16(out, 10, checksum(out.first(kSize)));
}

std::optional<Ipv4Header> Ipv4Header::parse(
    std::span<const std::byte> in) noexcept {
  if (in.size() < kSize) return std::nullopt;
  const std::uint8_t version_ihl = std::to_integer<std::uint8_t>(in[0]);
  if ((version_ihl >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(version_ihl & 0x0f) * 4;
  if (ihl < kSize || in.size() < ihl) return std::nullopt;

  // Verify checksum over the actual header length.
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < ihl; i += 2) sum += get_u16(in, i);
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  if (static_cast<std::uint16_t>(~sum) != 0) return std::nullopt;

  Ipv4Header h;
  h.dscp = std::to_integer<std::uint8_t>(in[1]);
  h.total_length = get_u16(in, 2);
  h.identification = get_u16(in, 4);
  h.ttl = std::to_integer<std::uint8_t>(in[8]);
  h.protocol = std::to_integer<std::uint8_t>(in[9]);
  h.src = net::Ipv4Addr{get_u32(in, 12)};
  h.dst = net::Ipv4Addr{get_u32(in, 16)};
  return h;
}

void TcpHeader::serialize(std::span<std::byte> out) const noexcept {
  put_u16(out, 0, src_port);
  put_u16(out, 2, dst_port);
  put_u32(out, 4, seq);
  put_u32(out, 8, ack);
  out[12] = static_cast<std::byte>(0x50);  // data offset 5, no options
  out[13] = static_cast<std::byte>(flags);
  put_u16(out, 14, window);
  put_u16(out, 16, 0);  // checksum: requires pseudo-header; left zero
  put_u16(out, 18, 0);  // urgent pointer
}

std::optional<TcpHeader> TcpHeader::parse(
    std::span<const std::byte> in) noexcept {
  if (in.size() < kSize) return std::nullopt;
  const std::uint8_t offset = std::to_integer<std::uint8_t>(in[12]) >> 4;
  if (offset < 5) return std::nullopt;
  TcpHeader h;
  h.src_port = get_u16(in, 0);
  h.dst_port = get_u16(in, 2);
  h.seq = get_u32(in, 4);
  h.ack = get_u32(in, 8);
  h.flags = std::to_integer<std::uint8_t>(in[13]);
  h.window = get_u16(in, 14);
  return h;
}

void UdpHeader::serialize(std::span<std::byte> out) const noexcept {
  put_u16(out, 0, src_port);
  put_u16(out, 2, dst_port);
  put_u16(out, 4, length);
  put_u16(out, 6, 0);  // checksum optional in IPv4
}

std::optional<UdpHeader> UdpHeader::parse(
    std::span<const std::byte> in) noexcept {
  if (in.size() < kSize) return std::nullopt;
  UdpHeader h;
  h.src_port = get_u16(in, 0);
  h.dst_port = get_u16(in, 2);
  h.length = get_u16(in, 4);
  if (h.length < kSize) return std::nullopt;
  return h;
}

}  // namespace ixp::sflow
