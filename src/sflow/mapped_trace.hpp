// Memory-mapped trace input.
//
// The streamed TraceReader pulls a trace through one istream, which
// serializes decoding no matter how many analysis workers wait behind it.
// MappedTrace instead exposes the whole recorded trace as a single
// immutable `std::span<const std::byte>`: on POSIX hosts via
// mmap(PROT_READ, MAP_PRIVATE) — the kernel pages bytes in on demand and
// shares them read-only across every worker thread — and elsewhere via a
// portable read-the-whole-file fallback into an owned buffer. Either way
// the bytes are position-addressable, which is what lets TraceSegmenter
// (trace_segment.hpp) hand disjoint byte ranges to worker threads that
// decode in parallel with no shared cursor.
//
// The trace header (magic + version, kTraceHeaderBytes) is validated at
// open; error() distinguishes a file that could not be opened, one
// shorter than the header, and one whose header bytes are wrong, so
// callers (the CLI) can report each case distinctly.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ixp::sflow {

/// A read-only view of one recorded trace file, mmap'ed when the platform
/// allows and fully read into memory otherwise. Move-only; unmaps /
/// releases on destruction.
class MappedTrace {
 public:
  /// Why open() failed (or kNone when it did not).
  enum class Error {
    kNone,        ///< trace opened and header validated
    kOpenFailed,  ///< the file could not be opened or stat'ed
    kTooShort,    ///< file smaller than the 12-byte trace header
    kBadHeader,   ///< magic or version mismatch
  };

  MappedTrace() = default;
  ~MappedTrace();

  MappedTrace(MappedTrace&& other) noexcept;
  MappedTrace& operator=(MappedTrace&& other) noexcept;
  MappedTrace(const MappedTrace&) = delete;
  MappedTrace& operator=(const MappedTrace&) = delete;

  /// Maps (or reads) the trace at `path` and validates its header.
  [[nodiscard]] static MappedTrace open(const std::string& path);

  /// Wraps an in-memory trace image (tests, benchmarks); validates the
  /// header exactly like open(). The buffer is owned by the result.
  [[nodiscard]] static MappedTrace adopt(std::vector<std::byte> bytes);

  /// True when the trace opened and the header validated.
  [[nodiscard]] bool ok() const noexcept { return error_ == Error::kNone; }
  [[nodiscard]] Error error() const noexcept { return error_; }

  /// The full trace image, header included. Empty unless ok().
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {data_, size_};
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// True when the bytes come from mmap rather than the read fallback.
  [[nodiscard]] bool is_mapped() const noexcept { return mapped_; }

  /// Human-readable name for an Error, for CLI diagnostics.
  [[nodiscard]] static const char* error_name(Error error) noexcept;

 private:
  void release() noexcept;
  /// Validates magic + version; sets error_ accordingly.
  void validate_header() noexcept;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;                ///< data_ came from mmap
  std::vector<std::byte> owned_;       ///< backing store for the fallback
  Error error_ = Error::kOpenFailed;   ///< default-constructed = not open
};

}  // namespace ixp::sflow
