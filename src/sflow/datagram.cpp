#include "sflow/datagram.hpp"

#include <algorithm>

namespace ixp::sflow {

namespace {

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v >> 8));
  out.push_back(static_cast<std::byte>(v & 0xff));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  out.push_back(static_cast<std::byte>(v >> 24));
  out.push_back(static_cast<std::byte>((v >> 16) & 0xff));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xff));
  out.push_back(static_cast<std::byte>(v & 0xff));
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
}

class Reader {
 public:
  explicit Reader(std::span<const std::byte> bytes) noexcept : bytes_(bytes) {}

  [[nodiscard]] std::optional<std::uint16_t> u16() noexcept {
    if (at_ + 2 > bytes_.size()) return std::nullopt;
    const auto v = static_cast<std::uint16_t>(
        (std::to_integer<std::uint16_t>(bytes_[at_]) << 8) |
        std::to_integer<std::uint16_t>(bytes_[at_ + 1]));
    at_ += 2;
    return v;
  }

  [[nodiscard]] std::optional<std::uint32_t> u32() noexcept {
    if (at_ + 4 > bytes_.size()) return std::nullopt;
    const std::uint32_t v =
        (std::to_integer<std::uint32_t>(bytes_[at_]) << 24) |
        (std::to_integer<std::uint32_t>(bytes_[at_ + 1]) << 16) |
        (std::to_integer<std::uint32_t>(bytes_[at_ + 2]) << 8) |
        std::to_integer<std::uint32_t>(bytes_[at_ + 3]);
    at_ += 4;
    return v;
  }

  [[nodiscard]] std::optional<std::uint64_t> u64() noexcept {
    const auto high = u32();
    if (!high) return std::nullopt;
    const auto low = u32();
    if (!low) return std::nullopt;
    return (std::uint64_t{*high} << 32) | *low;
  }

  [[nodiscard]] bool read_into(std::span<std::byte> out) noexcept {
    if (at_ + out.size() > bytes_.size()) return false;
    std::copy_n(bytes_.begin() + static_cast<std::ptrdiff_t>(at_), out.size(),
                out.begin());
    at_ += out.size();
    return true;
  }

  [[nodiscard]] bool exhausted() const noexcept { return at_ == bytes_.size(); }

 private:
  std::span<const std::byte> bytes_;
  std::size_t at_ = 0;
};

}  // namespace

std::vector<std::byte> encode(const Datagram& datagram) {
  std::vector<std::byte> out;
  out.reserve(20 + datagram.samples.size() * (16 + kCaptureBytes));
  put_u32(out, Datagram::kVersion);
  put_u32(out, datagram.agent.value());
  put_u32(out, datagram.sequence);
  put_u32(out, datagram.uptime_ms);
  put_u32(out, static_cast<std::uint32_t>(datagram.samples.size()));
  for (const FlowSample& sample : datagram.samples) {
    put_u32(out, sample.sequence);
    put_u32(out, sample.source_port);
    put_u32(out, sample.sampling_rate);
    put_u16(out, sample.frame.frame_length);
    put_u16(out, sample.frame.captured);
    const auto bytes = sample.frame.bytes();
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
  put_u32(out, static_cast<std::uint32_t>(datagram.counters.size()));
  for (const CounterSample& counter : datagram.counters) {
    put_u32(out, counter.port);
    put_u64(out, counter.in_frames);
    put_u64(out, counter.in_bytes);
    put_u64(out, counter.out_frames);
    put_u64(out, counter.out_bytes);
  }
  return out;
}

std::optional<Datagram> decode(std::span<const std::byte> bytes) {
  Reader reader{bytes};
  const auto version = reader.u32();
  if (!version || *version != Datagram::kVersion) return std::nullopt;

  Datagram datagram;
  const auto agent = reader.u32();
  const auto sequence = reader.u32();
  const auto uptime = reader.u32();
  const auto count = reader.u32();
  if (!agent || !sequence || !uptime || !count) return std::nullopt;
  datagram.agent = net::Ipv4Addr{*agent};
  datagram.sequence = *sequence;
  datagram.uptime_ms = *uptime;

  datagram.samples.reserve(std::min<std::uint32_t>(*count, 4096));
  for (std::uint32_t i = 0; i < *count; ++i) {
    FlowSample sample;
    const auto seq = reader.u32();
    const auto port = reader.u32();
    const auto rate = reader.u32();
    const auto frame_length = reader.u16();
    const auto captured = reader.u16();
    if (!seq || !port || !rate || !frame_length || !captured)
      return std::nullopt;
    if (*captured > kCaptureBytes) return std::nullopt;
    sample.sequence = *seq;
    sample.source_port = *port;
    sample.sampling_rate = *rate;
    sample.frame.frame_length = *frame_length;
    sample.frame.captured = *captured;
    if (!reader.read_into(
            std::span<std::byte>{sample.frame.data}.first(*captured)))
      return std::nullopt;
    datagram.samples.push_back(sample);
  }
  const auto counter_count = reader.u32();
  if (!counter_count) return std::nullopt;
  datagram.counters.reserve(std::min<std::uint32_t>(*counter_count, 4096));
  for (std::uint32_t i = 0; i < *counter_count; ++i) {
    CounterSample counter;
    const auto port = reader.u32();
    const auto in_frames = reader.u64();
    const auto in_bytes = reader.u64();
    const auto out_frames = reader.u64();
    const auto out_bytes = reader.u64();
    if (!port || !in_frames || !in_bytes || !out_frames || !out_bytes)
      return std::nullopt;
    counter.port = *port;
    counter.in_frames = *in_frames;
    counter.in_bytes = *in_bytes;
    counter.out_frames = *out_frames;
    counter.out_bytes = *out_bytes;
    datagram.counters.push_back(counter);
  }
  if (!reader.exhausted()) return std::nullopt;
  return datagram;
}

}  // namespace ixp::sflow
