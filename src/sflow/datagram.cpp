#include "sflow/datagram.hpp"

#include <algorithm>

namespace ixp::sflow {

namespace {

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v >> 8));
  out.push_back(static_cast<std::byte>(v & 0xff));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  out.push_back(static_cast<std::byte>(v >> 24));
  out.push_back(static_cast<std::byte>((v >> 16) & 0xff));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xff));
  out.push_back(static_cast<std::byte>(v & 0xff));
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
}

}  // namespace

std::vector<std::byte> encode(const Datagram& datagram) {
  std::vector<std::byte> out;
  out.reserve(20 + datagram.samples.size() * (16 + kCaptureBytes));
  put_u32(out, Datagram::kVersion);
  put_u32(out, datagram.agent.value());
  put_u32(out, datagram.sequence);
  put_u32(out, datagram.uptime_ms);
  put_u32(out, static_cast<std::uint32_t>(datagram.samples.size()));
  for (const FlowSample& sample : datagram.samples) {
    put_u32(out, sample.sequence);
    put_u32(out, sample.source_port);
    put_u32(out, sample.sampling_rate);
    put_u16(out, sample.frame.frame_length);
    put_u16(out, sample.frame.captured);
    const auto bytes = sample.frame.bytes();
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
  put_u32(out, static_cast<std::uint32_t>(datagram.counters.size()));
  for (const CounterSample& counter : datagram.counters) {
    put_u32(out, counter.port);
    put_u64(out, counter.in_frames);
    put_u64(out, counter.in_bytes);
    put_u64(out, counter.out_frames);
    put_u64(out, counter.out_bytes);
  }
  return out;
}

bool decode_into(std::span<const std::byte> bytes, Datagram& out) {
  out.samples.clear();
  out.counters.clear();
  const std::byte* const p = bytes.data();
  const std::size_t size = bytes.size();
  if (size < 20) return false;
  if (load_be32(p) != Datagram::kVersion) return false;
  out.agent = net::Ipv4Addr{load_be32(p + 4)};
  out.sequence = load_be32(p + 8);
  out.uptime_ms = load_be32(p + 12);
  const std::uint32_t count = load_be32(p + 16);
  std::size_t at = 20;

  // Each sample occupies at least its 16 fixed header bytes, so an
  // implausible count is rejected before any storage is touched.
  if (std::uint64_t{count} * 16 > size - at) return false;
  out.samples.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (size - at < 16) {
      out.samples.clear();
      return false;
    }
    FlowSample& sample = out.samples[i];
    sample.sequence = load_be32(p + at);
    sample.source_port = load_be32(p + at + 4);
    sample.sampling_rate = load_be32(p + at + 8);
    sample.frame.frame_length = load_be16(p + at + 12);
    const std::uint16_t captured = load_be16(p + at + 14);
    at += 16;
    if (captured > kCaptureBytes || size - at < captured) {
      out.samples.clear();
      return false;
    }
    sample.frame.captured = captured;
    std::memcpy(sample.frame.data.data(), p + at, captured);
    at += captured;
  }

  if (size - at < 4) {
    out.samples.clear();
    return false;
  }
  const std::uint32_t counter_count = load_be32(p + at);
  at += 4;
  if (std::uint64_t{counter_count} * 36 > size - at) {
    out.samples.clear();
    return false;
  }
  out.counters.resize(counter_count);
  for (std::uint32_t i = 0; i < counter_count; ++i) {
    CounterSample& counter = out.counters[i];
    counter.port = load_be32(p + at);
    counter.in_frames = (std::uint64_t{load_be32(p + at + 4)} << 32) |
                        load_be32(p + at + 8);
    counter.in_bytes = (std::uint64_t{load_be32(p + at + 12)} << 32) |
                       load_be32(p + at + 16);
    counter.out_frames = (std::uint64_t{load_be32(p + at + 20)} << 32) |
                         load_be32(p + at + 24);
    counter.out_bytes = (std::uint64_t{load_be32(p + at + 28)} << 32) |
                        load_be32(p + at + 32);
    at += 36;
  }
  if (at != size) {
    out.samples.clear();
    out.counters.clear();
    return false;
  }
  return true;
}

std::optional<Datagram> decode(std::span<const std::byte> bytes) {
  Datagram datagram;
  if (!decode_into(bytes, datagram)) return std::nullopt;
  return datagram;
}

}  // namespace ixp::sflow
