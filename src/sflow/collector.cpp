#include "sflow/collector.hpp"

namespace ixp::sflow {

bool Collector::ingest(std::span<const std::byte> payload) {
  const auto datagram = decode(payload);
  if (!datagram) {
    ++stats_.decode_errors;
    return false;
  }
  ingest(*datagram);
  return true;
}

void Collector::ingest(const Datagram& datagram) {
  ++stats_.datagrams;

  // Sequence-gap accounting per agent. Reordering within a small window
  // shows up as a "gap" followed by an old sequence number; we only count
  // forward gaps (the standard collector heuristic).
  const auto [it, first_time] =
      last_sequence_.try_emplace(datagram.agent, datagram.sequence);
  if (first_time) {
    arrival_order_.push_back(datagram.agent);
    if (last_sequence_.size() > max_agents_) {
      const net::Ipv4Addr victim = arrival_order_.front();
      arrival_order_.pop_front();
      std::uint32_t victim_sequence = 0;
      if (const auto found = last_sequence_.find(victim);
          found != last_sequence_.end()) {
        victim_sequence = found->second;
      }
      last_sequence_.erase(victim);
      ++stats_.evicted_agents;
      if (eviction_hook_) eviction_hook_(victim, victim_sequence);
    }
  } else {
    const std::uint32_t expected = it->second + 1;
    if (datagram.sequence > expected)
      stats_.lost_datagrams += datagram.sequence - expected;
    if (datagram.sequence >= expected) it->second = datagram.sequence;
  }

  for (const FlowSample& sample : datagram.samples) {
    ++stats_.flow_samples;
    if (flow_sink_) flow_sink_(sample);
  }
  for (const CounterSample& counter : datagram.counters) {
    ++stats_.counter_samples;
    if (counter_sink_) counter_sink_(datagram.agent, counter);
  }
}

CollectorStats Collector::stats() const {
  CollectorStats out = stats_;
  out.agents = last_sequence_.size();
  return out;
}

}  // namespace ixp::sflow
