#include "sflow/trace.hpp"

#include <array>
#include <cstring>
#include <vector>

namespace ixp::sflow {

namespace {

void put_u32(std::ostream& out, std::uint32_t v) {
  const std::array<char, 4> bytes{
      static_cast<char>(v >> 24), static_cast<char>((v >> 16) & 0xff),
      static_cast<char>((v >> 8) & 0xff), static_cast<char>(v & 0xff)};
  out.write(bytes.data(), bytes.size());
}

std::optional<std::uint32_t> get_u32(std::istream& in) {
  std::array<char, 4> bytes{};
  if (!in.read(bytes.data(), bytes.size())) return std::nullopt;
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[3]));
}

}  // namespace

TraceWriter::TraceWriter(std::ostream& out, net::Ipv4Addr agent,
                         std::size_t batch)
    : out_(&out), agent_(agent), batch_(batch == 0 ? 1 : batch) {
  out_->write(kTraceMagic, sizeof kTraceMagic);
  put_u32(*out_, kTraceVersion);
  pending_.agent = agent_;
}

TraceWriter::~TraceWriter() { flush(); }

void TraceWriter::write(const FlowSample& sample) {
  pending_.samples.push_back(sample);
  ++samples_written_;
  if (pending_.samples.size() >= batch_) flush();
}

void TraceWriter::flush() {
  if (pending_.samples.empty()) return;
  pending_.sequence = sequence_++;
  pending_.uptime_ms = sequence_ * 1000;
  const std::vector<std::byte> bytes = encode(pending_);
  put_u32(*out_, static_cast<std::uint32_t>(bytes.size()));
  out_->write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  pending_.samples.clear();
}

TraceReader::TraceReader(std::istream& in) : in_(&in) {
  char magic[sizeof kTraceMagic] = {};
  if (!in_->read(magic, sizeof magic)) return;
  if (std::memcmp(magic, kTraceMagic, sizeof magic) != 0) return;
  const auto version = get_u32(*in_);
  if (!version || *version != kTraceVersion) return;
  ok_ = true;
}

bool TraceReader::refill() {
  if (!ok_) return false;
  const auto length = get_u32(*in_);
  if (!length) return false;  // clean end of trace
  std::vector<std::byte> bytes(*length);
  if (!in_->read(reinterpret_cast<char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()))) {
    ok_ = false;  // truncated mid-datagram
    return false;
  }
  auto datagram = decode(bytes);
  if (!datagram) {
    ok_ = false;  // corrupt datagram
    return false;
  }
  current_ = std::move(*datagram);
  cursor_ = 0;
  return !current_.samples.empty();
}

std::size_t TraceReader::read_batch(std::vector<FlowSample>& out,
                                    std::size_t max) {
  out.clear();
  while (out.size() < max) {
    if (cursor_ >= current_.samples.size() && !refill()) break;
    out.push_back(std::move(current_.samples[cursor_++]));
  }
  return out.size();
}

std::optional<FlowSample> TraceReader::next() {
  if (read_batch(one_, 1) == 0) return std::nullopt;
  return std::move(one_.front());
}

std::uint64_t TraceReader::for_each(
    const std::function<void(const FlowSample&)>& sink) {
  std::vector<FlowSample> batch;
  std::uint64_t delivered = 0;
  while (read_batch(batch, kDefaultBatch) > 0) {
    for (const FlowSample& sample : batch) {
      sink(sample);
      ++delivered;
    }
  }
  return delivered;
}

}  // namespace ixp::sflow
