#include "sflow/trace.hpp"

#include <array>
#include <cstring>
#include <vector>

namespace ixp::sflow {

namespace {

void put_u32(std::ostream& out, std::uint32_t v) {
  const std::array<char, 4> bytes{
      static_cast<char>(v >> 24), static_cast<char>((v >> 16) & 0xff),
      static_cast<char>((v >> 8) & 0xff), static_cast<char>(v & 0xff)};
  out.write(bytes.data(), bytes.size());
}

std::uint32_t be32(const char* bytes) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[3]));
}

std::optional<std::uint32_t> get_u32(std::istream& in) {
  std::array<char, 4> bytes{};
  if (!in.read(bytes.data(), bytes.size())) return std::nullopt;
  return be32(bytes.data());
}

}  // namespace

TraceWriter::TraceWriter(std::ostream& out, net::Ipv4Addr agent,
                         std::size_t batch)
    : out_(&out), agent_(agent), batch_(batch == 0 ? 1 : batch) {
  out_->write(kTraceMagic, sizeof kTraceMagic);
  put_u32(*out_, kTraceVersion);
  pending_.agent = agent_;
}

TraceWriter::~TraceWriter() { flush(); }

void TraceWriter::write(const FlowSample& sample) {
  pending_.samples.push_back(sample);
  ++samples_written_;
  if (pending_.samples.size() >= batch_) flush();
}

void TraceWriter::flush() {
  if (pending_.samples.empty()) return;
  pending_.sequence = sequence_++;
  pending_.uptime_ms = sequence_ * 1000;
  const std::vector<std::byte> bytes = encode(pending_);
  put_u32(*out_, static_cast<std::uint32_t>(bytes.size()));
  out_->write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  pending_.samples.clear();
}

TraceReader::TraceReader(std::istream& in, ReadPolicy policy) {
  reset(in, policy);
}

void TraceReader::reset(std::istream& in, ReadPolicy policy) {
  in_ = &in;
  policy_ = policy;
  stats_ = ReaderStats{};
  ok_ = false;
  pos_ = 0;
  cursor_ = 0;
  current_.samples.clear();
  current_.counters.clear();
  current_offset_ = 0;
  char magic[sizeof kTraceMagic] = {};
  if (!in_->read(magic, sizeof magic) ||
      std::memcmp(magic, kTraceMagic, sizeof magic) != 0) {
    ++stats_.bad_magic;
    return;
  }
  const auto version = get_u32(*in_);
  if (!version || *version != kTraceVersion) {
    ++stats_.bad_magic;
    return;
  }
  pos_ = kTraceHeaderBytes;
  ok_ = true;
}

bool TraceReader::spend_error() {
  if (stats_.errors() > policy_.max_errors) {
    ok_ = false;
    return false;
  }
  return true;
}

// Scans forward from the byte after `bad_record_start` for the next
// offset where a plausible record begins: a length prefix in
// [kMinDatagramBytes, kMaxDatagramBytes] whose payload starts with the
// sFlow version word and decodes cleanly. On success the stream is
// repositioned at that offset and the skipped gap is accounted; on EOF
// everything from the bad record to the end of input is skipped.
bool TraceReader::resync(std::uint64_t bad_record_start) {
  std::uint64_t candidate = bad_record_start + 1;
  while (true) {
    in_->clear();
    in_->seekg(static_cast<std::streamoff>(candidate));
    char head[8];
    in_->read(head, sizeof head);
    const auto got = static_cast<std::uint64_t>(in_->gcount());
    if (got < sizeof head) {
      // Fewer than 8 bytes remain: no record fits here or anywhere later.
      stats_.bytes_skipped += candidate + got - bad_record_start;
      pos_ = candidate + got;
      return false;
    }
    const std::uint32_t length = be32(head);
    if (length >= kMinDatagramBytes && length <= kMaxDatagramBytes &&
        be32(head + 4) == Datagram::kVersion) {
      scratch_.assign(length, std::byte{});
      in_->clear();
      in_->seekg(static_cast<std::streamoff>(candidate + 4));
      in_->read(reinterpret_cast<char*>(scratch_.data()),
                static_cast<std::streamsize>(length));
      if (static_cast<std::uint32_t>(in_->gcount()) == length &&
          decode_into(scratch_, probe_)) {
        stats_.bytes_skipped += candidate - bad_record_start;
        ++stats_.resyncs;
        in_->clear();
        in_->seekg(static_cast<std::streamoff>(candidate));
        pos_ = candidate;
        return true;
      }
    }
    ++candidate;
  }
}

bool TraceReader::refill() {
  while (ok_) {
    const std::uint64_t record_start = pos_;
    char len_bytes[4];
    in_->read(len_bytes, sizeof len_bytes);
    const auto got = static_cast<std::uint64_t>(in_->gcount());
    pos_ += got;
    if (got == 0) return false;  // clean end of trace

    if (got < sizeof len_bytes) {
      ++stats_.truncated;  // EOF inside the length prefix
    } else {
      const std::uint32_t length = be32(len_bytes);
      if (length < kMinDatagramBytes || length > kMaxDatagramBytes) {
        ++stats_.bad_length;
      } else {
        scratch_.resize(length);
        in_->read(reinterpret_cast<char*>(scratch_.data()),
                  static_cast<std::streamsize>(length));
        const auto body = static_cast<std::uint64_t>(in_->gcount());
        pos_ += body;
        if (body < length) {
          ++stats_.truncated;  // EOF inside the payload
        } else if (decode_into(scratch_, current_)) {
          cursor_ = 0;
          current_offset_ = record_start;
          ++stats_.datagrams;
          stats_.samples += current_.samples.size();
          stats_.bytes_delivered += sizeof len_bytes + length;
          if (current_.samples.empty()) continue;  // valid, nothing to deliver
          return true;
        } else {
          ++stats_.decode_errors;
        }
      }
    }

    // A corrupt record starts at record_start. Give up if the budget is
    // spent (strict mode: immediately), otherwise scan past the damage.
    if (!spend_error()) return false;
    if (!resync(record_start)) return false;  // scanned to end of input
  }
  return false;
}

std::size_t TraceReader::read_batch(std::vector<FlowSample>& out,
                                    std::size_t max) {
  out.clear();
  while (out.size() < max) {
    if (cursor_ >= current_.samples.size() && !refill()) break;
    out.push_back(std::move(current_.samples[cursor_++]));
  }
  return out.size();
}

std::size_t TraceReader::read_record(std::vector<FlowSample>& out,
                                     std::uint64_t& seq_base) {
  out.clear();
  if (cursor_ >= current_.samples.size() && !refill()) return 0;
  seq_base = stream_seq_key(current_offset_, cursor_);
  while (cursor_ < current_.samples.size()) {
    out.push_back(std::move(current_.samples[cursor_++]));
  }
  return out.size();
}

std::optional<FlowSample> TraceReader::next() {
  // Consume straight from the decoded datagram's sample vector — no
  // intermediate single-sample batch, no per-call vector churn.
  if (cursor_ >= current_.samples.size() && !refill()) return std::nullopt;
  return std::move(current_.samples[cursor_++]);
}

std::uint64_t TraceReader::for_each(
    const std::function<void(const FlowSample&)>& sink) {
  // Drain the current datagram in place, then refill; the decode buffer
  // inside refill() is the only per-record allocation.
  std::uint64_t delivered = 0;
  while (true) {
    while (cursor_ < current_.samples.size()) {
      sink(current_.samples[cursor_++]);
      ++delivered;
    }
    if (!refill()) return delivered;
  }
}

}  // namespace ixp::sflow
