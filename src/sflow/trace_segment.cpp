#include "sflow/trace_segment.hpp"

namespace ixp::sflow {

bool plausible_record_at(std::span<const std::byte> trace, std::uint64_t at,
                         Datagram& probe) {
  const std::uint64_t size = trace.size();
  if (at + 8 > size) return false;
  const std::byte* const p = trace.data() + at;
  const std::uint32_t length = load_be32(p);
  if (length < kMinDatagramBytes || length > kMaxDatagramBytes) return false;
  if (at + 4 + length > size) return false;
  if (load_be32(p + 4) != Datagram::kVersion) return false;
  return decode_into({p + 4, length}, probe);
}

std::uint64_t scan_for_record(std::span<const std::byte> trace,
                              std::uint64_t from, Datagram& probe) {
  const std::uint64_t size = trace.size();
  for (std::uint64_t candidate = from; candidate + 8 <= size; ++candidate) {
    if (plausible_record_at(trace, candidate, probe)) return candidate;
  }
  return size;
}

std::vector<TraceSegment> TraceSegmenter::split(std::span<const std::byte> trace,
                                                std::size_t want) {
  std::vector<TraceSegment> segments;
  const std::uint64_t size = trace.size();
  if (want == 0 || size <= kTraceHeaderBytes) return segments;

  // Segment 0 always starts right after the header — exactly where the
  // streamed reader starts, plausible record there or not (corruption at
  // the very first record is the cursor's problem, as it is the
  // reader's). Later starts slide forward to a plausible boundary.
  std::vector<std::uint64_t> starts{kTraceHeaderBytes};
  const std::uint64_t body = size - kTraceHeaderBytes;
  Datagram probe;
  for (std::size_t k = 1; k < want; ++k) {
    const std::uint64_t boundary = kTraceHeaderBytes + body * k / want;
    const std::uint64_t start = scan_for_record(trace, boundary, probe);
    if (start >= size) break;  // nothing decodable at or past the boundary
    if (start > starts.back()) starts.push_back(start);
  }
  segments.reserve(starts.size());
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const std::uint64_t end = i + 1 < starts.size() ? starts[i + 1] : size;
    segments.push_back({starts[i], end});
  }
  return segments;
}

TraceCursor::TraceCursor(std::span<const std::byte> trace, TraceSegment seg,
                         ReadPolicy policy) {
  reset(trace, seg, policy);
}

void TraceCursor::reset(std::span<const std::byte> trace, TraceSegment seg,
                        ReadPolicy policy) {
  trace_ = trace;
  seg_ = seg;
  policy_ = policy;
  stats_ = ReaderStats{};
  ok_ = true;
  pos_ = seg.begin;
  current_.samples.clear();
  current_.counters.clear();
  current_offset_ = seg.begin;
}

bool TraceCursor::spend_error() {
  if (stats_.errors() > policy_.max_errors) {
    ok_ = false;
    return false;
  }
  return true;
}

// Mirrors TraceReader::resync byte for byte, including the accounting at
// end of input: on success the skipped gap is charged and the cursor is
// repositioned at the plausible record; when fewer than 8 bytes remain
// anywhere ahead, everything from the bad record to the end of the trace
// is skipped without counting a resync. For a non-final segment the scan
// can never cross seg_.end: the segment end is itself a plausible record
// start (the segmenter chose it with this very test), so the scan lands
// there at the latest and the refill loop then ends the segment cleanly.
bool TraceCursor::resync(std::uint64_t bad_record_start) {
  const std::uint64_t size = trace_.size();
  std::uint64_t candidate = bad_record_start + 1;
  while (candidate + 8 <= size) {
    if (plausible_record_at(trace_, candidate, probe_)) {
      stats_.bytes_skipped += candidate - bad_record_start;
      ++stats_.resyncs;
      pos_ = candidate;
      return true;
    }
    ++candidate;
  }
  stats_.bytes_skipped += size - bad_record_start;
  pos_ = size;
  return false;
}

bool TraceCursor::refill() {
  const std::uint64_t size = trace_.size();
  while (ok_) {
    if (pos_ >= seg_.end) return false;  // clean end of segment
    const std::uint64_t record_start = pos_;

    if (size - record_start < 4) {
      pos_ = size;
      ++stats_.truncated;  // end of trace inside the length prefix
    } else {
      const std::uint32_t length = load_be32(trace_.data() + record_start);
      if (length < kMinDatagramBytes || length > kMaxDatagramBytes) {
        pos_ = record_start + 4;
        ++stats_.bad_length;
      } else if (size - record_start - 4 < length) {
        pos_ = size;
        ++stats_.truncated;  // end of trace inside the payload
      } else if (decode_into({trace_.data() + record_start + 4, length},
                             current_)) {
        pos_ = record_start + 4 + length;
        current_offset_ = record_start;
        ++stats_.datagrams;
        stats_.samples += current_.samples.size();
        stats_.bytes_delivered += 4 + length;
        if (current_.samples.empty()) continue;  // valid, nothing to deliver
        return true;
      } else {
        pos_ = record_start + 4 + length;
        ++stats_.decode_errors;
      }
    }

    // A corrupt record starts at record_start; spend budget and scan past
    // the damage, exactly like the streamed reader.
    if (!spend_error()) return false;
    if (!resync(record_start)) return false;  // scanned to end of input
  }
  return false;
}

std::span<const FlowSample> TraceCursor::read_record(std::uint64_t& seq_base) {
  if (!refill()) return {};
  seq_base = stream_seq_key(current_offset_, 0);
  return current_.samples;
}

}  // namespace ixp::sflow
