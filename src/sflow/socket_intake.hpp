// Datagram intake for the collector service (`ixpscope serve`).
//
// Three pieces, each independently testable:
//
//   * Replay framing. A live agent sends raw sFlow datagrams; a trace
//     replayer additionally wants the analysis to reproduce the offline
//     `ixpscope analyze` report bit for bit, which requires each record's
//     original trace offset (the stream_seq_key input) to survive the
//     trip through the socket. A replay frame prefixes the payload with
//     kReplayMagic and the 64-bit offset; the magic occupies the slot
//     where a raw sFlow datagram carries its version word (5), so the two
//     shapes are self-discriminating and agents need no configuration.
//
//   * AgentQueues. The bounded hand-off between socket readers and the
//     analysis workers. offer() NEVER blocks: when an agent's queue slice
//     is full the datagram is dropped and counted against that agent —
//     a flooding agent loses its own datagrams, not the service, and not
//     its neighbors'. take() blocks until work arrives or close() is
//     called, then drains what remains (the clean-shutdown path). Exact
//     invariant, per agent and in total: received == taken + dropped.
//
//   * SocketIntake / DatagramSender. Thin POSIX wrappers: a UDP socket on
//     127.0.0.1 and/or a Unix datagram socket, drained by poll_once();
//     the sender is the matching client used by `ixpscope replay` and the
//     tests. Environments without socket permissions still exercise the
//     full pipeline through parse_frame() + AgentQueues::offer directly.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <condition_variable>
#include <span>
#include <string>
#include <vector>

#include "sflow/datagram.hpp"
#include "util/flat_hash_map.hpp"

namespace ixp::sflow {

/// First word of a replay frame, big-endian ("IXRP"). Chosen to be
/// impossible as a raw sFlow first word, which is always the version (5).
inline constexpr std::uint32_t kReplayMagic = 0x49585250;

/// Replay frame layout: u32 kReplayMagic | u64 offset | raw payload.
inline constexpr std::size_t kReplayFrameHeaderBytes = 12;

/// offset value meaning "not a replay frame": the service assigns a
/// virtual offset of its own (live agents don't know trace offsets).
inline constexpr std::uint64_t kNoReplayOffset = ~std::uint64_t{0};

/// One datagram as it leaves the intake layer: the raw sFlow payload, the
/// agent peeked from its header (bytes 4..8; 0.0.0.0 when the payload is
/// too short to say), and the replay offset when framed.
struct DatagramEnvelope {
  net::Ipv4Addr agent;
  std::uint64_t offset = kNoReplayOffset;
  std::vector<std::byte> payload;

  [[nodiscard]] bool framed() const noexcept { return offset != kNoReplayOffset; }
};

/// Wraps a payload in a replay frame.
[[nodiscard]] std::vector<std::byte> encode_replay_frame(
    std::uint64_t offset, std::span<const std::byte> payload);

/// Classifies received bytes as a replay frame or a raw datagram and
/// builds the envelope (copies the payload; peeks the agent).
[[nodiscard]] DatagramEnvelope parse_frame(std::span<const std::byte> bytes);

/// Per-agent intake counters. The exact-accounting invariant the overload
/// tests pin down: received == taken + dropped, always.
struct AgentIntakeCounters {
  std::uint64_t received = 0;
  std::uint64_t dropped = 0;
  std::uint64_t taken = 0;

  AgentIntakeCounters& operator+=(const AgentIntakeCounters& other) {
    received += other.received;
    dropped += other.dropped;
    taken += other.taken;
    return *this;
  }
  friend bool operator==(const AgentIntakeCounters&,
                         const AgentIntakeCounters&) = default;
};

struct AgentQueuesStats {
  struct Row {
    net::Ipv4Addr agent;
    AgentIntakeCounters counters;
  };
  /// Live agents in first-appearance order.
  std::vector<Row> rows;
  /// Rows evicted to honor the agent cap, folded together so the totals
  /// never lose a datagram.
  std::uint64_t evicted_agents = 0;
  AgentIntakeCounters evicted;

  [[nodiscard]] AgentIntakeCounters totals() const {
    AgentIntakeCounters sum = evicted;
    for (const auto& row : rows) sum += row.counters;
    return sum;
  }
};

/// The bounded, never-blocking-on-ingest hand-off described in the file
/// header. One global FIFO keeps cross-agent arrival order; the per-agent
/// bound is enforced on offer(). Thread-safe throughout.
class AgentQueues {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;
  static constexpr std::size_t kDefaultMaxAgents = 4096;

  explicit AgentQueues(std::size_t per_agent_capacity = kDefaultCapacity,
                       std::size_t max_agents = kDefaultMaxAgents)
      : capacity_(per_agent_capacity == 0 ? 1 : per_agent_capacity),
        max_agents_(max_agents == 0 ? 1 : max_agents) {}

  /// Enqueues if the sender's slice has room; otherwise counts a drop and
  /// returns false. Never blocks — the service must shed load rather than
  /// stall the socket readers. After close(), everything is a drop.
  bool offer(DatagramEnvelope&& envelope);

  /// Blocks until an envelope is available or the queues are closed and
  /// drained; false means end-of-stream.
  bool take(DatagramEnvelope& out);

  /// Non-blocking take; false when nothing is queued right now (or the
  /// stream has ended).
  bool try_take(DatagramEnvelope& out);

  /// Stops intake and wakes every blocked take(); queued envelopes are
  /// still handed out until drained.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t queued() const;
  [[nodiscard]] AgentQueuesStats stats() const;

 private:
  struct Row {
    AgentIntakeCounters counters;
    std::size_t queued = 0;
  };

  Row& row_for(net::Ipv4Addr agent);  // callers hold mutex_

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<DatagramEnvelope> fifo_;
  util::FlatHashMap<net::Ipv4Addr, Row> rows_;
  std::deque<net::Ipv4Addr> arrival_order_;
  std::size_t capacity_;
  std::size_t max_agents_;
  std::uint64_t evicted_agents_ = 0;
  AgentIntakeCounters evicted_;
  bool closed_ = false;
};

/// Receiving side: a UDP socket on 127.0.0.1 and/or a Unix datagram
/// socket, drained with poll(). Not thread-safe; the service owns one and
/// drains it from its intake thread.
class SocketIntake {
 public:
  /// Largest datagram accepted off a socket (UDP's practical ceiling).
  static constexpr std::size_t kMaxDatagramBytes = 65536;

  SocketIntake() = default;
  ~SocketIntake();
  SocketIntake(const SocketIntake&) = delete;
  SocketIntake& operator=(const SocketIntake&) = delete;

  /// Binds a Unix datagram socket at `path` (unlinking any stale file).
  bool listen_unix(const std::string& path, std::string* error = nullptr);

  /// Binds a UDP socket on 127.0.0.1; port 0 picks an ephemeral port,
  /// readable back via udp_port().
  bool listen_udp(std::uint16_t port, std::string* error = nullptr);

  [[nodiscard]] bool listening() const noexcept {
    return unix_fd_ >= 0 || udp_fd_ >= 0;
  }
  [[nodiscard]] std::uint16_t udp_port() const noexcept { return udp_port_; }
  [[nodiscard]] const std::string& unix_path() const noexcept {
    return unix_path_;
  }

  /// Waits up to `timeout_ms` for readability, then drains every datagram
  /// currently available into `sink`. Returns the number delivered.
  std::size_t poll_once(int timeout_ms,
                        const std::function<void(DatagramEnvelope&&)>& sink);

  /// Closes the sockets (and unlinks the Unix path). Safe to call twice.
  void shutdown();

 private:
  int unix_fd_ = -1;
  int udp_fd_ = -1;
  std::uint16_t udp_port_ = 0;
  std::string unix_path_;
  std::vector<std::byte> recv_buffer_;
};

/// Sending side: the replayer's and the tests' client. Unix datagram
/// sends block when the receiver's buffer is full — the natural
/// backpressure that makes socket replay lossless; UDP sends can be
/// dropped by the kernel and are only suitable for live smoke traffic.
class DatagramSender {
 public:
  DatagramSender() = default;
  ~DatagramSender();
  DatagramSender(DatagramSender&& other) noexcept;
  DatagramSender& operator=(DatagramSender&& other) noexcept;
  DatagramSender(const DatagramSender&) = delete;
  DatagramSender& operator=(const DatagramSender&) = delete;

  static DatagramSender connect_unix(const std::string& path,
                                     std::string* error = nullptr);
  static DatagramSender connect_udp(std::uint16_t port,
                                    std::string* error = nullptr);

  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }

  /// Sends one raw payload (one datagram). False on any send error.
  bool send(std::span<const std::byte> payload);

  /// Sends one replay-framed payload.
  bool send_framed(std::uint64_t offset, std::span<const std::byte> payload);

 private:
  int fd_ = -1;
  std::vector<std::byte> frame_buffer_;
};

}  // namespace ixp::sflow
