// Sampled-frame captures.
//
// sFlow "captures the first 128 bytes of each sampled frame. This implies
// that in the case of IPv4 packets the available information consists of
// the full IP and transport layer headers and 74 and 86 bytes of TCP and
// UDP payload, respectively" (§2.1). SampledFrame is that 128-byte
// capture; builders compose real headers + payload into it, and
// parse_frame() recovers the layered view the classifier consumes.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "sflow/headers.hpp"

namespace ixp::sflow {

/// Maximum bytes captured from each sampled frame.
inline constexpr std::size_t kCaptureBytes = 128;

/// Captured TCP payload bytes: 128 - 14 (eth) - 20 (ip) - 20 (tcp).
inline constexpr std::size_t kTcpPayloadCapture = 74;
/// Captured UDP payload bytes: 128 - 14 (eth) - 20 (ip) - 8 (udp).
inline constexpr std::size_t kUdpPayloadCapture = 86;

struct SampledFrame {
  std::array<std::byte, kCaptureBytes> data{};
  std::uint16_t captured = 0;      // valid bytes in `data`
  std::uint16_t frame_length = 0;  // original on-the-wire frame length

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return std::span<const std::byte>{data}.first(captured);
  }
};

/// Common parameters for building IPv4 frames.
struct FrameSpec {
  MacAddr src_mac;
  MacAddr dst_mac;
  net::Ipv4Addr src_ip;
  net::Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t ttl = 64;
  /// Original wire length of the whole frame. When 0, computed from the
  /// headers plus the full (uncaptured) payload length.
  std::uint16_t frame_length = 0;
};

/// Builds a TCP/IPv4 frame capture. Only the first kTcpPayloadCapture
/// payload bytes fit in the capture; `payload_total` is the packet's true
/// payload size used for the length fields.
[[nodiscard]] SampledFrame build_tcp_frame(const FrameSpec& spec,
                                           std::span<const std::byte> payload,
                                           std::size_t payload_total,
                                           std::uint8_t tcp_flags = TcpHeader::kAck);

/// Builds a UDP/IPv4 frame capture.
[[nodiscard]] SampledFrame build_udp_frame(const FrameSpec& spec,
                                           std::span<const std::byte> payload,
                                           std::size_t payload_total);

/// Builds an IPv4 frame of an arbitrary transport protocol (ICMP, GRE, ...).
[[nodiscard]] SampledFrame build_ipv4_frame(const FrameSpec& spec,
                                            IpProto protocol,
                                            std::size_t l4_total);

/// Builds a non-IPv4 frame (IPv6, ARP, ...): opaque body after Ethernet.
[[nodiscard]] SampledFrame build_other_frame(MacAddr src_mac, MacAddr dst_mac,
                                             EtherType type,
                                             std::size_t body_length);

/// Layered view of a parsed capture. `payload` views into the capture
/// buffer that was passed to parse_frame and shares its lifetime.
struct ParsedFrame {
  EthernetHeader eth;
  std::optional<Ipv4Header> ip;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::span<const std::byte> payload;

  [[nodiscard]] bool is_ipv4() const noexcept { return ip.has_value(); }
  [[nodiscard]] bool is_tcp() const noexcept { return tcp.has_value(); }
  [[nodiscard]] bool is_udp() const noexcept { return udp.has_value(); }
};

/// Parses a capture down to transport + payload. Returns nullopt only when
/// even the Ethernet header is short; deeper malformations simply leave
/// the corresponding optional empty (exactly what a dissector sees).
[[nodiscard]] std::optional<ParsedFrame> parse_frame(const SampledFrame& frame);

}  // namespace ixp::sflow
