#include "sflow/frame.hpp"

#include <algorithm>
#include <cstring>

namespace ixp::sflow {

namespace {

/// Copies as much payload as fits into the capture after `offset`.
std::size_t copy_payload(SampledFrame& frame, std::size_t offset,
                         std::span<const std::byte> payload) {
  const std::size_t room = kCaptureBytes - offset;
  const std::size_t n = std::min(room, payload.size());
  std::copy_n(payload.begin(), n, frame.data.begin() + offset);
  return n;
}

std::uint16_t clamp_u16(std::size_t v) noexcept {
  return static_cast<std::uint16_t>(std::min<std::size_t>(v, 0xffff));
}

}  // namespace

SampledFrame build_tcp_frame(const FrameSpec& spec,
                             std::span<const std::byte> payload,
                             std::size_t payload_total,
                             std::uint8_t tcp_flags) {
  SampledFrame frame;
  EthernetHeader eth;
  eth.dst = spec.dst_mac;
  eth.src = spec.src_mac;
  eth.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);

  Ipv4Header ip;
  ip.total_length =
      clamp_u16(Ipv4Header::kSize + TcpHeader::kSize + payload_total);
  ip.ttl = spec.ttl;
  ip.protocol = static_cast<std::uint8_t>(IpProto::kTcp);
  ip.src = spec.src_ip;
  ip.dst = spec.dst_ip;

  TcpHeader tcp;
  tcp.src_port = spec.src_port;
  tcp.dst_port = spec.dst_port;
  tcp.flags = tcp_flags;

  std::span<std::byte> out{frame.data};
  eth.serialize(out);
  ip.serialize(out.subspan(EthernetHeader::kSize));
  tcp.serialize(out.subspan(EthernetHeader::kSize + Ipv4Header::kSize));
  constexpr std::size_t kPayloadAt =
      EthernetHeader::kSize + Ipv4Header::kSize + TcpHeader::kSize;
  const std::size_t copied = copy_payload(frame, kPayloadAt, payload);

  const std::size_t wire_length =
      spec.frame_length != 0
          ? spec.frame_length
          : EthernetHeader::kSize + Ipv4Header::kSize + TcpHeader::kSize +
                payload_total;
  frame.frame_length = clamp_u16(wire_length);
  frame.captured =
      static_cast<std::uint16_t>(std::min(kPayloadAt + copied,
                                          static_cast<std::size_t>(frame.frame_length)));
  return frame;
}

SampledFrame build_udp_frame(const FrameSpec& spec,
                             std::span<const std::byte> payload,
                             std::size_t payload_total) {
  SampledFrame frame;
  EthernetHeader eth;
  eth.dst = spec.dst_mac;
  eth.src = spec.src_mac;
  eth.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);

  Ipv4Header ip;
  ip.total_length =
      clamp_u16(Ipv4Header::kSize + UdpHeader::kSize + payload_total);
  ip.ttl = spec.ttl;
  ip.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  ip.src = spec.src_ip;
  ip.dst = spec.dst_ip;

  UdpHeader udp;
  udp.src_port = spec.src_port;
  udp.dst_port = spec.dst_port;
  udp.length = clamp_u16(UdpHeader::kSize + payload_total);

  std::span<std::byte> out{frame.data};
  eth.serialize(out);
  ip.serialize(out.subspan(EthernetHeader::kSize));
  udp.serialize(out.subspan(EthernetHeader::kSize + Ipv4Header::kSize));
  constexpr std::size_t kPayloadAt =
      EthernetHeader::kSize + Ipv4Header::kSize + UdpHeader::kSize;
  const std::size_t copied = copy_payload(frame, kPayloadAt, payload);

  const std::size_t wire_length =
      spec.frame_length != 0
          ? spec.frame_length
          : EthernetHeader::kSize + Ipv4Header::kSize + UdpHeader::kSize +
                payload_total;
  frame.frame_length = clamp_u16(wire_length);
  frame.captured =
      static_cast<std::uint16_t>(std::min(kPayloadAt + copied,
                                          static_cast<std::size_t>(frame.frame_length)));
  return frame;
}

SampledFrame build_ipv4_frame(const FrameSpec& spec, IpProto protocol,
                              std::size_t l4_total) {
  SampledFrame frame;
  EthernetHeader eth;
  eth.dst = spec.dst_mac;
  eth.src = spec.src_mac;
  eth.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);

  Ipv4Header ip;
  ip.total_length = clamp_u16(Ipv4Header::kSize + l4_total);
  ip.ttl = spec.ttl;
  ip.protocol = static_cast<std::uint8_t>(protocol);
  ip.src = spec.src_ip;
  ip.dst = spec.dst_ip;

  std::span<std::byte> out{frame.data};
  eth.serialize(out);
  ip.serialize(out.subspan(EthernetHeader::kSize));

  const std::size_t wire_length =
      EthernetHeader::kSize + Ipv4Header::kSize + l4_total;
  frame.frame_length = clamp_u16(wire_length);
  frame.captured = static_cast<std::uint16_t>(
      std::min({kCaptureBytes, wire_length,
                EthernetHeader::kSize + Ipv4Header::kSize}));
  return frame;
}

SampledFrame build_other_frame(MacAddr src_mac, MacAddr dst_mac,
                               EtherType type, std::size_t body_length) {
  SampledFrame frame;
  EthernetHeader eth;
  eth.dst = dst_mac;
  eth.src = src_mac;
  eth.ether_type = static_cast<std::uint16_t>(type);
  eth.serialize(std::span<std::byte>{frame.data});

  const std::size_t wire_length = EthernetHeader::kSize + body_length;
  frame.frame_length = clamp_u16(wire_length);
  frame.captured =
      static_cast<std::uint16_t>(std::min(kCaptureBytes, wire_length));
  return frame;
}

std::optional<ParsedFrame> parse_frame(const SampledFrame& frame) {
  const std::span<const std::byte> bytes = frame.bytes();
  const auto eth = EthernetHeader::parse(bytes);
  if (!eth) return std::nullopt;

  ParsedFrame parsed;
  parsed.eth = *eth;
  if (eth->ether_type != static_cast<std::uint16_t>(EtherType::kIpv4))
    return parsed;

  const auto l3 = bytes.subspan(EthernetHeader::kSize);
  parsed.ip = Ipv4Header::parse(l3);
  if (!parsed.ip) return parsed;

  const auto l4 = l3.subspan(Ipv4Header::kSize);
  if (parsed.ip->protocol == static_cast<std::uint8_t>(IpProto::kTcp)) {
    parsed.tcp = TcpHeader::parse(l4);
    if (parsed.tcp) parsed.payload = l4.subspan(TcpHeader::kSize);
  } else if (parsed.ip->protocol == static_cast<std::uint8_t>(IpProto::kUdp)) {
    parsed.udp = UdpHeader::parse(l4);
    if (parsed.udp) parsed.payload = l4.subspan(UdpHeader::kSize);
  }
  return parsed;
}

}  // namespace ixp::sflow
