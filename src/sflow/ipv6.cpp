#include "sflow/ipv6.hpp"

#include <cstdio>

namespace ixp::sflow {

std::string Ipv6Addr::to_string() const {
  std::string out;
  out.reserve(39);
  char group[6];
  for (int g = 0; g < 8; ++g) {
    const unsigned value = (static_cast<unsigned>(octets_[g * 2]) << 8) |
                           octets_[g * 2 + 1];
    std::snprintf(group, sizeof group, g == 0 ? "%04x" : ":%04x", value);
    out += group;
  }
  return out;
}

void Ipv6Header::serialize(std::span<std::byte> out) const noexcept {
  const std::uint32_t word0 = (std::uint32_t{6} << 28) |
                              (std::uint32_t{traffic_class} << 20) |
                              (flow_label & 0xfffffu);
  out[0] = static_cast<std::byte>(word0 >> 24);
  out[1] = static_cast<std::byte>((word0 >> 16) & 0xff);
  out[2] = static_cast<std::byte>((word0 >> 8) & 0xff);
  out[3] = static_cast<std::byte>(word0 & 0xff);
  out[4] = static_cast<std::byte>(payload_length >> 8);
  out[5] = static_cast<std::byte>(payload_length & 0xff);
  out[6] = static_cast<std::byte>(next_header);
  out[7] = static_cast<std::byte>(hop_limit);
  for (std::size_t i = 0; i < 16; ++i) {
    out[8 + i] = static_cast<std::byte>(src.octets()[i]);
    out[24 + i] = static_cast<std::byte>(dst.octets()[i]);
  }
}

std::optional<Ipv6Header> Ipv6Header::parse(
    std::span<const std::byte> in) noexcept {
  if (in.size() < kSize) return std::nullopt;
  const auto b0 = std::to_integer<std::uint8_t>(in[0]);
  if ((b0 >> 4) != 6) return std::nullopt;
  Ipv6Header h;
  h.traffic_class = static_cast<std::uint8_t>(
      ((b0 & 0x0f) << 4) | (std::to_integer<std::uint8_t>(in[1]) >> 4));
  h.flow_label = ((std::to_integer<std::uint32_t>(in[1]) & 0x0f) << 16) |
                 (std::to_integer<std::uint32_t>(in[2]) << 8) |
                 std::to_integer<std::uint32_t>(in[3]);
  h.payload_length = static_cast<std::uint16_t>(
      (std::to_integer<std::uint16_t>(in[4]) << 8) |
      std::to_integer<std::uint16_t>(in[5]));
  h.next_header = std::to_integer<std::uint8_t>(in[6]);
  h.hop_limit = std::to_integer<std::uint8_t>(in[7]);
  std::array<std::uint8_t, 16> src{};
  std::array<std::uint8_t, 16> dst{};
  for (std::size_t i = 0; i < 16; ++i) {
    src[i] = std::to_integer<std::uint8_t>(in[8 + i]);
    dst[i] = std::to_integer<std::uint8_t>(in[24 + i]);
  }
  h.src = Ipv6Addr{src};
  h.dst = Ipv6Addr{dst};
  return h;
}

}  // namespace ixp::sflow
