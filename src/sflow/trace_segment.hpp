// Parallel segmentation of a mapped trace.
//
// A MappedTrace is one flat span of bytes; to decode it on N threads the
// span has to be cut into byte ranges that each start exactly on a record
// boundary. TraceSegmenter does that: it picks N evenly spaced raw
// offsets and slides each one forward to the first *plausible* record
// start — the same plausibility test the streamed TraceReader's resync
// scanner applies (length prefix in bounds, payload fits, sFlow version
// word, full clean decode). TraceCursor then walks one segment with
// byte-for-byte the same corruption handling, error taxonomy, and resync
// accounting as the streamed reader, so that:
//
//   * per-segment ReaderStats sum exactly to the whole-file streamed
//     taxonomy (every byte is header, delivered, or skipped — in exactly
//     one segment), and
//   * the set of delivered records is identical to a streamed lenient
//     read, which is what keeps an N-thread mapped analysis byte-
//     identical to the 1-thread streamed report.
//
// The boundary argument: a segment start chosen by the scanner is a
// plausible record offset, so the global streamed walk — which only ever
// stops at record starts or resync landings, and whose resync scanner
// applies the *same* plausibility test — visits it too. Each cursor
// therefore retraces exactly the slice of the global walk between its
// segment's endpoints: a cursor stops when its position reaches the
// segment end, and a resync that scans up to the boundary lands on it
// (the boundary is plausible by construction) instead of crossing into
// the next worker's bytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sflow/trace.hpp"

namespace ixp::sflow {

/// Half-open byte range [begin, end) of one worker's slice of the trace.
struct TraceSegment {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  [[nodiscard]] std::uint64_t size() const noexcept { return end - begin; }
  friend bool operator==(const TraceSegment&, const TraceSegment&) = default;
};

/// True when a plausible length-prefixed record starts at byte `at` of
/// `trace`: length prefix in [kMinDatagramBytes, kMaxDatagramBytes], the
/// payload fits in the remaining bytes, starts with the sFlow version
/// word, and decodes cleanly into `probe` (reused across calls to keep
/// the scan allocation-free). Identical to the streamed resync test.
[[nodiscard]] bool plausible_record_at(std::span<const std::byte> trace,
                                       std::uint64_t at, Datagram& probe);

/// First offset >= `from` where a plausible record starts, or
/// trace.size() when none exists.
[[nodiscard]] std::uint64_t scan_for_record(std::span<const std::byte> trace,
                                            std::uint64_t from,
                                            Datagram& probe);

/// Splits a trace image (header included) into up to `want` contiguous
/// segments that cover [kTraceHeaderBytes, size) exactly: the first
/// segment starts right after the header, every later segment starts on
/// a plausible record boundary, and each segment's end is the next
/// segment's begin (the last ends at the trace size). Fewer than `want`
/// segments come back when the trace is too small to cut that many ways.
class TraceSegmenter {
 public:
  [[nodiscard]] static std::vector<TraceSegment> split(
      std::span<const std::byte> trace, std::size_t want);
};

/// Decodes the records of one TraceSegment straight out of the mapped
/// bytes. Mirrors TraceReader's failure model record for record — same
/// taxonomy counters, same resync scan, same budget semantics — but with
/// zero steady-state allocations: the decoded Datagram and the resync
/// probe are reused across records, and read_record() hands out a span
/// into the cursor's own buffer (valid until the next call).
class TraceCursor {
 public:
  TraceCursor(std::span<const std::byte> trace, TraceSegment seg,
              ReadPolicy policy = ReadPolicy::lenient());

  /// Re-targets the cursor at another segment, clearing stats and
  /// position but keeping every internal buffer's capacity.
  void reset(std::span<const std::byte> trace, TraceSegment seg,
             ReadPolicy policy = ReadPolicy::lenient());

  /// True until the error budget is exceeded (mirrors TraceReader::ok()).
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] const ReaderStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const TraceSegment& segment() const noexcept { return seg_; }

  /// Decodes the next record of the segment and returns its flow samples
  /// (a view into the cursor's reused buffer — consume before the next
  /// call). Sets `seq_base` to the stream_seq_key of the first sample.
  /// Empty at the end of the segment or once the budget clears ok().
  std::span<const FlowSample> read_record(std::uint64_t& seq_base);

  /// Absolute trace offset of the last delivered record's length prefix.
  /// Meaningful only after a non-empty read_record().
  [[nodiscard]] std::uint64_t record_offset() const noexcept {
    return current_offset_;
  }

  /// Raw encoded payload of the last delivered record (length prefix
  /// stripped) — what a live agent would have sent as one datagram. The
  /// replayer pairs this with record_offset() to re-send a trace through
  /// the collector service with its original stream keys intact.
  [[nodiscard]] std::span<const std::byte> record_bytes() const noexcept {
    return trace_.subspan(current_offset_ + 4, pos_ - current_offset_ - 4);
  }

 private:
  bool refill();
  bool resync(std::uint64_t bad_record_start);
  [[nodiscard]] bool spend_error();

  std::span<const std::byte> trace_;
  TraceSegment seg_{};
  ReadPolicy policy_;
  ReaderStats stats_;
  bool ok_ = false;
  std::uint64_t pos_ = 0;  ///< absolute offset of the next unread byte
  Datagram current_;       ///< decoded record, reused across read_record()
  Datagram probe_;         ///< resync decode probe, reused
  std::uint64_t current_offset_ = 0;  ///< record start of current_
};

}  // namespace ixp::sflow
