// IPv6 header codec.
//
// The paper's IXP carried ~0.4% native IPv6, which the Figure-1 cascade
// filters out before any analysis; the pipeline therefore never parses
// v6. The codec exists for trace tooling: recorded captures of the
// filtered-out slice can still be decoded, inspected, and re-encoded
// (e.g. when converting a real collector dump).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace ixp::sflow {

/// A 128-bit IPv6 address (network byte order).
class Ipv6Addr {
 public:
  constexpr Ipv6Addr() = default;
  explicit constexpr Ipv6Addr(std::array<std::uint8_t, 16> octets) noexcept
      : octets_(octets) {}

  [[nodiscard]] constexpr const std::array<std::uint8_t, 16>& octets()
      const noexcept {
    return octets_;
  }

  /// Full (uncompressed) colon-hex form, e.g.
  /// "2001:0db8:0000:0000:0000:0000:0000:0001".
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv6Addr&, const Ipv6Addr&) noexcept =
      default;

 private:
  std::array<std::uint8_t, 16> octets_{};
};

struct Ipv6Header {
  static constexpr std::size_t kSize = 40;

  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;  // 20 bits
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = 0;  // e.g. 6 = TCP, 17 = UDP
  std::uint8_t hop_limit = 64;
  Ipv6Addr src;
  Ipv6Addr dst;

  /// Writes exactly kSize bytes; requires out.size() >= kSize.
  void serialize(std::span<std::byte> out) const noexcept;

  /// Parses; nullopt on a short buffer or version != 6.
  [[nodiscard]] static std::optional<Ipv6Header> parse(
      std::span<const std::byte> in) noexcept;
};

}  // namespace ixp::sflow
