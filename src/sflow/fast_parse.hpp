// Lane-wise fast decode of sampled frames (DESIGN.md §14).
//
// parse_frame() recovers the layered view one header at a time through
// per-field optional parsing — the right shape for correctness, but on
// the peering hot path >98% of captures share a single layout:
// Ethernet + IPv4 with ihl=5 + TCP or UDP. parse_frame_fast() decodes
// that layout with wide loads: the IPv4 checksum as five 32-bit lane
// sums folded once (an RFC 1071 ones-complement sum is byte-order
// independent for the ==0 validity check), ports and lengths as direct
// big-endian loads at fixed offsets. Any frame outside the fast shape —
// short capture, non-IPv4 EtherType, IP options, bad checksum — is
// handed to parse_frame() unchanged, so the two entry points are
// byte-identical by construction on the slow lane and held identical on
// the fast lane by a differential fuzz suite (frame_test.cpp) over
// clean and fault-injected captures.
#pragma once

#include "sflow/frame.hpp"

namespace ixp::sflow {

/// Drop-in replacement for parse_frame(); same contract, same results.
[[nodiscard]] std::optional<ParsedFrame> parse_frame_fast(
    const SampledFrame& frame);

}  // namespace ixp::sflow
