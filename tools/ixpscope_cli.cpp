// ixpscope — command-line front door to the library.
//
//   ixpscope info                      model inventory at the chosen scale
//   ixpscope generate --week N --out F record one week of sFlow to a trace
//   ixpscope analyze --week N --in F   run the pipeline on a recorded trace
//   ixpscope corrupt --in F --out F    damage a trace with seeded faults
//   ixpscope serve --listen PATH       run the streaming collector service
//   ixpscope replay --in F --connect P replay a trace into a running serve
//   ixpscope diff --from A --to B      week-over-week change report (§4.2)
//   ixpscope weeks --from A --to B --dir D  resumable longitudinal run (§4);
//                                      --jobs N forks N worker processes
//   ixpscope merge --dir A --dir B --out D  fold snapshot stores into one
//   ixpscope probe --week N            run the async measurement sweeps
//   ixpscope bgp-export --out F        dump the routing table (BGP text)
//
// Global flags: --volume <double> (default 1/256), --quick (test preset).
//
// Ingest flags are shared by every trace-consuming command (analyze,
// corrupt, serve) and parsed in one place with one set of semantics:
// --threads N shards the work over N workers (byte-identical report for
// any N), --strict fails at the first corrupt record, --max-errors N
// tolerates at most N, --mmap maps a trace instead of streaming it.
//
// serve is the live collector (DESIGN.md §12): datagrams arrive over a
// Unix socket and/or UDP, flow through bounded per-agent queues into the
// same batched analysis hot path, and the service publishes a snapshot
// report every --snapshot-every datagrams plus a final one on SIGTERM /
// SIGINT drain. replay feeds a recorded trace into a running serve with
// each record's original offset framed in, which makes the service's
// final cumulative snapshot byte-identical to `ixpscope analyze` of the
// same file.
#include <algorithm>
#include <charconv>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>

#include "analysis/longitudinal.hpp"
#include "analysis/weekly_delta.hpp"
#include "core/parallel_analyzer.hpp"
#include "core/serve_service.hpp"
#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"
#include "ingest/ingest_source.hpp"
#include "net/bgp_dump.hpp"
#include "probe/metadata_pass.hpp"
#include "probe/sweeps.hpp"
#include "sflow/fault_injector.hpp"
#include "sflow/mapped_trace.hpp"
#include "sflow/socket_intake.hpp"
#include "sflow/trace.hpp"
#include "sflow/trace_segment.hpp"
#include "store/snapshot_store.hpp"
#include "store/store_merge.hpp"
#include "store/weeks_mapreduce.hpp"
#include "store/weeks_runner.hpp"
#include "util/fnv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace ixp;

/// Ingest flags shared across analyze / corrupt / serve — one struct, one
/// parse site, one meaning.
struct IngestOptions {
  int threads = 1;
  bool strict = false;
  bool mmap = false;
  std::uint64_t max_errors = std::numeric_limits<std::uint64_t>::max();

  [[nodiscard]] sflow::ReadPolicy policy() const {
    return strict ? sflow::ReadPolicy::strict()
                  : sflow::ReadPolicy{max_errors};
  }
};

struct Options {
  std::string command;
  int week = 45;
  int from_week = 44;
  int to_week = 45;
  double volume = 1.0 / 256.0;
  bool quick = false;
  IngestOptions ingest;
  std::uint64_t seed = 1;
  std::string in_path;
  std::string out_path;
  std::vector<std::string> dirs;  // --dir (repeatable; weeks takes one,
                                  // merge folds all of them)
  int jobs = 1;                   // weeks --jobs (worker processes)

  // probe (async measurement engine knobs)
  int loss_permille = 0;               // --loss (per-attempt, permille)
  int concurrency = 4096;              // --concurrency (in-flight cap)
  int attempts = 3;                    // --attempts (per exchange)
  std::uint64_t timeout_us = 250'000;  // --timeout-us (attempt 0; doubles)

  // serve / replay
  std::string listen_path;             // --listen (unix socket)
  bool udp = false;                    // --udp given
  int udp_port = 0;                    // 0 = ephemeral
  std::size_t window_epochs = 0;       // --window (0 = cumulative)
  std::uint64_t snapshot_every = 0;    // --snapshot-every (datagrams)
  std::size_t queue_capacity = sflow::AgentQueues::kDefaultCapacity;
  std::size_t max_agents = sflow::AgentQueues::kDefaultMaxAgents;
  std::uint64_t max_datagrams = 0;     // --max-datagrams (0 = until signal)
  int agents = 1;                      // replay --agents
  std::string connect_path;            // replay --connect
};

int usage() {
  std::cerr <<
      "usage: ixpscope <command> [flags]\n"
      "  info                          print the model inventory\n"
      "  generate --week N --out FILE  record one week of sFlow samples\n"
      "  analyze  --week N --in FILE   run the pipeline on a trace\n"
      "  corrupt  --in FILE --out FILE damage a trace (deterministic)\n"
      "           [--seed S]           fault-injection seed (default 1)\n"
      "  serve    --listen PATH | --udp [PORT]   streaming collector\n"
      "           [--week N]           week the service accumulates\n"
      "           [--window E]         report covers last E snapshot epochs\n"
      "                                (default 0 = cumulative)\n"
      "           [--snapshot-every D] publish every D datagrams\n"
      "           [--queue-cap Q]      per-agent queue bound (drop beyond)\n"
      "           [--max-agents M]     tracked-agent cap (FIFO eviction)\n"
      "           [--max-datagrams N]  drain after N datagrams (testing)\n"
      "  replay   --in FILE --connect PATH       replay a trace into serve\n"
      "           [--agents N]         spread records over N synthetic agents\n"
      "  diff     --from A --to B      week-over-week change report\n"
      "  weeks    --from A --to B --dir PATH     resumable longitudinal run\n"
      "                                one durable snapshot per week; re-runs\n"
      "                                resume past completed weeks\n"
      "           [--jobs N]           fork N worker processes over the range\n"
      "                                (reports byte-identical for any N)\n"
      "  merge    --dir A [--dir B ...] --out D   fold snapshot stores into\n"
      "                                one store covering the union of weeks\n"
      "  probe    [--week N]           run the async measurement sweeps\n"
      "           [--loss P]           per-attempt loss in permille\n"
      "           [--concurrency C]    in-flight cap (default 4096)\n"
      "           [--attempts A]       attempts per exchange (default 3)\n"
      "           [--timeout-us T]     attempt-0 timeout; doubles per retry\n"
      "           [--threads N]        metadata-pass worker threads\n"
      "  bgp-export --out FILE         dump the routing table\n"
      "ingest flags (analyze/corrupt/serve, same semantics everywhere):\n"
      "  --threads N    shard the analysis over N workers\n"
      "  --strict       fail at the first corrupt record\n"
      "  --max-errors N tolerate at most N corrupt records\n"
      "  --mmap         map the trace; decode segments in parallel\n"
      "flags: --volume <0..1> (default 0.00390625), --quick\n"
      "exit codes: 0 ok, 1 error, 2 usage, 3 analysis completed degraded,\n"
      "            4 input trace unreadable (missing or shorter than header),\n"
      "            5 snapshot directory unreadable (weeks/merge --dir, --out),\n"
      "            6 a weeks --jobs worker process failed (results are still\n"
      "              complete — the parent recomputed that worker's weeks)\n";
  return 2;
}

/// Strict numeric parsing: the whole argument must be a number. atoi/atof
/// silently turned garbage into 0, which then looked like a valid week or
/// volume; from_chars rejects it loudly instead.
bool parse_int(const char* text, int& out) {
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_double(const char* text, double& out) {
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_u64(const char* text, std::uint64_t& out) {
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_size(const char* text, std::size_t& out) {
  std::uint64_t value = 0;
  if (!parse_u64(text, value)) return false;
  out = static_cast<std::size_t>(value);
  return true;
}

bool parse(int argc, char** argv, Options& opt) {
  if (argc < 2) return false;
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto need_value = [&](int i) { return i + 1 < argc; };
    const auto bad_number = [&](const char* value) {
      std::cerr << "invalid number for " << flag << ": '" << value << "'\n";
      return false;
    };
    if (flag == "--quick") {
      opt.quick = true;
    } else if (flag == "--mmap") {
      opt.ingest.mmap = true;
    } else if (flag == "--strict") {
      opt.ingest.strict = true;
      opt.ingest.max_errors = 0;
    } else if (flag == "--udp") {
      // Optional value: `--udp` alone binds an ephemeral port.
      opt.udp = true;
      if (need_value(i) && argv[i + 1][0] != '-') {
        if (!parse_int(argv[++i], opt.udp_port) || opt.udp_port < 0 ||
            opt.udp_port > 65535)
          return bad_number(argv[i]);
      }
    } else if (flag == "--max-errors" && need_value(i)) {
      if (!parse_u64(argv[++i], opt.ingest.max_errors))
        return bad_number(argv[i]);
    } else if (flag == "--seed" && need_value(i)) {
      if (!parse_u64(argv[++i], opt.seed)) return bad_number(argv[i]);
    } else if (flag == "--week" && need_value(i)) {
      if (!parse_int(argv[++i], opt.week)) return bad_number(argv[i]);
    } else if (flag == "--from" && need_value(i)) {
      if (!parse_int(argv[++i], opt.from_week)) return bad_number(argv[i]);
    } else if (flag == "--to" && need_value(i)) {
      if (!parse_int(argv[++i], opt.to_week)) return bad_number(argv[i]);
    } else if (flag == "--threads" && need_value(i)) {
      if (!parse_int(argv[++i], opt.ingest.threads) || opt.ingest.threads < 1)
        return bad_number(argv[i]);
    } else if (flag == "--volume" && need_value(i)) {
      if (!parse_double(argv[++i], opt.volume) || opt.volume <= 0.0 ||
          opt.volume > 1.0)
        return bad_number(argv[i]);
    } else if (flag == "--window" && need_value(i)) {
      if (!parse_size(argv[++i], opt.window_epochs)) return bad_number(argv[i]);
    } else if (flag == "--snapshot-every" && need_value(i)) {
      if (!parse_u64(argv[++i], opt.snapshot_every)) return bad_number(argv[i]);
    } else if (flag == "--queue-cap" && need_value(i)) {
      if (!parse_size(argv[++i], opt.queue_capacity) ||
          opt.queue_capacity == 0)
        return bad_number(argv[i]);
    } else if (flag == "--max-agents" && need_value(i)) {
      if (!parse_size(argv[++i], opt.max_agents) || opt.max_agents == 0)
        return bad_number(argv[i]);
    } else if (flag == "--max-datagrams" && need_value(i)) {
      if (!parse_u64(argv[++i], opt.max_datagrams)) return bad_number(argv[i]);
    } else if (flag == "--agents" && need_value(i)) {
      if (!parse_int(argv[++i], opt.agents) || opt.agents < 1)
        return bad_number(argv[i]);
    } else if (flag == "--loss" && need_value(i)) {
      if (!parse_int(argv[++i], opt.loss_permille) || opt.loss_permille < 0 ||
          opt.loss_permille > 1000)
        return bad_number(argv[i]);
    } else if (flag == "--concurrency" && need_value(i)) {
      if (!parse_int(argv[++i], opt.concurrency) || opt.concurrency < 1)
        return bad_number(argv[i]);
    } else if (flag == "--attempts" && need_value(i)) {
      if (!parse_int(argv[++i], opt.attempts) || opt.attempts < 1 ||
          opt.attempts > 8)
        return bad_number(argv[i]);
    } else if (flag == "--timeout-us" && need_value(i)) {
      if (!parse_u64(argv[++i], opt.timeout_us) || opt.timeout_us == 0)
        return bad_number(argv[i]);
    } else if (flag == "--listen" && need_value(i)) {
      opt.listen_path = argv[++i];
    } else if (flag == "--connect" && need_value(i)) {
      opt.connect_path = argv[++i];
    } else if (flag == "--dir" && need_value(i)) {
      opt.dirs.emplace_back(argv[++i]);
    } else if (flag == "--jobs" && need_value(i)) {
      if (!parse_int(argv[++i], opt.jobs) || opt.jobs < 1)
        return bad_number(argv[i]);
    } else if (flag == "--in" && need_value(i)) {
      opt.in_path = argv[++i];
    } else if (flag == "--out" && need_value(i)) {
      opt.out_path = argv[++i];
    } else if (flag == "--week" || flag == "--from" || flag == "--to" ||
               flag == "--threads" || flag == "--volume" || flag == "--in" ||
               flag == "--out" || flag == "--max-errors" || flag == "--seed" ||
               flag == "--window" || flag == "--snapshot-every" ||
               flag == "--queue-cap" || flag == "--max-agents" ||
               flag == "--max-datagrams" || flag == "--agents" ||
               flag == "--listen" || flag == "--connect" || flag == "--dir" ||
               flag == "--jobs" || flag == "--loss" || flag == "--concurrency" ||
               flag == "--attempts" || flag == "--timeout-us") {
      std::cerr << "missing value for " << flag << "\n";
      return false;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return false;
    }
  }
  return true;
}

struct World {
  std::unique_ptr<gen::InternetModel> model;
  std::unique_ptr<gen::Workload> workload;
  std::unordered_map<net::Asn, net::Locality> locality;
};

World build_world(const Options& opt) {
  World world;
  const auto cfg =
      opt.quick ? gen::ScaleConfig::test() : gen::ScaleConfig::bench(opt.volume);
  world.model = std::make_unique<gen::InternetModel>(cfg);
  world.workload = std::make_unique<gen::Workload>(*world.model);
  std::vector<net::Asn> members;
  for (const auto* m : world.model->ixp().members_at(cfg.last_week))
    members.push_back(m->asn);
  world.locality = world.model->as_graph().classify(members);
  return world;
}

core::VantagePoint make_vantage(const World& world) {
  return core::VantagePoint{
      world.model->ixp(),   world.model->routing(),  world.model->geo_db(),
      world.locality,       world.model->dns_db(),
      dns::PublicSuffixList::builtin(), world.model->root_store()};
}

classify::ChainFetcher make_fetcher(const World& world, int week) {
  return [&world, week](net::Ipv4Addr addr, int times) {
    return world.model->fetch_chains(addr, times, week);
  };
}

void print_report(const core::WeeklyReport& report) {
  util::Table table{"week " + std::to_string(report.week)};
  table.header({"", "IPs", "ASes", "prefixes", "countries"});
  table.row({"peering", util::with_thousands(report.peering_ips),
             util::with_thousands(report.peering_ases),
             util::with_thousands(report.peering_prefixes),
             std::to_string(report.peering_countries)});
  table.row({"server", util::with_thousands(report.server_ips),
             util::with_thousands(report.server_ases),
             util::with_thousands(report.server_prefixes),
             std::to_string(report.server_countries)});
  table.print(std::cout);
  std::cout << "HTTPS funnel: " << report.https_funnel.candidates << " -> "
            << report.https_funnel.responded << " -> "
            << report.https_funnel.confirmed << "\n";
  std::cout << "estimated weekly volume: " << util::bytes(report.peering_bytes())
            << "\n";
}

int cmd_info(const Options& opt) {
  const auto world = build_world(opt);
  const auto& model = *world.model;
  std::cout << "ixpscope model (seed " << model.config().seed << ")\n";
  std::cout << "  ASes:        " << util::with_thousands(model.ases().size())
            << "\n";
  std::cout << "  prefixes:    " << util::with_thousands(model.prefixes().size())
            << "\n";
  std::cout << "  IXP members: " << model.ixp().member_count_at(model.config().first_week)
            << " -> " << model.ixp().member_count_at(model.config().last_week)
            << " (weeks " << model.config().first_week << ".."
            << model.config().last_week << ")\n";
  std::cout << "  orgs:        " << util::with_thousands(model.orgs().size())
            << "\n";
  std::cout << "  servers:     " << util::with_thousands(model.servers().size())
            << " (" << util::with_thousands(model.visible_server_count())
            << " visible at the IXP)\n";
  std::cout << "  sites:       " << util::with_thousands(model.sites().size())
            << "\n";
  std::cout << "  resolvers:   "
            << util::with_thousands(model.resolvers().size()) << " candidates\n";
  return 0;
}

int cmd_generate(const Options& opt) {
  if (opt.out_path.empty()) return usage();
  const auto world = build_world(opt);
  std::ofstream out{opt.out_path, std::ios::binary};
  if (!out) {
    std::cerr << "cannot write " << opt.out_path << "\n";
    return 1;
  }
  sflow::TraceWriter writer{out, net::Ipv4Addr{172, 16, 0, 1}, 128};
  world.workload->generate_week(
      opt.week, [&](const sflow::FlowSample& s) { writer.write(s); });
  writer.flush();
  std::cout << "wrote " << util::with_thousands(writer.samples_written())
            << " samples (" << writer.datagrams_written() << " datagrams) to "
            << opt.out_path << "\n";
  return 0;
}

/// The ingest-health table: what the reader delivered, what it lost, and
/// how. Printed whenever anything was lost (DESIGN.md §8).
void print_ingest_health(const sflow::ReaderStats& stats) {
  util::Table table{"ingest health"};
  table.header({"counter", "value"});
  table.row({"datagrams delivered", util::with_thousands(stats.datagrams)});
  table.row({"samples delivered", util::with_thousands(stats.samples)});
  table.row({"bytes delivered", util::with_thousands(stats.bytes_delivered)});
  table.row({"bad magic", util::with_thousands(stats.bad_magic)});
  table.row({"bad length", util::with_thousands(stats.bad_length)});
  table.row({"truncated", util::with_thousands(stats.truncated)});
  table.row({"decode errors", util::with_thousands(stats.decode_errors)});
  table.row({"resyncs", util::with_thousands(stats.resyncs)});
  table.row({"bytes skipped", util::with_thousands(stats.bytes_skipped)});
  table.print(std::cerr);
}

/// Reports a degraded-but-complete analysis (exit 3) or a clean one
/// (exit 0) — shared by the streamed and mapped analyze paths.
int report_analysis(const core::WeeklyReport& report,
                    const sflow::ReaderStats& stats) {
  print_report(report);
  if (stats.degraded()) {
    std::cerr << "warning: trace is damaged; " << stats.errors()
              << " corrupt records resynchronized past, "
              << util::with_thousands(stats.bytes_skipped)
              << " bytes skipped\n";
    print_ingest_health(stats);
    return 3;
  }
  return 0;
}

void print_budget_exceeded(const Options& opt, const sflow::ReaderStats& stats,
                           const std::string& detail) {
  std::cerr << opt.in_path << ": corrupt trace, error budget ("
            << (opt.ingest.strict ? "strict"
                                  : std::to_string(opt.ingest.max_errors))
            << ") exceeded" << detail << "\n";
  print_ingest_health(stats);
}

int cmd_analyze(const Options& opt) {
  if (opt.in_path.empty()) return usage();

  // Unreadable input is diagnosed before the (expensive) model build, and
  // distinctly from a corrupt-but-present trace: a missing file or one
  // shorter than the 12-byte header exits 4, a bad magic/version exits 1.
  {
    std::error_code ec;
    const auto size = std::filesystem::file_size(opt.in_path, ec);
    if (ec) {
      std::cerr << opt.in_path << ": "
                << sflow::MappedTrace::error_name(
                       sflow::MappedTrace::Error::kOpenFailed)
                << "\n";
      return 4;
    }
    if (size < sflow::kTraceHeaderBytes) {
      std::cerr << opt.in_path << ": "
                << sflow::MappedTrace::error_name(
                       sflow::MappedTrace::Error::kTooShort)
                << "\n";
      return 4;
    }
  }

  const auto policy = opt.ingest.policy();

  if (opt.ingest.mmap) {
    sflow::MappedTrace trace = sflow::MappedTrace::open(opt.in_path);
    if (!trace.ok()) {
      std::cerr << opt.in_path << ": "
                << sflow::MappedTrace::error_name(trace.error()) << "\n";
      return trace.error() == sflow::MappedTrace::Error::kBadHeader ? 1 : 4;
    }
    const auto world = build_world(opt);
    core::VantagePoint vantage = make_vantage(world);
    core::ParallelOptions popt;
    popt.threads = static_cast<unsigned>(opt.ingest.threads);
    core::ParallelAnalyzer analyzer{vantage, popt};
    ingest::MappedSource source{trace, policy};
    const auto report =
        analyzer.analyze(opt.week, source, make_fetcher(world, opt.week));
    if (!source.within_budget()) {
      print_budget_exceeded(
          opt, source.stats(),
          ": " + util::with_thousands(source.stats().errors()) +
              " corrupt records across " +
              std::to_string(source.segments().size()) + " segments");
      return 1;
    }
    return report_analysis(report, source.stats());
  }

  std::ifstream in{opt.in_path, std::ios::binary};
  if (!in) {
    std::cerr << opt.in_path << ": "
              << sflow::MappedTrace::error_name(
                     sflow::MappedTrace::Error::kOpenFailed)
              << "\n";
    return 4;
  }
  sflow::TraceReader reader{in, policy};
  if (!reader.ok()) {
    std::cerr << opt.in_path << ": not an ixpscope trace\n";
    return 1;
  }
  const auto world = build_world(opt);
  core::VantagePoint vantage = make_vantage(world);
  core::ParallelOptions popt;
  popt.threads = static_cast<unsigned>(opt.ingest.threads);
  core::ParallelAnalyzer analyzer{vantage, popt};
  ingest::ReaderSource source{reader};
  const auto report =
      analyzer.analyze(opt.week, source, make_fetcher(world, opt.week));

  if (!source.ok()) {
    // The error budget was exhausted mid-trace: the report would be
    // silently partial, so refuse to pretend otherwise.
    print_budget_exceeded(opt, source.stats(),
                          " after " +
                              util::with_thousands(source.stats().samples) +
                              " samples");
    return 1;
  }
  return report_analysis(report, source.stats());
}

int cmd_corrupt(const Options& opt) {
  if (opt.in_path.empty() || opt.out_path.empty()) return usage();
  std::ifstream in{opt.in_path, std::ios::binary};
  if (!in) {
    std::cerr << "cannot read " << opt.in_path << "\n";
    return 1;
  }
  std::ofstream out{opt.out_path, std::ios::binary};
  if (!out) {
    std::cerr << "cannot write " << opt.out_path << "\n";
    return 1;
  }
  const sflow::FaultInjector injector{opt.seed};
  const auto report = injector.corrupt(in, out);
  if (!report) {
    std::cerr << opt.in_path << ": not an ixpscope trace\n";
    return 1;
  }
  util::Table table{"injected faults (seed " + std::to_string(opt.seed) + ")"};
  table.header({"fault", "count"});
  table.row({"bit flips", util::with_thousands(report->bit_flips)});
  table.row({"truncations", util::with_thousands(report->truncations)});
  table.row({"bogus lengths", util::with_thousands(report->bogus_lengths)});
  table.row({"duplicates", util::with_thousands(report->duplicates)});
  table.row({"reorders", util::with_thousands(report->reorders)});
  table.row({"mid-file EOF", report->cut_short ? "1" : "0"});
  table.print(std::cout);
  std::cout << "wrote " << util::with_thousands(report->records_out)
            << " records (" << util::with_thousands(report->bytes_out)
            << " bytes, from " << util::with_thousands(report->records_in)
            << " records / " << util::with_thousands(report->bytes_in)
            << " bytes) to " << opt.out_path << "\n";
  return 0;
}

volatile std::sig_atomic_t g_stop_requested = 0;
extern "C" void handle_stop_signal(int) { g_stop_requested = 1; }

void print_serve_accounting(const core::ServeAccounting& accounting) {
  util::Table agents{"per-agent intake"};
  agents.header({"agent", "received", "processed", "dropped"});
  for (const auto& row : accounting.intake.rows) {
    agents.row({row.agent.to_string(),
                util::with_thousands(row.counters.received),
                util::with_thousands(row.counters.taken),
                util::with_thousands(row.counters.dropped)});
  }
  const auto totals = accounting.intake.totals();
  agents.row({"total", util::with_thousands(totals.received),
              util::with_thousands(totals.taken),
              util::with_thousands(totals.dropped)});
  agents.print(std::cout);

  util::Table service{"service accounting"};
  service.header({"counter", "value"});
  service.row({"datagrams decoded",
               util::with_thousands(accounting.collector.datagrams)});
  service.row({"decode errors", util::with_thousands(accounting.decode_errors)});
  service.row({"flow samples",
               util::with_thousands(accounting.collector.flow_samples)});
  service.row({"counter samples",
               util::with_thousands(accounting.collector.counter_samples)});
  service.row({"lost datagrams (seq gaps)",
               util::with_thousands(accounting.collector.lost_datagrams)});
  service.row({"live agents", util::with_thousands(accounting.collector.agents)});
  service.row({"agent rows evicted",
               util::with_thousands(accounting.intake.evicted_agents)});
  service.row({"sequence evictions",
               util::with_thousands(accounting.sequence_evictions)});
  service.print(std::cout);
}

int cmd_serve(const Options& opt) {
  if (opt.listen_path.empty() && !opt.udp) {
    std::cerr << "serve needs --listen PATH and/or --udp [PORT]\n";
    return usage();
  }

  sflow::SocketIntake intake;
  std::string error;
  if (!opt.listen_path.empty() &&
      !intake.listen_unix(opt.listen_path, &error)) {
    std::cerr << "serve: " << error << "\n";
    return 1;
  }
  if (opt.udp &&
      !intake.listen_udp(static_cast<std::uint16_t>(opt.udp_port), &error)) {
    std::cerr << "serve: " << error << "\n";
    return 1;
  }

  const auto world = build_world(opt);
  core::VantagePoint vantage = make_vantage(world);
  core::ServeOptions sopt;
  sopt.week = opt.week;
  sopt.threads = static_cast<unsigned>(opt.ingest.threads);
  sopt.queue_capacity = opt.queue_capacity;
  sopt.max_agents = opt.max_agents;
  sopt.window_epochs = opt.window_epochs;
  sopt.eviction_log = [](net::Ipv4Addr agent, std::uint32_t last_sequence) {
    std::cerr << "serve: evicted sequence tracking for agent "
              << agent.to_string() << " (last seq " << last_sequence << ")\n";
  };
  core::ServeService service{vantage, make_fetcher(world, opt.week), sopt};
  service.start();

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  std::cout << "serving week " << opt.week << " on";
  if (!intake.unix_path().empty()) std::cout << " unix:" << intake.unix_path();
  if (opt.udp) std::cout << " udp:127.0.0.1:" << intake.udp_port();
  std::cout << " (" << service.threads() << " workers, window "
            << (opt.window_epochs == 0 ? std::string{"cumulative"}
                                       : std::to_string(opt.window_epochs))
            << ")\n"
            << std::flush;

  std::uint64_t received = 0;
  std::uint64_t last_snapshot_at = 0;
  while (g_stop_requested == 0 &&
         (opt.max_datagrams == 0 || received < opt.max_datagrams)) {
    received += intake.poll_once(
        200, [&](sflow::DatagramEnvelope&& envelope) {
          (void)service.offer(std::move(envelope));
        });
    if (opt.snapshot_every != 0 &&
        received - last_snapshot_at >= opt.snapshot_every) {
      last_snapshot_at = received;
      const auto snap = service.snapshot();
      std::cout << "epoch " << snap->epoch << " [folds "
                << snap->epochs_folded << " of "
                << (snap->window_epochs == 0 ? std::string{"all"}
                                             : std::to_string(
                                                   snap->window_epochs))
                << " epochs]: "
                << util::with_thousands(snap->report.peering_ips)
                << " peering IPs, "
                << util::with_thousands(snap->report.server_ips)
                << " server IPs ("
                << util::with_thousands(
                       snap->accounting.intake.totals().received)
                << " datagrams received, "
                << util::with_thousands(
                       snap->accounting.intake.totals().dropped)
                << " dropped)\n"
                << std::flush;
    }
  }

  intake.shutdown();
  const auto final_snapshot = service.drain();
  std::cout << "drained after "
            << util::with_thousands(
                   final_snapshot->accounting.intake.totals().received)
            << " datagrams (final epoch " << final_snapshot->epoch
            << ", report folds " << final_snapshot->epochs_folded
            << " sealed epochs)\n";
  print_report(final_snapshot->report);
  print_serve_accounting(final_snapshot->accounting);
  return 0;
}

int cmd_replay(const Options& opt) {
  if (opt.in_path.empty() || opt.connect_path.empty()) return usage();

  sflow::MappedTrace trace = sflow::MappedTrace::open(opt.in_path);
  if (!trace.ok()) {
    std::cerr << opt.in_path << ": "
              << sflow::MappedTrace::error_name(trace.error()) << "\n";
    return trace.error() == sflow::MappedTrace::Error::kBadHeader ? 1 : 4;
  }

  std::string error;
  auto sender = sflow::DatagramSender::connect_unix(opt.connect_path, &error);
  if (!sender.ok()) {
    std::cerr << "replay: " << error << "\n";
    return 1;
  }

  // Walk the trace exactly as a lenient streamed analysis would and send
  // each cleanly-decoded record as one datagram, framed with its original
  // offset so the service reproduces the offline stream keys. With
  // --agents N the sFlow agent field (payload bytes 4..8) is rewritten
  // round-robin — the analysis ignores the agent, so the report stays
  // byte-identical while the service sees N concurrent senders.
  const auto segments =
      sflow::TraceSegmenter::split(trace.bytes(), 1);
  std::uint64_t records = 0;
  std::uint64_t samples = 0;
  std::uint64_t bytes_sent = 0;
  std::vector<std::byte> patched;
  for (const auto& segment : segments) {
    sflow::TraceCursor cursor{trace.bytes(), segment,
                              sflow::ReadPolicy::lenient()};
    std::uint64_t seq_base = 0;
    for (auto batch = cursor.read_record(seq_base); !batch.empty();
         batch = cursor.read_record(seq_base)) {
      std::span<const std::byte> payload = cursor.record_bytes();
      if (opt.agents > 1) {
        patched.assign(payload.begin(), payload.end());
        const auto agent = static_cast<std::uint32_t>(
            net::Ipv4Addr{10, 99, 0, 0}.value() + records % opt.agents);
        patched[4] = static_cast<std::byte>(agent >> 24);
        patched[5] = static_cast<std::byte>(agent >> 16);
        patched[6] = static_cast<std::byte>(agent >> 8);
        patched[7] = static_cast<std::byte>(agent);
        payload = patched;
      }
      if (!sender.send_framed(cursor.record_offset(), payload)) {
        std::cerr << "replay: send failed after "
                  << util::with_thousands(records) << " records: "
                  << std::strerror(errno) << "\n";
        return 1;
      }
      ++records;
      samples += batch.size();
      bytes_sent += payload.size();
    }
  }
  std::cout << "replayed " << util::with_thousands(records) << " records ("
            << util::with_thousands(samples) << " samples, "
            << util::bytes(static_cast<double>(bytes_sent)) << ") to "
            << opt.connect_path
            << (opt.agents > 1
                    ? " as " + std::to_string(opt.agents) + " agents"
                    : std::string{})
            << "\n";
  return 0;
}

int cmd_diff(const Options& opt) {
  const auto world = build_world(opt);
  core::VantagePoint vantage = make_vantage(world);
  const auto run = [&](int week) {
    core::WeekSession session = vantage.open_week(week);
    world.workload->generate_week(
        week, [&](const sflow::FlowSample& s) { session.observe(s); });
    return session.finish(make_fetcher(world, week));
  };
  const auto earlier = run(opt.from_week);
  const auto later = run(opt.to_week);
  const auto delta = analysis::compare_weeks(earlier, later);

  std::cout << "weeks " << delta.earlier_week << " -> " << delta.later_week
            << "\n";
  std::cout << "  server IPs: +" << delta.servers_gained << " / -"
            << delta.servers_lost << " (" << delta.servers_common
            << " common)\n";
  std::cout << "  IP growth: " << util::percent(delta.ip_growth, 2)
            << ", traffic growth: " << util::percent(delta.traffic_growth, 2)
            << "\n";
  util::Table movers{"top AS movers (server-IP delta)"};
  movers.header({"AS", "delta"});
  for (const auto& mover : delta.top_movers) {
    movers.row({mover.asn.to_string(),
                (mover.server_delta >= 0 ? "+" : "") +
                    std::to_string(mover.server_delta)});
  }
  movers.print(std::cout);
  return 0;
}

/// An owning ingest::IngestSource over one generated week: holds the
/// samples and delegates batching/splitting to a SpanSource, so the
/// parallel engine consumes a synthetic week exactly like a trace.
class GeneratedWeekSource final : public ingest::IngestSource {
 public:
  GeneratedWeekSource(std::vector<sflow::FlowSample> samples,
                      std::size_t batch_size)
      : samples_(std::move(samples)), span_(samples_, batch_size) {}

  ingest::SourceStatus next_batch(ingest::SampleBatch& out) override {
    return span_.next_batch(out);
  }
  [[nodiscard]] sflow::ReaderStats stats() const override {
    return span_.stats();
  }
  [[nodiscard]] bool ok() const override { return span_.ok(); }
  std::vector<std::unique_ptr<ingest::IngestSource>> split(
      std::size_t want) override {
    return span_.split(want);
  }

 private:
  std::vector<sflow::FlowSample> samples_;
  ingest::SpanSource span_;
};

/// The ingest-policy half of a snapshot's provenance record: the weeks
/// pipeline consumes seeded generated weeks in fixed 512-sample batches,
/// so the fingerprint names exactly that. Changing how weeks are fed
/// (source kind, batching) must change this value — that is what forces
/// old snapshots onto the quarantine-and-recompute path.
std::uint64_t weeks_ingest_fingerprint() {
  util::Fnv1a hash;
  hash.mix(std::string_view{"generated-week-source"});
  hash.mix(std::uint64_t{512});  // batch size
  return hash.value();
}

void print_longitudinal(const analysis::LongitudinalSummary& lon) {
  std::cout << "longitudinal (weeks " << lon.first_week << ".."
            << lon.last_week << "):\n"
            << "  server universe: "
            << util::with_thousands(lon.server_universe) << " IPs\n"
            << "  always-on servers: "
            << util::with_thousands(lon.always_on_servers) << " ("
            << util::percent(lon.always_on_traffic_share, 2)
            << " of final-week traffic)\n"
            << "  mean weekly churn: " << util::percent(lon.mean_weekly_churn, 2)
            << "\n";
}

void print_quarantines(const char* command,
                       const std::vector<store::QuarantineEvent>& events) {
  for (const auto& event : events) {
    std::cerr << command << ": quarantined " << event.file << " -> "
              << event.quarantined_as << " ("
              << store::error_name(event.error) << ")\n";
  }
}

int cmd_weeks(const Options& opt) {
  if (opt.dirs.size() != 1) {
    std::cerr << "weeks needs exactly one --dir PATH\n";
    return usage();
  }
  const std::string& dir = opt.dirs.front();
  if (opt.to_week < opt.from_week) {
    std::cerr << "weeks: --from must not exceed --to\n";
    return 2;
  }

  const auto world = build_world(opt);
  core::VantagePoint vantage = make_vantage(world);
  core::ParallelOptions popt;
  popt.threads = static_cast<unsigned>(opt.ingest.threads);
  core::ParallelAnalyzer analyzer{vantage, popt};
  store::WeeksRunner runner{vantage, analyzer, store::SnapshotStore{dir}};

  const auto make_source =
      [&](int week) -> std::unique_ptr<ingest::IngestSource> {
    std::vector<sflow::FlowSample> samples;
    world.workload->generate_week(
        week, [&](const sflow::FlowSample& s) { samples.push_back(s); });
    return std::make_unique<GeneratedWeekSource>(std::move(samples), 512);
  };
  const auto fetcher_for = [&](int week) { return make_fetcher(world, week); };

  store::MapReduceOptions mopt;
  mopt.weeks.from_week = opt.from_week;
  mopt.weeks.to_week = opt.to_week;
  mopt.weeks.model_fingerprint = world.model->config().fingerprint();
  mopt.weeks.ingest_fingerprint = weeks_ingest_fingerprint();
  mopt.jobs = opt.jobs;
  const auto mr =
      store::run_weeks_mapreduce(runner, mopt, make_source, fetcher_for);
  const store::WeeksResult& result = mr.fold;

  print_quarantines("weeks", result.quarantined);
  if (result.stale_temps_removed != 0) {
    std::cerr << "weeks: removed " << result.stale_temps_removed
              << " stale temp file(s) from an interrupted run\n";
  }
  if (mr.store_unreadable) {
    std::cerr << "weeks: snapshot directory unusable: " << mr.error << "\n";
    return 5;
  }
  if (!mr.ok) {
    std::cerr << "weeks: " << mr.error << "\n";
    return 1;
  }

  // Per-worker accounting, printed whenever work was actually forked. A
  // dead worker is contained, not fatal: its weeks were recomputed by the
  // fold below, so the data is complete — but the run still exits 6 so
  // scripts notice the lost capacity.
  if (!mr.workers.empty()) {
    util::Table workers{"workers (--jobs " + std::to_string(opt.jobs) + ")"};
    workers.header({"worker", "pid", "weeks", "status"});
    for (const auto& outcome : mr.workers) {
      std::string status;
      if (outcome.status.spawn_failed) {
        status = "spawn failed";
      } else if (outcome.status.signaled) {
        status = "killed by signal " +
                 std::to_string(outcome.status.term_signal);
      } else if (outcome.status.exit_code != 0) {
        status = "exit " + std::to_string(outcome.status.exit_code);
      } else {
        status = outcome.status.ran_inline ? "ok (inline)" : "ok";
      }
      workers.row({std::to_string(outcome.status.worker),
                   std::to_string(outcome.status.pid),
                   std::to_string(outcome.weeks.size()), status});
    }
    workers.print(std::cout);
  }

  util::Table table{"weeks " + std::to_string(opt.from_week) + ".." +
                    std::to_string(opt.to_week) + " (" + dir + ")"};
  table.header({"week", "source", "peering IPs", "server IPs", "volume"});
  bool degraded = false;
  for (const auto& outcome : result.weeks) {
    degraded = degraded || outcome.report.degraded;
    table.row({std::to_string(outcome.week),
               outcome.resumed ? "snapshot" : "computed",
               util::with_thousands(outcome.report.peering_ips),
               util::with_thousands(outcome.report.server_ips),
               util::bytes(outcome.report.peering_bytes())});
  }
  table.print(std::cout);
  std::cout << result.weeks_resumed << " week(s) resumed from snapshots, "
            << result.weeks_computed << " computed";
  if (result.weeks_stale != 0)
    std::cout << " (" << result.weeks_stale
              << " recomputed: stale provenance)";
  std::cout << "\n";

  print_longitudinal(result.longitudinal);
  if (mr.worker_failed) {
    std::cerr << "warning: at least one worker process failed; its weeks "
                 "were recomputed by the parent\n";
    return 6;
  }
  if (degraded) {
    std::cerr << "warning: at least one computed week was degraded\n";
    return 3;
  }
  return 0;
}

int cmd_merge(const Options& opt) {
  if (opt.dirs.empty() || opt.out_path.empty()) {
    std::cerr << "merge needs --dir PATH (repeatable) and --out PATH\n";
    return usage();
  }

  const auto world = build_world(opt);
  core::VantagePoint vantage = make_vantage(world);
  const auto fetcher_for = [&](int week) { return make_fetcher(world, week); };

  store::MergeOptions mopt;
  mopt.inputs = opt.dirs;
  mopt.out = opt.out_path;
  mopt.model_fingerprint = world.model->config().fingerprint();
  mopt.ingest_fingerprint = weeks_ingest_fingerprint();
  const auto result = store::merge_stores(vantage, mopt, fetcher_for);

  print_quarantines("merge", result.quarantined);
  if (result.snapshots_skipped_stale != 0) {
    std::cerr << "merge: skipped " << result.snapshots_skipped_stale
              << " snapshot(s) with stale provenance (different model or "
                 "ingest policy)\n";
  }
  if (result.store_unreadable) {
    std::cerr << "merge: store directory unusable: " << result.error << "\n";
    return 5;
  }
  if (!result.ok) {
    std::cerr << "merge: " << result.error << "\n";
    return 1;
  }

  util::Table table{"merged " + std::to_string(opt.dirs.size()) +
                    " store(s) -> " + opt.out_path};
  table.header({"week", "source", "copies", "peering IPs", "server IPs"});
  for (const auto& week : result.weeks) {
    table.row({std::to_string(week.week),
               week.rederived ? "re-derived" : "copied",
               std::to_string(week.copies),
               util::with_thousands(week.report.peering_ips),
               util::with_thousands(week.report.server_ips)});
  }
  table.print(std::cout);
  std::cout << result.weeks_copied << " week(s) copied through, "
            << result.weeks_rederived << " re-derived from partial shards\n";
  if (!result.weeks.empty()) print_longitudinal(result.longitudinal);
  return 0;
}

/// `ixpscope probe` — the three engine-backed sweeps of DESIGN.md §15 run
/// against the model: resolver filtering (§2.3), the certificate crawl
/// (§2.2.2, zero-copy chain views) and the metadata harvest (§2.4), with
/// engine accounting and cache hit rates printed for each.
int cmd_probe(const Options& opt) {
  const auto world = build_world(opt);
  const auto& model = *world.model;

  probe::EngineConfig config;
  config.max_in_flight = static_cast<std::uint32_t>(opt.concurrency);
  config.max_attempts = static_cast<std::uint32_t>(opt.attempts);
  config.timeout_us = static_cast<std::uint32_t>(opt.timeout_us);
  probe::NetModel net;
  net.seed = opt.seed;
  net.loss_permille = static_cast<std::uint32_t>(opt.loss_permille);

  const auto print_engine = [](const probe::EngineStats& stats) {
    std::cout << "  engine: " << util::with_thousands(stats.issued)
              << " issued = " << util::with_thousands(stats.completed)
              << " completed + " << util::with_thousands(stats.timed_out)
              << " timed out + " << util::with_thousands(stats.cancelled)
              << " cancelled (" << (stats.balanced() ? "balanced" : "IMBALANCED")
              << "); " << util::with_thousands(stats.attempts) << " attempts, "
              << util::with_thousands(stats.retries) << " retries, "
              << util::with_thousands(stats.losses) << " losses; virtual time "
              << util::with_thousands(stats.virtual_us) << " us\n";
  };
  const auto print_cache = [](const probe::CacheStats& stats) {
    std::cout << "  resolver cache: " << util::with_thousands(stats.hits)
              << " hits + " << util::with_thousands(stats.negative_hits)
              << " negative hits / " << util::with_thousands(stats.misses)
              << " misses (" << util::percent(stats.hit_rate(), 1)
              << " hit rate), " << util::with_thousands(stats.evictions)
              << " evictions, " << util::with_thousands(stats.expired)
              << " expired\n";
  };

  // ---- §2.3: resolver filtering -------------------------------------------
  dns::ZoneDatabase probe_db;
  const auto probe_name = *dns::DnsName::parse("probe.ixpscope.test");
  probe_db.add_a(probe_name, net::Ipv4Addr{192, 0, 2, 1});
  const probe::ResolverSweep resolver_sweep{config, net};
  const auto resolver_result =
      resolver_sweep.run(model.resolvers().all(), probe_db, probe_name);
  std::cout << "resolver sweep: "
            << util::with_thousands(model.resolvers().size())
            << " candidates -> "
            << util::with_thousands(resolver_result.usable.size())
            << " usable across "
            << util::with_thousands(
                   dns::ResolverPopulation::distinct_ases(
                       resolver_result.usable))
            << " ASes\n";
  print_engine(resolver_result.engine);
  print_cache(resolver_result.cache);

  // ---- §2.2.2: certificate crawl ------------------------------------------
  std::vector<net::Ipv4Addr> candidates;
  candidates.reserve(model.servers().size());
  for (const auto& server : model.servers()) candidates.push_back(server.addr);
  std::sort(candidates.begin(), candidates.end());
  probe::HttpsSweep https_sweep{model.root_store(),
                                dns::PublicSuffixList::builtin(), 3, config,
                                net};
  const int week = opt.week;
  const auto https_result = https_sweep.run(
      candidates,
      [&](net::Ipv4Addr addr, int fetch_index, x509::CertificateChain& scratch) {
        return model.fetch_chain_view(addr, fetch_index, week, scratch);
      });
  std::cout << "https sweep (week " << week << "): "
            << util::with_thousands(https_result.funnel.candidates)
            << " candidates -> "
            << util::with_thousands(https_result.funnel.responded)
            << " responded -> "
            << util::with_thousands(https_result.funnel.confirmed)
            << " confirmed ("
            << util::with_thousands(https_result.funnel.early_exits)
            << " early exits)\n";
  print_engine(https_result.engine);
  std::cout << "  domain cache: "
            << util::with_thousands(https_result.domain_cache_hits)
            << " hits / "
            << util::with_thousands(https_result.domain_cache_misses)
            << " misses\n";

  // ---- §2.4: metadata harvest ---------------------------------------------
  std::vector<probe::MetadataItem> items;
  items.reserve(https_result.confirmed.size());
  for (const net::Ipv4Addr addr : https_result.confirmed)
    items.push_back(probe::MetadataItem{addr, {}, nullptr});
  probe::MetadataPass::Options popt;
  popt.threads = static_cast<unsigned>(opt.ingest.threads);
  popt.engine = config;
  popt.net = net;
  const probe::MetadataPass pass{model.dns_db(),
                                 dns::PublicSuffixList::builtin(), popt};
  const auto harvested = pass.run(items);
  std::cout << "metadata pass: "
            << util::with_thousands(harvested.shard.coverage.servers)
            << " servers, "
            << util::with_thousands(harvested.shard.coverage.with_dns)
            << " with DNS metadata\n";
  print_engine(harvested.shard.engine);
  print_cache(harvested.shard.cache);

  const bool balanced = resolver_result.engine.balanced() &&
                        https_result.engine.balanced() &&
                        harvested.shard.engine.balanced();
  if (!balanced) {
    std::cerr << "probe: engine accounting is not balanced\n";
    return 1;
  }
  return 0;
}

int cmd_bgp_export(const Options& opt) {
  if (opt.out_path.empty()) return usage();
  const auto world = build_world(opt);
  std::ofstream out{opt.out_path};
  if (!out) {
    std::cerr << "cannot write " << opt.out_path << "\n";
    return 1;
  }
  const std::size_t routes = net::write_bgp_dump(out, world.model->routing());
  std::cout << "wrote " << util::with_thousands(routes) << " routes to "
            << opt.out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return usage();
  if (opt.command == "info") return cmd_info(opt);
  if (opt.command == "generate") return cmd_generate(opt);
  if (opt.command == "analyze") return cmd_analyze(opt);
  if (opt.command == "corrupt") return cmd_corrupt(opt);
  if (opt.command == "serve") return cmd_serve(opt);
  if (opt.command == "replay") return cmd_replay(opt);
  if (opt.command == "diff") return cmd_diff(opt);
  if (opt.command == "weeks") return cmd_weeks(opt);
  if (opt.command == "merge") return cmd_merge(opt);
  if (opt.command == "probe") return cmd_probe(opt);
  if (opt.command == "bgp-export") return cmd_bgp_export(opt);
  return usage();
}
