// ixpscope — command-line front door to the library.
//
//   ixpscope info                      model inventory at the chosen scale
//   ixpscope generate --week N --out F record one week of sFlow to a trace
//   ixpscope analyze --week N --in F   run the pipeline on a recorded trace
//   ixpscope corrupt --in F --out F    damage a trace with seeded faults
//   ixpscope diff --from A --to B      week-over-week change report (§4.2)
//   ixpscope bgp-export --out F        dump the routing table (BGP text)
//
// Global flags: --volume <double> (default 1/256), --quick (test preset).
// analyze also takes --threads N: the sharded parallel engine splits the
// trace across N worker threads and reduces the shards deterministically,
// so the report is byte-identical for any N.
// The trace must have been generated at the same scale settings, since
// analysis resolves IPs against the same (deterministic) databases.
//
// Ingest robustness (DESIGN.md §8): analyze is lenient by default — the
// reader resynchronizes past corrupt records and an ingest-health table
// plus exit code 3 report the loss. --strict fails at the first corrupt
// record; --max-errors N tolerates at most N. `corrupt` is the matching
// fault injector: deterministic per --seed, so damaged fixtures are
// reproducible.
#include <charconv>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>

#include "analysis/weekly_delta.hpp"
#include "core/parallel_analyzer.hpp"
#include "core/vantage_point.hpp"
#include "gen/internet.hpp"
#include "gen/workload.hpp"
#include "net/bgp_dump.hpp"
#include "sflow/fault_injector.hpp"
#include "sflow/mapped_trace.hpp"
#include "sflow/trace.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace ixp;

struct Options {
  std::string command;
  int week = 45;
  int from_week = 44;
  int to_week = 45;
  double volume = 1.0 / 256.0;
  int threads = 1;
  bool quick = false;
  bool strict = false;
  bool mmap = false;
  std::uint64_t max_errors = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t seed = 1;
  std::string in_path;
  std::string out_path;
};

int usage() {
  std::cerr <<
      "usage: ixpscope <command> [flags]\n"
      "  info                          print the model inventory\n"
      "  generate --week N --out FILE  record one week of sFlow samples\n"
      "  analyze  --week N --in FILE   run the pipeline on a trace\n"
      "           [--threads N]        shard the analysis over N threads\n"
      "           [--strict]           fail at the first corrupt record\n"
      "           [--max-errors N]     tolerate at most N corrupt records\n"
      "           [--mmap]             map the trace; decode segments in\n"
      "                                parallel instead of streaming it\n"
      "  corrupt  --in FILE --out FILE damage a trace (deterministic)\n"
      "           [--seed S]           fault-injection seed (default 1)\n"
      "  diff     --from A --to B      week-over-week change report\n"
      "  bgp-export --out FILE         dump the routing table\n"
      "flags: --volume <0..1> (default 0.00390625), --quick\n"
      "exit codes: 0 ok, 1 error, 2 usage, 3 analysis completed degraded,\n"
      "            4 input trace unreadable (missing or shorter than header)\n";
  return 2;
}

/// Strict numeric parsing: the whole argument must be a number. atoi/atof
/// silently turned garbage into 0, which then looked like a valid week or
/// volume; from_chars rejects it loudly instead.
bool parse_int(const char* text, int& out) {
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_double(const char* text, double& out) {
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_u64(const char* text, std::uint64_t& out) {
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse(int argc, char** argv, Options& opt) {
  if (argc < 2) return false;
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto need_value = [&](int i) { return i + 1 < argc; };
    const auto bad_number = [&](const char* value) {
      std::cerr << "invalid number for " << flag << ": '" << value << "'\n";
      return false;
    };
    if (flag == "--quick") {
      opt.quick = true;
    } else if (flag == "--mmap") {
      opt.mmap = true;
    } else if (flag == "--strict") {
      opt.strict = true;
      opt.max_errors = 0;
    } else if (flag == "--max-errors" && need_value(i)) {
      if (!parse_u64(argv[++i], opt.max_errors)) return bad_number(argv[i]);
    } else if (flag == "--seed" && need_value(i)) {
      if (!parse_u64(argv[++i], opt.seed)) return bad_number(argv[i]);
    } else if (flag == "--week" && need_value(i)) {
      if (!parse_int(argv[++i], opt.week)) return bad_number(argv[i]);
    } else if (flag == "--from" && need_value(i)) {
      if (!parse_int(argv[++i], opt.from_week)) return bad_number(argv[i]);
    } else if (flag == "--to" && need_value(i)) {
      if (!parse_int(argv[++i], opt.to_week)) return bad_number(argv[i]);
    } else if (flag == "--threads" && need_value(i)) {
      if (!parse_int(argv[++i], opt.threads) || opt.threads < 1)
        return bad_number(argv[i]);
    } else if (flag == "--volume" && need_value(i)) {
      if (!parse_double(argv[++i], opt.volume) || opt.volume <= 0.0 ||
          opt.volume > 1.0)
        return bad_number(argv[i]);
    } else if (flag == "--in" && need_value(i)) {
      opt.in_path = argv[++i];
    } else if (flag == "--out" && need_value(i)) {
      opt.out_path = argv[++i];
    } else if (flag == "--week" || flag == "--from" || flag == "--to" ||
               flag == "--threads" || flag == "--volume" || flag == "--in" ||
               flag == "--out" || flag == "--max-errors" || flag == "--seed") {
      std::cerr << "missing value for " << flag << "\n";
      return false;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return false;
    }
  }
  return true;
}

struct World {
  std::unique_ptr<gen::InternetModel> model;
  std::unique_ptr<gen::Workload> workload;
  std::unordered_map<net::Asn, net::Locality> locality;
};

World build_world(const Options& opt) {
  World world;
  const auto cfg =
      opt.quick ? gen::ScaleConfig::test() : gen::ScaleConfig::bench(opt.volume);
  world.model = std::make_unique<gen::InternetModel>(cfg);
  world.workload = std::make_unique<gen::Workload>(*world.model);
  std::vector<net::Asn> members;
  for (const auto* m : world.model->ixp().members_at(cfg.last_week))
    members.push_back(m->asn);
  world.locality = world.model->as_graph().classify(members);
  return world;
}

core::VantagePoint make_vantage(const World& world) {
  return core::VantagePoint{
      world.model->ixp(),   world.model->routing(),  world.model->geo_db(),
      world.locality,       world.model->dns_db(),
      dns::PublicSuffixList::builtin(), world.model->root_store()};
}

classify::ChainFetcher make_fetcher(const World& world, int week) {
  return [&world, week](net::Ipv4Addr addr, int times) {
    return world.model->fetch_chains(addr, times, week);
  };
}

void print_report(const core::WeeklyReport& report) {
  util::Table table{"week " + std::to_string(report.week)};
  table.header({"", "IPs", "ASes", "prefixes", "countries"});
  table.row({"peering", util::with_thousands(report.peering_ips),
             util::with_thousands(report.peering_ases),
             util::with_thousands(report.peering_prefixes),
             std::to_string(report.peering_countries)});
  table.row({"server", util::with_thousands(report.server_ips),
             util::with_thousands(report.server_ases),
             util::with_thousands(report.server_prefixes),
             std::to_string(report.server_countries)});
  table.print(std::cout);
  std::cout << "HTTPS funnel: " << report.https_funnel.candidates << " -> "
            << report.https_funnel.responded << " -> "
            << report.https_funnel.confirmed << "\n";
  std::cout << "estimated weekly volume: " << util::bytes(report.peering_bytes())
            << "\n";
}

int cmd_info(const Options& opt) {
  const auto world = build_world(opt);
  const auto& model = *world.model;
  std::cout << "ixpscope model (seed " << model.config().seed << ")\n";
  std::cout << "  ASes:        " << util::with_thousands(model.ases().size())
            << "\n";
  std::cout << "  prefixes:    " << util::with_thousands(model.prefixes().size())
            << "\n";
  std::cout << "  IXP members: " << model.ixp().member_count_at(model.config().first_week)
            << " -> " << model.ixp().member_count_at(model.config().last_week)
            << " (weeks " << model.config().first_week << ".."
            << model.config().last_week << ")\n";
  std::cout << "  orgs:        " << util::with_thousands(model.orgs().size())
            << "\n";
  std::cout << "  servers:     " << util::with_thousands(model.servers().size())
            << " (" << util::with_thousands(model.visible_server_count())
            << " visible at the IXP)\n";
  std::cout << "  sites:       " << util::with_thousands(model.sites().size())
            << "\n";
  std::cout << "  resolvers:   "
            << util::with_thousands(model.resolvers().size()) << " candidates\n";
  return 0;
}

int cmd_generate(const Options& opt) {
  if (opt.out_path.empty()) return usage();
  const auto world = build_world(opt);
  std::ofstream out{opt.out_path, std::ios::binary};
  if (!out) {
    std::cerr << "cannot write " << opt.out_path << "\n";
    return 1;
  }
  sflow::TraceWriter writer{out, net::Ipv4Addr{172, 16, 0, 1}, 128};
  world.workload->generate_week(
      opt.week, [&](const sflow::FlowSample& s) { writer.write(s); });
  writer.flush();
  std::cout << "wrote " << util::with_thousands(writer.samples_written())
            << " samples (" << writer.datagrams_written() << " datagrams) to "
            << opt.out_path << "\n";
  return 0;
}

/// The ingest-health table: what the reader delivered, what it lost, and
/// how. Printed whenever anything was lost (DESIGN.md §8).
void print_ingest_health(const sflow::ReaderStats& stats) {
  util::Table table{"ingest health"};
  table.header({"counter", "value"});
  table.row({"datagrams delivered", util::with_thousands(stats.datagrams)});
  table.row({"samples delivered", util::with_thousands(stats.samples)});
  table.row({"bytes delivered", util::with_thousands(stats.bytes_delivered)});
  table.row({"bad magic", util::with_thousands(stats.bad_magic)});
  table.row({"bad length", util::with_thousands(stats.bad_length)});
  table.row({"truncated", util::with_thousands(stats.truncated)});
  table.row({"decode errors", util::with_thousands(stats.decode_errors)});
  table.row({"resyncs", util::with_thousands(stats.resyncs)});
  table.row({"bytes skipped", util::with_thousands(stats.bytes_skipped)});
  table.print(std::cerr);
}

/// Reports a degraded-but-complete analysis (exit 3) or a clean one
/// (exit 0) — shared by the streamed and mapped analyze paths.
int report_analysis(const core::WeeklyReport& report,
                    const sflow::ReaderStats& stats) {
  print_report(report);
  if (stats.degraded()) {
    std::cerr << "warning: trace is damaged; " << stats.errors()
              << " corrupt records resynchronized past, "
              << util::with_thousands(stats.bytes_skipped)
              << " bytes skipped\n";
    print_ingest_health(stats);
    return 3;
  }
  return 0;
}

int cmd_analyze(const Options& opt) {
  if (opt.in_path.empty()) return usage();

  // Unreadable input is diagnosed before the (expensive) model build, and
  // distinctly from a corrupt-but-present trace: a missing file or one
  // shorter than the 12-byte header exits 4, a bad magic/version exits 1.
  {
    std::error_code ec;
    const auto size = std::filesystem::file_size(opt.in_path, ec);
    if (ec) {
      std::cerr << opt.in_path << ": "
                << sflow::MappedTrace::error_name(
                       sflow::MappedTrace::Error::kOpenFailed)
                << "\n";
      return 4;
    }
    if (size < sflow::kTraceHeaderBytes) {
      std::cerr << opt.in_path << ": "
                << sflow::MappedTrace::error_name(
                       sflow::MappedTrace::Error::kTooShort)
                << "\n";
      return 4;
    }
  }

  const auto policy = opt.strict ? sflow::ReadPolicy::strict()
                                 : sflow::ReadPolicy{opt.max_errors};

  if (opt.mmap) {
    sflow::MappedTrace trace = sflow::MappedTrace::open(opt.in_path);
    if (!trace.ok()) {
      std::cerr << opt.in_path << ": "
                << sflow::MappedTrace::error_name(trace.error()) << "\n";
      return trace.error() == sflow::MappedTrace::Error::kBadHeader ? 1 : 4;
    }
    const auto world = build_world(opt);
    core::VantagePoint vantage = make_vantage(world);
    core::ParallelOptions popt;
    popt.threads = static_cast<unsigned>(opt.threads);
    core::ParallelAnalyzer analyzer{vantage, popt};
    core::MappedIngest ingest;
    const auto report = analyzer.analyze(
        opt.week, trace, make_fetcher(world, opt.week), policy, &ingest);
    if (!ingest.within_budget) {
      std::cerr << opt.in_path << ": corrupt trace, error budget ("
                << (opt.strict ? "strict" : std::to_string(opt.max_errors))
                << ") exceeded: " << util::with_thousands(ingest.total.errors())
                << " corrupt records across " << ingest.segments.size()
                << " segments\n";
      print_ingest_health(ingest.total);
      return 1;
    }
    return report_analysis(report, ingest.total);
  }

  std::ifstream in{opt.in_path, std::ios::binary};
  if (!in) {
    std::cerr << opt.in_path << ": "
              << sflow::MappedTrace::error_name(
                     sflow::MappedTrace::Error::kOpenFailed)
              << "\n";
    return 4;
  }
  sflow::TraceReader reader{in, policy};
  if (!reader.ok()) {
    std::cerr << opt.in_path << ": not an ixpscope trace\n";
    return 1;
  }
  const auto world = build_world(opt);
  core::VantagePoint vantage = make_vantage(world);
  core::ParallelOptions popt;
  popt.threads = static_cast<unsigned>(opt.threads);
  core::ParallelAnalyzer analyzer{vantage, popt};
  const auto report =
      analyzer.analyze(opt.week, reader, make_fetcher(world, opt.week));

  const sflow::ReaderStats& stats = reader.stats();
  if (!reader.ok()) {
    // The error budget was exhausted mid-trace: the report would be
    // silently partial, so refuse to pretend otherwise.
    std::cerr << opt.in_path << ": corrupt trace, error budget ("
              << (opt.strict ? "strict" : std::to_string(opt.max_errors))
              << ") exceeded after " << util::with_thousands(stats.samples)
              << " samples\n";
    print_ingest_health(stats);
    return 1;
  }
  return report_analysis(report, stats);
}

int cmd_corrupt(const Options& opt) {
  if (opt.in_path.empty() || opt.out_path.empty()) return usage();
  std::ifstream in{opt.in_path, std::ios::binary};
  if (!in) {
    std::cerr << "cannot read " << opt.in_path << "\n";
    return 1;
  }
  std::ofstream out{opt.out_path, std::ios::binary};
  if (!out) {
    std::cerr << "cannot write " << opt.out_path << "\n";
    return 1;
  }
  const sflow::FaultInjector injector{opt.seed};
  const auto report = injector.corrupt(in, out);
  if (!report) {
    std::cerr << opt.in_path << ": not an ixpscope trace\n";
    return 1;
  }
  util::Table table{"injected faults (seed " + std::to_string(opt.seed) + ")"};
  table.header({"fault", "count"});
  table.row({"bit flips", util::with_thousands(report->bit_flips)});
  table.row({"truncations", util::with_thousands(report->truncations)});
  table.row({"bogus lengths", util::with_thousands(report->bogus_lengths)});
  table.row({"duplicates", util::with_thousands(report->duplicates)});
  table.row({"reorders", util::with_thousands(report->reorders)});
  table.row({"mid-file EOF", report->cut_short ? "1" : "0"});
  table.print(std::cout);
  std::cout << "wrote " << util::with_thousands(report->records_out)
            << " records (" << util::with_thousands(report->bytes_out)
            << " bytes, from " << util::with_thousands(report->records_in)
            << " records / " << util::with_thousands(report->bytes_in)
            << " bytes) to " << opt.out_path << "\n";
  return 0;
}

int cmd_diff(const Options& opt) {
  const auto world = build_world(opt);
  core::VantagePoint vantage = make_vantage(world);
  const auto run = [&](int week) {
    core::WeekSession session = vantage.open_week(week);
    world.workload->generate_week(
        week, [&](const sflow::FlowSample& s) { session.observe(s); });
    return session.finish(make_fetcher(world, week));
  };
  const auto earlier = run(opt.from_week);
  const auto later = run(opt.to_week);
  const auto delta = analysis::compare_weeks(earlier, later);

  std::cout << "weeks " << delta.earlier_week << " -> " << delta.later_week
            << "\n";
  std::cout << "  server IPs: +" << delta.servers_gained << " / -"
            << delta.servers_lost << " (" << delta.servers_common
            << " common)\n";
  std::cout << "  IP growth: " << util::percent(delta.ip_growth, 2)
            << ", traffic growth: " << util::percent(delta.traffic_growth, 2)
            << "\n";
  util::Table movers{"top AS movers (server-IP delta)"};
  movers.header({"AS", "delta"});
  for (const auto& mover : delta.top_movers) {
    movers.row({mover.asn.to_string(),
                (mover.server_delta >= 0 ? "+" : "") +
                    std::to_string(mover.server_delta)});
  }
  movers.print(std::cout);
  return 0;
}

int cmd_bgp_export(const Options& opt) {
  if (opt.out_path.empty()) return usage();
  const auto world = build_world(opt);
  std::ofstream out{opt.out_path};
  if (!out) {
    std::cerr << "cannot write " << opt.out_path << "\n";
    return 1;
  }
  const std::size_t routes = net::write_bgp_dump(out, world.model->routing());
  std::cout << "wrote " << util::with_thousands(routes) << " routes to "
            << opt.out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return usage();
  if (opt.command == "info") return cmd_info(opt);
  if (opt.command == "generate") return cmd_generate(opt);
  if (opt.command == "analyze") return cmd_analyze(opt);
  if (opt.command == "corrupt") return cmd_corrupt(opt);
  if (opt.command == "diff") return cmd_diff(opt);
  if (opt.command == "bgp-export") return cmd_bgp_export(opt);
  return usage();
}
