// bench_diff — compares two ixpscope-bench-v1 JSON files and flags
// per-case regressions, for wiring into CI and PR checklists:
//
//   bench_diff BASELINE.json CURRENT.json [--tolerance PCT]
//
// A case regresses when its ns_per_item grows by more than the tolerance
// (default 10%), or when a case that was allocation-free starts
// allocating. (--threshold is accepted as a synonym for --tolerance.)
// Cases present in only one file are reported but do not
// fail the diff (benches come and go across PRs). Exit codes: 0 no
// regressions, 1 regression found, 2 usage or unreadable input.
//
// Like-for-like gating: when BOTH documents carry the cpu_flags /
// simd_level stamps (bench_json writes them) and the stamps differ, the
// runs executed on different hardware or different SIMD tiers and
// ns/item is not comparable — the table is still printed, but no
// regression is flagged and the exit code is 0. Stamps missing on either
// side (pre-stamp baselines) gate as before: within one repo checkout a
// baseline refresh and its PR run share a machine.
//
// The parser is deliberately minimal: it understands exactly the flat
// document bench_json.cpp writes (one "results" array of one-line
// objects with string/number fields), not general JSON.
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

struct CaseResult {
  std::string name;
  double ns_per_item = 0.0;
  double allocs_per_item = 0.0;
  double samples_per_sec = 0.0;
};

/// Value of `"key": "text"` inside `object`, or nullopt.
std::optional<std::string> find_string(std::string_view object,
                                       std::string_view key) {
  const std::string needle = "\"" + std::string{key} + "\"";
  const std::size_t at = object.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  std::size_t i = at + needle.size();
  while (i < object.size() && (object[i] == ':' || object[i] == ' ')) ++i;
  if (i >= object.size() || object[i] != '"') return std::nullopt;
  const std::size_t begin = ++i;
  while (i < object.size() && object[i] != '"') ++i;
  if (i >= object.size()) return std::nullopt;
  return std::string{object.substr(begin, i - begin)};
}

/// Value of `"key": number` inside `object`, or nullopt.
std::optional<double> find_number(std::string_view object,
                                  std::string_view key) {
  const std::string needle = "\"" + std::string{key} + "\"";
  const std::size_t at = object.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  std::size_t i = at + needle.size();
  while (i < object.size() && (object[i] == ':' || object[i] == ' ')) ++i;
  std::size_t end = i;
  while (end < object.size() &&
         (std::isdigit(static_cast<unsigned char>(object[end])) ||
          object[end] == '.' || object[end] == '-' || object[end] == '+' ||
          object[end] == 'e' || object[end] == 'E'))
    ++end;
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(object.data() + i, object.data() + end, value);
  if (ec != std::errc{} || ptr != object.data() + end || end == i)
    return std::nullopt;
  return value;
}

/// Parses the "results" array of one bench JSON; empty on any mismatch
/// with the expected schema.
std::vector<CaseResult> parse_results(const std::string& text) {
  std::vector<CaseResult> results;
  if (text.find("\"ixpscope-bench-v1\"") == std::string::npos) return results;
  std::size_t at = text.find("\"results\"");
  if (at == std::string::npos) return results;
  at = text.find('[', at);
  if (at == std::string::npos) return results;
  const std::size_t close = text.find(']', at);
  while (true) {
    const std::size_t open = text.find('{', at);
    if (open == std::string::npos || (close != std::string::npos && open > close))
      break;
    const std::size_t end = text.find('}', open);
    if (end == std::string::npos) break;
    const std::string_view object{text.data() + open, end - open + 1};
    CaseResult result;
    const auto name = find_string(object, "name");
    const auto ns = find_number(object, "ns_per_item");
    if (name && ns) {
      result.name = *name;
      result.ns_per_item = *ns;
      result.allocs_per_item = find_number(object, "allocs_per_item").value_or(0.0);
      result.samples_per_sec = find_number(object, "samples_per_sec").value_or(0.0);
      results.push_back(std::move(result));
    }
    at = end + 1;
  }
  return results;
}

struct BenchDoc {
  std::vector<CaseResult> results;
  std::optional<std::string> cpu_flags;
  std::optional<std::string> simd_level;
};

std::optional<BenchDoc> load(const std::string& path) {
  std::ifstream in{path};
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  BenchDoc doc;
  doc.results = parse_results(text);
  if (doc.results.empty()) return std::nullopt;
  // Top-level stamps precede the results array; restrict the search to
  // the document head so a case could never alias them.
  const std::size_t head_end = text.find("\"results\"");
  const std::string_view head{text.data(),
                              head_end == std::string::npos ? text.size()
                                                            : head_end};
  doc.cpu_flags = find_string(head, "cpu_flags");
  doc.simd_level = find_string(head, "simd_level");
  return doc;
}

const CaseResult* find_case(const std::vector<CaseResult>& results,
                            const std::string& name) {
  for (const auto& result : results)
    if (result.name == name) return &result;
  return nullptr;
}

int usage() {
  std::cerr << "usage: bench_diff BASELINE.json CURRENT.json "
               "[--tolerance PCT]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path;
  std::string current_path;
  double tolerance = 10.0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--tolerance" || arg == "--threshold") {
      if (i + 1 >= argc) return usage();
      const std::string_view text = argv[++i];
      const auto [ptr, ec] = std::from_chars(
          text.data(), text.data() + text.size(), tolerance);
      if (ec != std::errc{} || ptr != text.data() + text.size() ||
          tolerance <= 0.0)
        return usage();
    } else if (base_path.empty()) {
      base_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      return usage();
    }
  }
  if (base_path.empty() || current_path.empty()) return usage();

  const auto base = load(base_path);
  if (!base) {
    std::cerr << base_path << ": not a readable ixpscope-bench-v1 file\n";
    return 2;
  }
  const auto current = load(current_path);
  if (!current) {
    std::cerr << current_path << ": not a readable ixpscope-bench-v1 file\n";
    return 2;
  }

  // Unlike hardware or SIMD tier: report, but do not gate.
  bool like_for_like = true;
  if (base->cpu_flags && current->cpu_flags &&
      (*base->cpu_flags != *current->cpu_flags ||
       base->simd_level.value_or("") != current->simd_level.value_or(""))) {
    like_for_like = false;
    std::printf(
        "note: baseline (cpu %s, simd %s) and current (cpu %s, simd %s) "
        "are not like-for-like; differences are informational only\n",
        base->cpu_flags->c_str(), base->simd_level.value_or("?").c_str(),
        current->cpu_flags->c_str(), current->simd_level.value_or("?").c_str());
  }

  int regressions = 0;
  std::printf("%-28s %12s %12s %9s\n", "case", "base ns/it", "now ns/it",
              "delta");
  for (const auto& now : current->results) {
    const CaseResult* was = find_case(base->results, now.name);
    if (was == nullptr) {
      std::printf("%-28s %12s %12.1f %9s  (new case)\n", now.name.c_str(), "-",
                  now.ns_per_item, "-");
      continue;
    }
    const double delta =
        was->ns_per_item > 0.0
            ? (now.ns_per_item - was->ns_per_item) / was->ns_per_item * 100.0
            : 0.0;
    const bool slower = delta > tolerance;
    // An allocation-free case starting to allocate is a regression even
    // when it stays fast: the zero-alloc contract is load-bearing.
    const bool allocs = was->allocs_per_item < 0.005 &&
                        now.allocs_per_item >= 0.005;
    std::printf("%-28s %12.1f %12.1f %+8.1f%%%s%s\n", now.name.c_str(),
                was->ns_per_item, now.ns_per_item, delta,
                slower ? "  REGRESSION" : "",
                allocs ? "  ALLOCS-REGRESSION" : "");
    if (slower || allocs) ++regressions;
  }
  for (const auto& was : base->results) {
    if (find_case(current->results, was.name) == nullptr)
      std::printf("%-28s %12.1f %12s %9s  (removed)\n", was.name.c_str(),
                  was.ns_per_item, "-", "-");
  }

  if (regressions > 0 && !like_for_like) {
    std::printf(
        "%d difference%s beyond %.0f%% NOT gated (unlike hardware)\n",
        regressions, regressions == 1 ? "" : "s", tolerance);
    return 0;
  }
  if (regressions > 0) {
    std::printf("%d regression%s beyond %.0f%%\n", regressions,
                regressions == 1 ? "" : "s", tolerance);
    return 1;
  }
  std::printf("no regressions beyond %.0f%%\n", tolerance);
  return 0;
}
